#!/usr/bin/env python3
"""Chrome ``trace_event`` schema gate (CI: the obs-smoke job).

Validates that a JSON file exported by ``repro.obs.export.write_chrome_trace``
(or the ``repro trace --chrome`` / ``serve-bench --trace-chrome`` CLI paths)
is a loadable Chrome trace document:

* top level is an object with a ``traceEvents`` list;
* every event carries ``pid``, ``tid``, ``name``, ``cat``, ``ts`` and ``ph``;
* complete (``"X"``) events also carry ``dur``; nothing else is accepted
  besides instant (``"i"``) events, which is all the exporter emits.

This is deliberately the *minimal* contract Perfetto / ``chrome://tracing``
need to render the file — a schema drift in the exporter fails CI before a
human discovers the trace no longer loads.

Run from the repository root::

    python scripts/check_trace.py TRACE.json [TRACE2.json ...]

Exits nonzero with a one-line error per invalid file.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Keys every trace event must carry.
REQUIRED_EVENT_KEYS = ("pid", "tid", "name", "cat", "ts", "ph")

#: Event phases the exporter emits: complete spans and instant markers.
ALLOWED_PHASES = ("X", "i")


def validate_trace(path: Path) -> str:
    """Return an error message for an invalid Chrome trace file, else ''."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return f"{path}: cannot read ({exc.strerror or exc})"
    except json.JSONDecodeError as exc:
        return f"{path}: not valid JSON ({exc.msg} at line {exc.lineno})"
    if not isinstance(document, dict):
        return f"{path}: top level must be an object, got {type(document).__name__}"
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return f"{path}: missing traceEvents list"
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return f"{path}: traceEvents[{index}] is not an object"
        missing = [key for key in REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            return f"{path}: traceEvents[{index}] missing {', '.join(missing)}"
        phase = event["ph"]
        if phase not in ALLOWED_PHASES:
            return f"{path}: traceEvents[{index}] has unknown phase {phase!r}"
        if phase == "X" and "dur" not in event:
            return f"{path}: traceEvents[{index}] is a complete event without dur"
    return ""


def main(argv: list) -> int:
    if not argv:
        print("usage: check_trace.py TRACE.json [TRACE2.json ...]", file=sys.stderr)
        return 2
    failures = 0
    total_events = 0
    for name in argv:
        error = validate_trace(Path(name))
        if error:
            print(f"check_trace: {error}")
            failures += 1
        else:
            events = len(json.loads(Path(name).read_text(encoding="utf-8"))["traceEvents"])
            total_events += events
            print(f"check_trace: {name}: OK ({events} events)")
    if failures:
        return 1
    print(f"check_trace: OK ({len(argv)} file(s), {total_events} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
