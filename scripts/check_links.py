#!/usr/bin/env python3
"""Markdown link checker for the docs tree (CI: the docs job).

Walks the given Markdown files (default: ``README.md``, ``ROADMAP.md``,
``CHANGES.md``, ``docs/``, ``examples/README.md``) and verifies that every
*relative* link and image target resolves to an existing file, with any
``#fragment`` stripped.  External links (``http(s)://``, ``mailto:``) and
pure in-page anchors are skipped — this gate catches the common failure mode
of moving a file and leaving stale cross-references, without needing network
access.

Run from the repository root::

    python scripts/check_links.py            # default file set
    python scripts/check_links.py docs/*.md  # explicit files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links/images: [text](target) / ![alt](target).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

DEFAULT_TARGETS = [
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs",
    "examples/README.md",
]


def markdown_files(arguments: list) -> list:
    targets = arguments or DEFAULT_TARGETS
    files = []
    for raw in targets:
        path = (REPO_ROOT / raw) if not Path(raw).is_absolute() else Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"check_links: target {raw} does not exist", file=sys.stderr)
            raise SystemExit(2)
    return files


def check_file(path: Path) -> list:
    failures = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            try:
                shown = path.relative_to(REPO_ROOT)
            except ValueError:
                shown = path
            failures.append(f"{shown}:{line}: broken link -> {target}")
    return failures


def main() -> int:
    files = markdown_files(sys.argv[1:])
    failures = []
    checked = 0
    for path in files:
        checked += 1
        failures.extend(check_file(path))
    if failures:
        print(f"check_links: {len(failures)} broken link(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"check_links: OK ({checked} file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
