#!/usr/bin/env python3
"""Docstring-coverage gate for the public surface (CI: the docs job).

Two checks, both fatal on failure:

1. **Module docstrings** — every module under ``src/repro`` (including every
   package ``__init__.py``) must open with a docstring.  Checked with
   :mod:`ast`, so nothing is imported and side effects cannot hide a miss.
2. **Public entry points** — the load-bearing classes/functions a new user
   meets first (the quickstart API, the CLI, the planes' front doors) must
   each carry a docstring.  Checked by importing :mod:`repro`, so the list
   below breaks loudly if an entry point is renamed.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Dotted names of the top public entry points (module:attribute).
ENTRY_POINTS = [
    "repro.graphs.graph:Graph",
    "repro.graphs.csr:CSRGraph",
    "repro.graphs.generators:build_family",
    "repro.core.lca:SpannerLCA",
    "repro.core.lca:SpannerLCA.materialize",
    "repro.core.oracle:CachedOracle",
    "repro.core.registry:create",
    "repro.analysis.harness:evaluate_lca",
    "repro.service.engine:ServiceEngine",
    "repro.service.workload:make_workload",
    "repro.faults.plan:FaultPlan",
    "repro.faults.plan:FaultPlan.generate",
    "repro.faults.injector:FaultInjector",
    "repro.exec.backends:call_with_retries",
    "repro.obs.tracer:SpanTracer",
    "repro.obs.metrics:MetricsRegistry",
    "repro.obs.metrics:collect_run_metrics",
    "repro.obs.profiler:ProbeProfiler",
    "repro.obs.export:write_trace_jsonl",
    "repro.obs.export:chrome_trace",
    "repro.core.lca:SpannerLCA.attach_profiler",
    "repro.reports.spec:ScenarioSpec",
    "repro.reports.runner:run_scenario",
    "repro.reports.render:render_report",
    "repro.cli:build_parser",
]


def module_docstring_failures() -> list:
    failures = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(REPO_ROOT)
        if any(part.startswith("_") and part != "__init__.py" for part in relative.parts):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(relative))
        if ast.get_docstring(tree) is None:
            failures.append(f"{relative}: missing module docstring")
    return failures


def entry_point_failures() -> list:
    import importlib

    failures = []
    for dotted in ENTRY_POINTS:
        module_name, _, attribute_path = dotted.partition(":")
        try:
            target = importlib.import_module(module_name)
            for attribute in attribute_path.split("."):
                target = getattr(target, attribute)
        except (ImportError, AttributeError) as exc:
            failures.append(f"{dotted}: cannot resolve entry point ({exc})")
            continue
        if not (getattr(target, "__doc__", None) or "").strip():
            failures.append(f"{dotted}: public entry point has no docstring")
    return failures


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures = module_docstring_failures() + entry_point_failures()
    if failures:
        print(f"check_docs: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    modules = len(list(SRC_ROOT.rglob("*.py")))
    print(
        f"check_docs: OK ({modules} modules documented, "
        f"{len(ENTRY_POINTS)} entry points checked)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
