#!/usr/bin/env python3
"""Docstring-coverage gate for the public surface (CI: the docs job).

Thin shim over the lint framework's DOC001 rule
(:mod:`repro.lint.rules.docs`), kept so existing CI wiring and muscle
memory (``python scripts/check_docs.py``) keep working.  The checks
themselves — module docstrings everywhere under ``src/repro``, docstrings
on every public entry point — live in the rule; ``repro lint`` runs the
same code over the whole tree.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.lint import run_lint
    from repro.lint.rules.docs import ENTRY_POINTS, entry_point_failures

    report = run_lint(root=REPO_ROOT, paths=[SRC_ROOT])
    failures = [
        finding.render()
        for finding in report.findings
        if finding.code == "DOC001" and finding.message == "module has no docstring"
    ]
    failures.extend(entry_point_failures())
    if failures:
        print(f"check_docs: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    modules = len(list(SRC_ROOT.rglob("*.py")))
    print(
        f"check_docs: OK ({modules} modules documented, "
        f"{len(ENTRY_POINTS)} entry points checked)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
