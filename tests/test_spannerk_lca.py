"""End-to-end tests for the O(k²)-spanner LCA (Theorem 1.2)."""

from __future__ import annotations

import pytest

from repro import evaluate_lca, graphs
from repro.analysis import check_consistency, measure_stretch, preserves_connectivity
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


def tuned_params(n, k, budget, center_p, mark_p, quota=50):
    """Explicit parameters so both the sparse and dense code paths are active
    at test scale (the paper's defaults degenerate for very small n)."""
    return KSquaredParams(
        num_vertices=n,
        stretch_parameter=k,
        exploration_budget=budget,
        center_probability=center_p,
        mark_probability=mark_p,
        rank_quota=quota,
        independence=12,
    )


@pytest.fixture
def bounded_graph():
    return graphs.bounded_degree_expanderish(150, d=4, seed=3)


def test_default_parameters_give_valid_spanner(bounded_graph):
    lca = KSquaredSpannerLCA(bounded_graph, seed=7, stretch_parameter=2, shared_cache=True)
    report = evaluate_lca(lca)
    assert report.stretch.is_finite
    assert report.stretch.max_stretch <= lca.stretch_bound()
    assert report.connectivity_preserved


def test_all_sparse_regime_matches_baswana_sen_guarantee(bounded_graph):
    """With no centers every vertex is sparse: the whole spanner is the local
    Baswana–Sen simulation and must satisfy the (2k−1) stretch bound."""
    k = 3
    params = tuned_params(bounded_graph.num_vertices, k, budget=10, center_p=0.0, mark_p=0.2)
    lca = KSquaredSpannerLCA(bounded_graph, seed=7, params=params, shared_cache=True)
    materialized = lca.materialize()
    stretch = measure_stretch(bounded_graph, materialized.edges, limit=2 * k)
    assert stretch.max_stretch <= 2 * k - 1
    assert preserves_connectivity(bounded_graph, materialized.edges)


def test_all_dense_regime_voronoi_only(bounded_graph):
    """With every vertex a center, the dense machinery runs on singleton cells."""
    params = tuned_params(bounded_graph.num_vertices, 2, budget=6, center_p=1.0, mark_p=0.2)
    lca = KSquaredSpannerLCA(bounded_graph, seed=7, params=params, shared_cache=True)
    report = evaluate_lca(lca)
    assert report.connectivity_preserved
    assert report.stretch.max_stretch <= lca.stretch_bound()


def test_mixed_regime_connectivity_and_stretch(bounded_graph):
    params = tuned_params(bounded_graph.num_vertices, 2, budget=8, center_p=0.25, mark_p=0.25)
    lca = KSquaredSpannerLCA(bounded_graph, seed=11, params=params, shared_cache=True)
    report = evaluate_lca(lca)
    assert report.connectivity_preserved
    assert report.stretch.is_finite
    assert report.stretch.max_stretch <= lca.stretch_bound()


def test_consistency_of_answers(bounded_graph):
    params = tuned_params(bounded_graph.num_vertices, 2, budget=8, center_p=0.3, mark_p=0.3)
    lca = KSquaredSpannerLCA(bounded_graph, seed=5, params=params, shared_cache=True)
    sample = list(bounded_graph.edges())[:30]
    assert check_consistency(lca, edges=sample)


def test_shared_cache_does_not_change_answers():
    graph = graphs.bounded_degree_expanderish(80, d=4, seed=2)
    params = tuned_params(graph.num_vertices, 2, budget=6, center_p=0.3, mark_p=0.3)
    cached = KSquaredSpannerLCA(graph, seed=5, params=params, shared_cache=True)
    uncached = KSquaredSpannerLCA(graph, seed=5, params=params, shared_cache=False)
    edges = list(graph.edges())[:40]
    for (u, v) in edges:
        assert cached.query(u, v) == uncached.query(u, v)


def test_deterministic_in_seed():
    graph = graphs.bounded_degree_expanderish(80, d=4, seed=2)
    params = tuned_params(graph.num_vertices, 2, budget=6, center_p=0.3, mark_p=0.3)
    a = KSquaredSpannerLCA(graph, seed=9, params=params, shared_cache=True).materialize().edges
    b = KSquaredSpannerLCA(graph, seed=9, params=params, shared_cache=True).materialize().edges
    assert a == b


def test_grid_graph_large_diameter():
    graph = graphs.grid_graph(10, 10)
    params = tuned_params(graph.num_vertices, 3, budget=10, center_p=0.2, mark_p=0.3)
    lca = KSquaredSpannerLCA(graph, seed=3, params=params, shared_cache=True)
    report = evaluate_lca(lca)
    assert report.connectivity_preserved
    assert report.stretch.max_stretch <= lca.stretch_bound()


def test_disconnected_graph_components_preserved():
    graph = graphs.disjoint_union(
        [graphs.cycle_graph(30), graphs.grid_graph(5, 6)]
    )
    params = tuned_params(graph.num_vertices, 2, budget=6, center_p=0.3, mark_p=0.3)
    lca = KSquaredSpannerLCA(graph, seed=3, params=params, shared_cache=True)
    materialized = lca.materialize()
    assert preserves_connectivity(graph, materialized.edges)


def test_probe_accounting_without_shared_cache():
    graph = graphs.bounded_degree_expanderish(60, d=4, seed=1)
    params = tuned_params(graph.num_vertices, 2, budget=6, center_p=0.3, mark_p=0.3)
    lca = KSquaredSpannerLCA(graph, seed=5, params=params, shared_cache=False)
    u, v = next(iter(graph.edges()))
    outcome = lca.query_with_stats(u, v)
    assert outcome.probe_total > 0
    # far below reading the whole graph
    assert outcome.probe_total < 2 * graph.num_edges


def test_stretch_parameter_controls_nominal_bound():
    graph = graphs.cycle_graph(30)
    small_k = KSquaredSpannerLCA(graph, seed=1, stretch_parameter=1)
    large_k = KSquaredSpannerLCA(graph, seed=1, stretch_parameter=4)
    assert small_k.stretch_bound() < large_k.stretch_bound()
