"""Cross-executor equivalence: the parallel plane changes wall-clock only.

The refactor's contract: for every construction, ``materialize`` through any
executor backend ("serial", "thread", "process") and any worker count
produces the *same spanner edges*, the *same per-query probe totals* and the
*same per-kind probe counts* as the in-process batched engine.  The chunk
plan/execute split, the shared-memory graph transfer and the snapshot/merge
fold-back must all be invisible to the model-level observables.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.cache import CacheSnapshot, is_portable_namespace
from repro.core.errors import NotAnEdgeError
from repro.core.registry import create
from repro.core.seed import Seed
from repro.exec import (
    EXECUTOR_BACKENDS,
    build_chunk_plans,
    get_executor,
    resolve_workers,
)
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


def _spanner3(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def _spanner5(graph):
    return create("spanner5", graph, seed=5, hitting_constant=1.0)


def _spannerk(graph):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=2,
        exploration_budget=6,
        center_probability=0.3,
        mark_probability=0.25,
        rank_quota=20,
        independence=12,
    )
    return KSquaredSpannerLCA(graph, seed=7, params=params)


CASES = {
    "spanner3": (_spanner3, lambda: graphs.gnp_graph(70, 0.25, seed=11)),
    "spanner5": (
        _spanner5,
        lambda: graphs.dense_cluster_graph(80, 10, inter_probability=0.05, seed=5),
    ),
    "spannerk": (_spannerk, lambda: graphs.bounded_degree_expanderish(80, d=4, seed=3)),
}


def _signature(materialized):
    return (
        frozenset(materialized.edges),
        tuple(materialized.probe_stats.query_totals),
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_all_backends_and_worker_counts_match_the_serial_engine(name):
    factory, graph_factory = CASES[name]
    graph = graph_factory()
    baseline_lca = factory(graph)
    baseline = baseline_lca.materialize(mode="batched")
    reference = _signature(baseline)
    reference_counter = baseline_lca.probe_counter.snapshot()
    for executor in EXECUTOR_BACKENDS:
        # Worker counts 1..4 change the chunking (and, for thread/process,
        # the actual concurrency); none of it may leak into the results.
        for workers in (1, 2, 3, 4):
            lca = factory(graph)
            materialized = lca.materialize(executor=executor, workers=workers)
            assert _signature(materialized) == reference, (executor, workers)
            assert lca.probe_counter.snapshot() == reference_counter, (
                executor,
                workers,
                "per-kind probe accounting diverged",
            )


def test_edge_subset_materialization_matches_and_validates():
    graph = graphs.gnp_graph(50, 0.2, seed=2)
    subset = list(graph.edges())[10:40]
    serial = _spanner3(graph).materialize(edges=subset, mode="batched")
    parallel = _spanner3(graph).materialize(
        edges=subset, executor="process", workers=2
    )
    assert _signature(parallel) == _signature(serial)
    with pytest.raises(NotAnEdgeError):
        _spanner3(graph).materialize(
            edges=[(0, graph.num_vertices + 3)], executor="serial"
        )


def test_parallel_materialize_rejects_conflicting_mode_and_unknown_backend():
    graph = graphs.gnp_graph(30, 0.2, seed=1)
    lca = _spanner3(graph)
    with pytest.raises(ValueError, match="batched engine"):
        lca.materialize(mode="cold", executor="serial")
    with pytest.raises(ValueError, match="unknown executor backend"):
        lca.materialize(executor="gpu")
    with pytest.raises(ValueError):
        lca.materialize(executor="serial", workers=0)


def test_unregistered_lca_gets_a_clear_error():
    from repro.core.lca import KeepAllLCA

    graph = graphs.gnp_graph(20, 0.3, seed=1)
    lca = KeepAllLCA(graph, seed=1)
    with pytest.raises(ValueError, match="not a registered construction"):
        lca.materialize(executor="serial")


def test_empty_edge_subset_yields_empty_spanner():
    graph = graphs.gnp_graph(20, 0.3, seed=1)
    materialized = _spanner3(graph).materialize(edges=[], executor="process")
    assert materialized.num_edges == 0
    assert materialized.probe_stats.queries == 0


def test_chunk_plans_cover_edges_exactly_once_in_order():
    graph = graphs.gnp_graph(40, 0.2, seed=4)
    lca = _spanner3(graph)
    edges = list(graph.edges())
    from repro.exec import InlineGraphRef

    plans = build_chunk_plans(InlineGraphRef(graph), lca.executor_spec(), edges, 3)
    reassembled = [edge for plan in plans for edge in plan.edges]
    assert reassembled == edges
    assert [plan.chunk_id for plan in plans] == list(range(len(plans)))
    sizes = [len(plan.edges) for plan in plans]
    assert max(sizes) - min(sizes) <= 1  # balanced contiguous slices


# --------------------------------------------------------------------------- #
# Snapshot / merge protocol
# --------------------------------------------------------------------------- #
def test_portable_namespace_predicate():
    assert is_portable_namespace("query-answer")
    assert is_portable_namespace(("query-answer", "spanner3", 5, None))
    assert is_portable_namespace(Seed(7))
    assert is_portable_namespace(("x", Seed(7), 1.5, True))
    assert not is_portable_namespace((object(), "role"))
    assert not is_portable_namespace([1, 2])  # unhashable anyway


def test_worker_memo_state_folds_back_into_the_coordinator():
    graph = graphs.gnp_graph(60, 0.2, seed=3)
    lca = _spanner3(graph)
    materialized = lca.materialize(executor="process", workers=2)
    cache = lca.oracle_cache
    assert cache is not None
    # The merged query-answer memo answers repeat queries from warm state…
    hits_before = cache.stats.hits
    edges = list(graph.edges())[:25]
    batch = lca.query_batch(edges)
    assert cache.stats.hits > hits_before
    # …while still charging the cold-schedule probe totals.
    cold = _spanner3(graph)
    cold_batch = cold.query_batch(edges)
    assert batch.answers == cold_batch.answers
    assert batch.probe_totals == cold_batch.probe_totals
    assert all(
        ((u, v) in materialized.edges or (v, u) in materialized.edges)
        == answer
        for (u, v), answer in zip(edges, batch.answers)
    )


def test_snapshot_merge_is_order_independent_and_accounting_preserving():
    graph = graphs.gnp_graph(50, 0.2, seed=8)
    edges = list(graph.edges())
    half_a, half_b = edges[: len(edges) // 2], edges[len(edges) // 2 :]

    worker_a = _spanner3(graph)
    worker_a.query_batch(half_a)
    snap_a = worker_a.ensure_cached_oracle().snapshot_state()
    worker_b = _spanner3(graph)
    worker_b.query_batch(half_b)
    snap_b = worker_b.ensure_cached_oracle().snapshot_state()

    merged_ab = _spanner3(graph).ensure_cached_oracle()
    merged_ab.merge_state(snap_a)
    merged_ab.merge_state(snap_b)
    merged_ba = _spanner3(graph).ensure_cached_oracle()
    merged_ba.merge_state(snap_b)
    merged_ba.merge_state(snap_a)
    assert merged_ab.snapshot_state().memos == merged_ba.snapshot_state().memos
    assert merged_ab.snapshot_state().entries == len(edges)

    # A coordinator that only *merged* state still charges cold totals.
    coordinator = _spanner3(graph)
    coordinator.ensure_cached_oracle().merge_state(snap_a)
    replay = coordinator.query_batch(half_a)
    cold = _spanner3(graph).query_batch(half_a)
    assert replay.answers == cold.answers
    assert replay.probe_totals == cold.probe_totals


def test_incremental_snapshots_are_disjoint_and_sum_to_the_whole():
    """Chunk workers export through a SnapshotCursor: consecutive snapshots
    carry only new entries and stat deltas, so a coordinator folding every
    chunk counts each entry and each lookup exactly once."""
    from repro.core.cache import SnapshotCursor

    graph = graphs.gnp_graph(40, 0.25, seed=9)
    edges = list(graph.edges())
    lca = _spanner3(graph)
    oracle = lca.ensure_cached_oracle()
    cursor = SnapshotCursor()

    lca.query_batch(edges[:20])
    first = oracle.snapshot_state(since=cursor)
    lca.query_batch(edges[20:40])
    second = oracle.snapshot_state(since=cursor)
    empty = oracle.snapshot_state(since=cursor)  # nothing new since

    namespace = lca.query_answer_namespace()
    assert set(first.memos[namespace]) == set(edges[:20])
    assert set(second.memos[namespace]) == set(edges[20:40])
    assert empty.entries == 0 and empty.hits == 0 and empty.misses == 0
    full = oracle.snapshot_state()
    assert first.hits + second.hits == full.hits
    assert first.misses + second.misses == full.misses

    # Folding the deltas reproduces the full portable table.
    sink = _spanner3(graph).ensure_cached_oracle()
    sink.merge_state(first)
    sink.merge_state(second)
    assert sink.snapshot_state().memos[namespace] == full.memos[namespace]
    assert sink.cache.stats.hits == full.hits
    assert sink.cache.stats.misses == full.misses


def test_parallel_fold_counts_each_memo_entry_and_stat_once():
    """Serial-executor chunks share one worker LCA (same thread), so the
    folded coordinator stats must equal one LCA streaming all edges — any
    cumulative re-merge of earlier chunks would inflate them."""
    graph = graphs.gnp_graph(50, 0.2, seed=12)
    edges = list(graph.edges())
    lca = _spanner3(graph)
    lca.materialize(executor="serial", workers=3)  # 6 chunks, one worker LCA
    table = lca.oracle_cache.memo(lca.query_answer_namespace())
    assert len(table) == len(edges)

    reference = _spanner3(graph)
    reference.query_batch(edges)
    assert lca.oracle_cache.stats.hits == reference.oracle_cache.stats.hits
    assert lca.oracle_cache.stats.misses == reference.oracle_cache.stats.misses


def test_serial_executor_clears_its_worker_slot():
    from repro.exec.plan import _WORKER_TLS

    graph = graphs.gnp_graph(30, 0.25, seed=2)
    _spanner3(graph).materialize(executor="serial", workers=2)
    assert getattr(_WORKER_TLS, "slot", None) is None


def test_snapshot_excludes_process_local_namespaces():
    graph = graphs.gnp_graph(40, 0.25, seed=6)
    lca = _spanner3(graph)
    lca.materialize(mode="batched")  # populates per-vertex object-keyed memos
    snapshot = lca.ensure_cached_oracle().snapshot_state()
    assert isinstance(snapshot, CacheSnapshot)
    for namespace in snapshot.memos:
        assert is_portable_namespace(namespace), namespace


def test_back_to_back_runs_do_not_leak_worker_state_across_graphs():
    """Serial/thread workers cache LCAs thread-locally; the per-run token
    must isolate runs, even over distinct graphs with colliding specs."""
    results = {}
    for seed in (31, 32):
        graph = graphs.gnp_graph(45, 0.22, seed=seed)
        baseline = _signature(_spanner3(graph).materialize(mode="batched"))
        for executor in ("serial", "thread"):
            run = _signature(
                _spanner3(graph).materialize(executor=executor, workers=2)
            )
            assert run == baseline, (seed, executor)
        results[seed] = baseline
    assert results[31] != results[32]  # the two graphs genuinely differ


def test_resolve_workers_defaults_and_bounds():
    assert resolve_workers(None, "serial") == 1
    assert resolve_workers(3, "process") == 3
    assert resolve_workers(None, "process") >= 2
    with pytest.raises(ValueError):
        resolve_workers(0, "thread")
    assert get_executor("serial").name == "serial"
