"""Tests for per-edge stretch certificates."""

from __future__ import annotations

import pytest

from repro.analysis import (
    best_guarantee_by_degree,
    certify_edge,
    certify_edges,
    measure_stretch,
    summarize_certificates,
)
from repro.core.errors import ParameterError
from repro.core.lca import KeepAllLCA
from repro.graphs import gnp_graph, planted_hub_graph
from repro.spanner3 import ThreeSpannerLCA
from repro.spanner5 import FiveSpannerLCA


@pytest.fixture
def graph():
    return planted_hub_graph(120, num_hubs=4, hub_degree=60, seed=9)


def test_kept_edges_certify_stretch_one(graph):
    lca = ThreeSpannerLCA(graph, seed=3)
    for (u, v) in list(graph.edges())[:30]:
        certificate = certify_edge(lca, u, v)
        if certificate.in_spanner:
            assert certificate.guarantee == 1
            assert certificate.rule == "kept"
        else:
            assert certificate.guarantee == 3


def test_certificates_are_sound_for_three_spanner(graph):
    """The measured per-edge distance in the spanner never exceeds the
    certified guarantee."""
    lca = ThreeSpannerLCA(graph, seed=3)
    materialized = lca.materialize()
    certificates = certify_edges(lca, graph.edges())
    for certificate in certificates:
        report = measure_stretch(
            graph,
            materialized.edges,
            limit=certificate.guarantee,
            sample_edges=[certificate.edge],
        )
        assert report.max_stretch <= certificate.guarantee
        assert report.disconnected_edges == 0


def test_certificates_are_sound_for_five_spanner():
    graph = gnp_graph(70, 0.25, seed=11)
    lca = FiveSpannerLCA(graph, seed=5)
    materialized = lca.materialize()
    for certificate in certify_edges(lca, list(graph.edges())[:60]):
        report = measure_stretch(
            graph,
            materialized.edges,
            limit=certificate.guarantee,
            sample_edges=[certificate.edge],
        )
        assert report.max_stretch <= certificate.guarantee


def test_certificate_rows_and_summary(graph):
    lca = ThreeSpannerLCA(graph, seed=3)
    certificates = certify_edges(lca, list(graph.edges())[:40])
    row = certificates[0].as_row()
    assert "rule" in row and "per-edge stretch" in row
    summary = summarize_certificates(certificates)
    assert summary["total"] == 40
    assert summary["kept"] <= 40
    assert sum(summary["by_rule"].values()) == 40
    assert sum(summary["by_guarantee"].values()) == 40


def test_best_guarantee_by_degree_three_spanner(graph):
    lca = ThreeSpannerLCA(graph, seed=3)
    low = lca.params.low_threshold
    assert best_guarantee_by_degree(lca, low, 10 * low) == 1
    assert best_guarantee_by_degree(lca, low + 1, low + 2) == 3


def test_best_guarantee_by_degree_five_spanner():
    graph = gnp_graph(60, 0.3, seed=2)
    lca = FiveSpannerLCA(graph, seed=3)
    params = lca.params
    assert best_guarantee_by_degree(lca, params.low_threshold, 1000) == 1
    assert (
        best_guarantee_by_degree(lca, params.low_threshold + 1, params.super_threshold + 1)
        == 3
    )
    mid = params.low_threshold + 1
    if mid <= params.super_threshold:
        assert best_guarantee_by_degree(lca, mid, mid) == 5


def test_unsupported_construction_rejected(graph):
    keep_all = KeepAllLCA(graph, seed=1)
    u, v = next(iter(graph.edges()))
    with pytest.raises(ParameterError):
        certify_edge(keep_all, u, v)
    with pytest.raises(ParameterError):
        best_guarantee_by_degree(keep_all, 3, 4)
