"""Tests for the evaluation harness, sweeps and table formatting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    check_consistency,
    evaluate_lca,
    evaluate_materialized,
    exponent_row,
    format_comparison,
    format_table,
    probe_complexity_sample,
    run_sweep,
)
from repro.core.lca import KeepAllLCA
from repro.graphs import cycle_graph, gnp_graph
from repro.spanner3 import ThreeSpannerLCA


def test_evaluate_keep_all_lca():
    graph = gnp_graph(40, 0.2, seed=1)
    report = evaluate_lca(KeepAllLCA(graph, seed=1))
    assert report.num_spanner_edges == graph.num_edges
    assert report.stretch.max_stretch == 1
    assert report.stretch_ok
    assert report.connectivity_preserved
    assert report.density == pytest.approx(1.0)
    row = report.as_row()
    assert row["n"] == 40 and row["|H|"] == graph.num_edges


def test_evaluate_materialized_with_sampled_stretch():
    graph = gnp_graph(50, 0.2, seed=2)
    lca = ThreeSpannerLCA(graph, seed=3)
    materialized = lca.materialize()
    report = evaluate_materialized(graph, materialized, sample_stretch_edges=20)
    assert report.stretch.checked_edges == 20
    assert report.stretch_ok


def test_probe_complexity_sample():
    graph = gnp_graph(60, 0.2, seed=4)
    lca = ThreeSpannerLCA(graph, seed=3)
    stats = probe_complexity_sample(lca, num_queries=15, seed=1)
    assert stats["queries"] == 15
    assert stats["max"] >= stats["mean"] > 0


def test_probe_complexity_sample_empty_graph():
    from repro.graphs import Graph

    graph = Graph({0: [], 1: []})
    lca = KeepAllLCA(graph, seed=1)
    assert probe_complexity_sample(lca, 5)["queries"] == 0


def test_check_consistency_detects_inconsistent_lca():
    graph = cycle_graph(10)

    class FlakyLCA(KeepAllLCA):
        def __init__(self, graph, seed):
            super().__init__(graph, seed)
            self._toggle = False

        def _decide(self, oracle, u, v):
            self._toggle = not self._toggle
            return self._toggle

    assert not check_consistency(FlakyLCA(graph, seed=1))
    assert check_consistency(KeepAllLCA(graph, seed=1))


def test_run_sweep_and_exponent_fit():
    sweep = run_sweep(
        "keep-all",
        lca_factory=lambda g, s: KeepAllLCA(g, s),
        graph_factory=lambda n, s: gnp_graph(n, 0.3, seed=s),
        sizes=[20, 40, 80],
        materialize=True,
        stretch_sample=30,
    )
    assert len(sweep.points) == 3
    # keep-all spanner size grows roughly like m ~ n² for fixed p
    exponent = sweep.size_exponent()
    assert exponent is not None and 1.5 < exponent < 2.5
    rows = sweep.rows()
    assert rows[0]["n"] == 20
    summary = exponent_row(sweep, target_size_exponent=2.0, target_probe_exponent=0.0)
    assert summary["algorithm"] == "keep-all"


def test_run_sweep_sampled_mode():
    sweep = run_sweep(
        "spanner3-sampled",
        lca_factory=lambda g, s: ThreeSpannerLCA(g, seed=s),
        graph_factory=lambda n, s: gnp_graph(n, 0.3, seed=s),
        sizes=[30, 60],
        materialize=False,
        probe_queries=10,
    )
    assert len(sweep.points) == 2
    assert all(p.stretch is None for p in sweep.points)
    assert all(p.spanner_edges <= p.num_edges for p in sweep.points)


def test_format_table_alignment_and_values():
    rows = [
        {"algorithm": "a", "n": 10, "ok": True, "x": None},
        {"algorithm": "bb", "n": 2000, "ok": False, "x": 1.23456},
    ]
    text = format_table(rows, title="Demo")
    assert "Demo" in text
    assert "algorithm" in text and "bb" in text
    assert "yes" in text and "no" in text and "-" in text
    assert format_table([], title="Empty").startswith("Empty")


def test_format_comparison_adds_ratio():
    rows = [{"name": "x", "measured": 50, "target": 100}]
    text = format_comparison(rows, "measured", "target", title="Cmp")
    assert "ratio" in text
    assert "0.5" in text
