"""Deterministic span tracer + export formats (repro.obs.tracer / .export)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    SpanTracer,
    TRACE_SCHEMA,
    chrome_trace,
    read_trace_jsonl,
    span_records,
    summarize_spans,
    trace_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)


def emit_sample(tracer):
    """A small deterministic span stream exercising nesting and overlap."""
    with tracer.span("run", "service", workload="zipf") as root:
        tracer.instant("checkpoint", "service", cycle=3)
        with tracer.span("batch", "service", size=4):
            tracer.instant("retry", "fault", shard=1)
        overlapping = tracer.begin("batch", "service", parent=root, size=2)
        tracer.instant("failover", "fault", shard=0)
        tracer.end(overlapping, served=2)
    return tracer


# ---------------------------------------------------------------------------
# tracer semantics
# ---------------------------------------------------------------------------


def test_span_nesting_and_parents():
    tracer = emit_sample(SpanTracer())
    spans = {(s.cat, s.name, s.span_id): s for s in tracer.finished()}
    by_name = {}
    for span in tracer.finished():
        by_name.setdefault(span.name, []).append(span)
    root = by_name["run"][0]
    assert root.parent_id is None
    # Context-manager nesting, explicit parents and instants all attach to
    # the root.
    for span in by_name["batch"] + by_name["checkpoint"]:
        assert span.parent_id == root.span_id
    # The instant inside the nested batch span attaches to that batch.
    nested_batch = by_name["batch"][0]
    retry = by_name["retry"][0]
    assert retry.parent_id == nested_batch.span_id
    assert retry.begin == retry.end
    assert spans  # sanity: ids are unique


def test_ticks_are_monotone_and_internal():
    tracer = emit_sample(SpanTracer())
    events = []
    for span in tracer.finished():
        events.append(span.begin)
        events.append(span.end)
    # Every begin/end consumed its own tick: all stamps distinct except
    # instants (begin == end), and bounded by the number of tick events.
    assert max(events) <= 2 * len(tracer.finished())
    for span in tracer.finished():
        assert span.end >= span.begin


def test_begin_end_args_merge():
    tracer = SpanTracer()
    span = tracer.begin("batch", "service", size=4)
    tracer.end(span, served=3)
    (finished,) = tracer.finished()
    assert finished.args == {"size": 4, "served": 3}


def test_ring_buffer_drops_oldest_and_counts():
    tracer = SpanTracer(capacity=3)
    for index in range(5):
        tracer.instant("event", "test", index=index)
    finished = tracer.finished()
    assert len(finished) == 3
    assert tracer.dropped == 2
    assert [span.args["index"] for span in finished] == [2, 3, 4]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SpanTracer(capacity=0)


def test_null_tracer_is_disabled_and_silent():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("run", "service") as span:
        assert span is None
    NULL_TRACER.end(NULL_TRACER.begin("x", "y"))
    NULL_TRACER.instant("x")
    assert NULL_TRACER.finished() == []
    assert NULL_TRACER.dropped == 0


def test_same_operations_same_bytes():
    first = trace_jsonl(emit_sample(SpanTracer()))
    second = trace_jsonl(emit_sample(SpanTracer()))
    assert first == second
    assert first  # non-empty


# ---------------------------------------------------------------------------
# export formats
# ---------------------------------------------------------------------------


def test_span_records_sorted_and_schema_stamped():
    records = span_records(emit_sample(SpanTracer()))
    assert all(record["schema"] == TRACE_SCHEMA for record in records)
    keys = [(record["begin"], record["id"]) for record in records]
    assert keys == sorted(keys)


def test_jsonl_round_trip(tmp_path):
    tracer = emit_sample(SpanTracer())
    path = tmp_path / "t.jsonl"
    written = write_trace_jsonl(path, tracer)
    assert written == len(tracer.finished())
    loaded = read_trace_jsonl(path)
    assert loaded == span_records(tracer)
    # Loaded record dicts feed back through the same export paths.
    assert summarize_spans(loaded) == summarize_spans(tracer)
    assert chrome_trace(loaded) == chrome_trace(tracer)


def test_read_errors_are_one_line(tmp_path):
    with pytest.raises(ValueError, match="cannot read trace file"):
        read_trace_jsonl(tmp_path / "missing.jsonl")
    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text("not json\n")
    with pytest.raises(ValueError, match=r"corrupt\.jsonl:1: malformed"):
        read_trace_jsonl(corrupt)
    wrong_schema = tmp_path / "schema.jsonl"
    record = span_records(emit_sample(SpanTracer()))[0]
    record["schema"] = 99
    wrong_schema.write_text(json.dumps(record) + "\n")
    with pytest.raises(ValueError, match="trace schema 99"):
        read_trace_jsonl(wrong_schema)


def test_chrome_trace_shapes(tmp_path):
    tracer = emit_sample(SpanTracer())
    document = chrome_trace(tracer)
    assert set(document) == {"traceEvents", "displayTimeUnit", "metadata"}
    phases = {event["ph"] for event in document["traceEvents"]}
    assert phases == {"X", "i"}
    for event in document["traceEvents"]:
        assert {"pid", "tid", "name", "cat", "ts", "ph"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 1
        else:
            assert "dur" not in event
    path = tmp_path / "t.json"
    count = write_chrome_trace(path, tracer)
    assert count == len(document["traceEvents"])
    assert json.loads(path.read_text()) == document


def test_summarize_spans_aggregates_per_cat_name():
    rows = summarize_spans(emit_sample(SpanTracer()))
    by_key = {(row["cat"], row["name"]): row for row in rows}
    assert by_key[("service", "batch")]["count"] == 2
    assert by_key[("fault", "retry")]["ticks"] == 0
    assert by_key[("service", "run")]["max_ticks"] >= 1
    # Rows come out sorted by (cat, name).
    keys = [(row["cat"], row["name"]) for row in rows]
    assert keys == sorted(keys)
