"""Tests for the LCA registry."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.errors import ParameterError
from repro.core.lca import KeepAllLCA
from repro.graphs import gnp_graph


def test_builtin_constructions_are_registered():
    names = registry.available()
    for expected in ("spanner3", "spanner5", "spannerk", "sparse-spanning"):
        assert expected in names


def test_create_instantiates_by_name():
    graph = gnp_graph(40, 0.2, seed=1)
    lca = registry.create("spanner3", graph, seed=3)
    assert lca.name == "spanner3"
    u, v = next(iter(graph.edges()))
    assert isinstance(lca.query(u, v), bool)


def test_create_unknown_name_raises():
    graph = gnp_graph(10, 0.3, seed=1)
    with pytest.raises(ParameterError):
        registry.create("does-not-exist", graph, seed=1)


def test_create_many():
    graph = gnp_graph(30, 0.2, seed=1)
    lcas = registry.create_many(["spanner3", "spanner5"], graph, seed=2)
    assert [l.name for l in lcas] == ["spanner3", "spanner5"]


def test_duplicate_registration_rejected():
    with pytest.raises(ParameterError):

        @registry.register("spanner3")
        def _factory(graph, seed, **kwargs):  # pragma: no cover - never called
            return KeepAllLCA(graph, seed)


def test_custom_registration_roundtrip():
    @registry.register("test-keep-all-registry")
    def _factory(graph, seed, **kwargs):
        return KeepAllLCA(graph, seed)

    graph = gnp_graph(12, 0.4, seed=1)
    lca = registry.create("test-keep-all-registry", graph, seed=1)
    assert lca.materialize().num_edges == graph.num_edges
