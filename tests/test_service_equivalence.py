"""Sharded + scheduled serving is observationally identical to one oracle.

The service layer may reorder work (batch coalescing), partition memo state
(sharding) and shed load (admission control), but the LCA contract says the
answer to every query — and its cold-schedule probe total — is a pure
function of ``(graph, seed, query)``.  These tests pin that end to end for
all three paper constructions: every request served by any engine
configuration must return the same answer *and* the same per-request probe
total as a fresh single-oracle baseline answering the same stream.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.registry import create
from repro.service import (
    ServiceConfig,
    ServiceEngine,
    ShardRouter,
    make_workload,
)
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


def _spanner3(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def _spanner5(graph):
    return create("spanner5", graph, seed=5, hitting_constant=1.0)


def _spannerk(graph):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=2,
        exploration_budget=6,
        center_probability=0.3,
        mark_probability=0.25,
        rank_quota=20,
        independence=12,
    )
    return KSquaredSpannerLCA(graph, seed=7, params=params)


CASES = {
    "spanner3": (_spanner3, lambda: graphs.gnp_graph(70, 0.25, seed=11)),
    "spanner5": (
        _spanner5,
        lambda: graphs.dense_cluster_graph(80, 10, inter_probability=0.05, seed=5),
    ),
    "spannerk": (_spannerk, lambda: graphs.bounded_degree_expanderish(80, d=4, seed=3)),
}

#: Engine configurations spanning the axes: shard counts, routing policies,
#: batch sizes, and the unbatched baseline path.
CONFIGS = [
    ServiceConfig(num_shards=1, batch_size=1, coalesce=False),
    ServiceConfig(num_shards=1, batch_size=16, coalesce=True),
    ServiceConfig(num_shards=3, batch_size=8, routing="hash"),
    ServiceConfig(num_shards=3, batch_size=8, routing="range"),
    ServiceConfig(num_shards=4, batch_size=32, routing="hash", coalesce=False),
]

NUM_REQUESTS = 300


def _served_stream(factory, graph, config, kind="uniform", seed=9):
    workload = make_workload(kind, graph, num_requests=NUM_REQUESTS, seed=seed)
    engine = ServiceEngine(graph, factory, config)
    report = engine.run(workload)
    assert report.served == len(engine.records)
    return engine.records, report


def _cold_baseline(factory, graph, records):
    """Answer the exact served stream with one fresh cold oracle."""
    baseline = factory(graph)
    out = []
    for record in records:
        outcome = baseline.query_with_stats(record.u, record.v)
        out.append((outcome.in_spanner, outcome.probe_total))
    return out


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("config_index", range(len(CONFIGS)))
def test_served_answers_and_probe_totals_match_single_oracle(name, config_index):
    factory, make_graph = CASES[name]
    graph = make_graph()
    config = CONFIGS[config_index]
    records, _ = _served_stream(factory, graph, config)
    assert records, "no requests served"
    baseline = _cold_baseline(factory, graph, records)
    for record, (answer, total) in zip(records, baseline):
        assert record.in_spanner == answer, (name, config_index, record)
        assert record.probe_total == total, (name, config_index, record)


@pytest.mark.parametrize("name", sorted(CASES))
def test_every_engine_config_serves_the_identical_stream(name):
    """Same workload seed ⇒ identical request streams and identical answers
    across all engine configurations (scheduling is answer-invisible)."""
    factory, make_graph = CASES[name]
    graph = make_graph()
    streams = []
    for config in CONFIGS:
        records, _ = _served_stream(factory, graph, config)
        streams.append([(r.u, r.v, r.in_spanner, r.probe_total) for r in records])
    for stream in streams[1:]:
        assert stream == streams[0]


@pytest.mark.parametrize("name", sorted(CASES))
def test_adaptive_stream_replays_identically(name):
    """The adaptive workload steers on answers; identical answers ⇒ the whole
    stream is reproducible, and a cold replay of the served log agrees."""
    factory, make_graph = CASES[name]
    graph = make_graph()
    config = ServiceConfig(num_shards=3, batch_size=8)
    records, _ = _served_stream(factory, graph, config, kind="adaptive")
    baseline = _cold_baseline(factory, graph, records)
    for record, (answer, total) in zip(records, baseline):
        assert record.in_spanner == answer
        assert record.probe_total == total


def test_zipf_and_repeat_requests_still_charge_cold_schedule():
    """Repeat-heavy streams hit the query-answer memo; every hit must charge
    exactly the cold probe total again."""
    graph = graphs.gnp_graph(60, 0.3, seed=4)
    factory = _spanner3
    config = ServiceConfig(num_shards=2, batch_size=16)
    records, report = _served_stream(factory, graph, config, kind="zipf")
    # The stream must actually exercise the memo for this test to mean much.
    hits = sum(r.cache_hits for r in report.shard_reports)
    assert hits > 0, "zipf stream produced no repeat requests"
    seen = {}
    for record in records:
        key = (record.u, record.v)
        if key in seen:
            assert record.probe_total == seen[key], "repeat charged differently"
        else:
            seen[key] = record.probe_total
    baseline = _cold_baseline(factory, graph, records)
    for record, (answer, total) in zip(records, baseline):
        assert record.in_spanner == answer
        assert record.probe_total == total


def test_shard_counters_sum_to_single_oracle_totals():
    """Per-shard probe counters partition the run's total probe charge."""
    graph = graphs.gnp_graph(70, 0.25, seed=11)
    config = ServiceConfig(num_shards=3, batch_size=8)
    records, report = _served_stream(_spanner3, graph, config)
    total_from_shards = sum(r.probes.total for r in report.shard_reports)
    assert total_from_shards == report.probe_stats.total
    assert sum(r.requests for r in report.shard_reports) == report.served
    assert len(records) == report.served


def test_router_is_orientation_invariant_and_total():
    graph = graphs.gnp_graph(50, 0.2, seed=8)
    for policy in ("hash", "range"):
        router = ShardRouter(4, graph.num_vertices, policy)
        for (u, v) in graph.edges():
            shard = router.shard_of_edge(u, v)
            assert shard == router.shard_of_edge(v, u)
            assert 0 <= shard < 4
