"""Shared fixtures for the test suite.

Graphs are kept deliberately small: LCA queries are pure Python and the
verification harness materializes full spanners by querying every edge, so
the fixtures trade statistical strength for runtime.  Every fixture is
deterministic (fixed seeds).
"""

from __future__ import annotations

import pytest

from repro import graphs


@pytest.fixture
def small_dense_graph():
    """A dense-ish random graph (exercises E_high / E_super paths)."""
    return graphs.gnp_graph(90, 0.25, seed=11)


@pytest.fixture
def clustered_graph():
    """Dense clusters joined sparsely (medium-degree band is populated)."""
    return graphs.dense_cluster_graph(100, 10, inter_probability=0.05, seed=5)


@pytest.fixture
def bounded_degree_graph():
    """A connected bounded-degree graph (habitat of the O(k²) LCA)."""
    return graphs.bounded_degree_expanderish(150, d=4, seed=3)


@pytest.fixture
def hub_graph():
    """Sparse backbone plus a few high-degree hubs (degree-skewed input)."""
    return graphs.planted_hub_graph(120, num_hubs=4, hub_degree=60, seed=9)


@pytest.fixture
def tiny_graph():
    """A hand-sized graph for exhaustive checks."""
    return graphs.gnp_graph(24, 0.3, seed=2)


@pytest.fixture
def path_like_graph():
    return graphs.path_graph(30, seed=1)


@pytest.fixture
def seed():
    return 12345
