"""Tests for vertex / edge identifier helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import ids


def test_vertex_id_is_identity_for_ints():
    assert ids.vertex_id(42) == 42
    assert ids.vertex_id(0) == 0


def test_ordered_edge_id_preserves_order():
    assert ids.ordered_edge_id(5, 3) == (5, 3)
    assert ids.ordered_edge_id(3, 5) == (3, 5)


def test_canonical_edge_id_sorts_endpoints():
    assert ids.canonical_edge_id(5, 3) == (3, 5)
    assert ids.canonical_edge_id(3, 5) == (3, 5)


def test_canonical_edge_matches_id():
    assert ids.canonical_edge(9, 2) == (2, 9)


def test_canonicalize_edges_deduplicates_orientations():
    edges = [(1, 2), (2, 1), (3, 4)]
    assert ids.canonicalize_edges(edges) == {(1, 2), (3, 4)}


def test_is_self_loop():
    assert ids.is_self_loop(7, 7)
    assert not ids.is_self_loop(7, 8)


def test_min_edge_by_ordered_id_picks_lexicographic_minimum():
    edges = [(5, 1), (2, 9), (2, 3)]
    assert ids.min_edge_by_ordered_id(edges) == (2, 3)


def test_min_edge_by_ordered_id_empty_returns_none():
    assert ids.min_edge_by_ordered_id([]) is None


def test_min_edge_by_canonical_id_ignores_orientation():
    edges = [(9, 1), (4, 3)]
    # canonical ids: (1, 9) and (3, 4) -> minimum is (9, 1) whose canonical id is smaller
    assert ids.min_edge_by_canonical_id(edges) == (9, 1)


def test_require_hashable_rejects_unhashable():
    with pytest.raises(TypeError):
        ids.require_hashable([1, 2, 3])


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
def test_canonical_edge_is_symmetric(u, v):
    assert ids.canonical_edge(u, v) == ids.canonical_edge(v, u)
    a, b = ids.canonical_edge(u, v)
    assert a <= b


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)), min_size=1, max_size=30))
def test_min_edge_is_member_of_input(edges):
    chosen = ids.min_edge_by_ordered_id(edges)
    assert chosen in edges
