"""Tests for the SpannerLCA base machinery (contract, materialization, union)."""

from __future__ import annotations

import pytest

from repro.core import (
    CombinedLCA,
    KeepAllLCA,
    NotAnEdgeError,
    SpannerLCA,
)
from repro.core.lca import PAPER_RESULTS, LCADescription
from repro.graphs import gnp_graph


class ModuloLCA(SpannerLCA):
    """Toy LCA keeping edges whose endpoint sum is divisible by ``modulus``."""

    name = "modulo"

    def __init__(self, graph, seed, modulus):
        super().__init__(graph, seed)
        self.modulus = modulus

    def stretch_bound(self):
        return None

    def _decide(self, oracle, u, v):
        oracle.degree(u)  # exercise probe accounting
        return (u + v) % self.modulus == 0


@pytest.fixture
def graph():
    return gnp_graph(30, 0.3, seed=4)


def test_query_requires_an_edge(graph):
    lca = KeepAllLCA(graph, seed=1)
    u, v = next(iter(graph.edges()))
    assert lca.query(u, v) is True
    non_edge = None
    vertices = graph.vertices()
    for a in vertices:
        for b in vertices:
            if a != b and not graph.has_edge(a, b):
                non_edge = (a, b)
                break
        if non_edge:
            break
    with pytest.raises(NotAnEdgeError):
        lca.query(*non_edge)


def test_keep_all_materializes_whole_graph(graph):
    lca = KeepAllLCA(graph, seed=1)
    result = lca.materialize()
    assert result.num_edges == graph.num_edges
    assert result.stretch_bound == 1
    assert result.algorithm == "keep-all"
    u, v = next(iter(graph.edges()))
    assert result.contains(u, v)
    assert result.contains(v, u)


def test_query_with_stats_counts_probes(graph):
    lca = ModuloLCA(graph, seed=1, modulus=2)
    u, v = next(iter(graph.edges()))
    outcome = lca.query_with_stats(u, v)
    assert outcome.probe_total == 1
    assert outcome.probes.degree == 1
    assert lca.probe_stats.queries == 1


def test_materialize_respects_decision_rule(graph):
    lca = ModuloLCA(graph, seed=1, modulus=2)
    result = lca.materialize()
    for (u, v) in graph.edges():
        assert ((u + v) % 2 == 0) == result.contains(u, v)


def test_materialize_subset_of_edges(graph):
    lca = KeepAllLCA(graph, seed=1)
    subset = list(graph.edges())[:5]
    result = lca.materialize(edges=subset)
    assert result.num_edges == 5
    assert result.probe_stats.queries == 5


def test_as_graph_builds_spanning_subgraph(graph):
    lca = ModuloLCA(graph, seed=1, modulus=3)
    result = lca.materialize()
    spanner = result.as_graph(graph)
    assert spanner.num_vertices == graph.num_vertices
    assert spanner.num_edges == result.num_edges


def test_combined_lca_is_union(graph):
    a = ModuloLCA(graph, seed=1, modulus=2)
    b = ModuloLCA(graph, seed=1, modulus=3)
    union = CombinedLCA(graph, seed=1, components=[a, b])
    for (u, v) in graph.edges():
        expected = (u + v) % 2 == 0 or (u + v) % 3 == 0
        assert union.query(u, v) == expected


def test_combined_lca_stretch_bound_is_max(graph):
    class Bounded(KeepAllLCA):
        def __init__(self, graph, seed, bound):
            super().__init__(graph, seed)
            self._bound = bound

        def stretch_bound(self):
            return self._bound

    union = CombinedLCA(
        graph, seed=1, components=[Bounded(graph, 1, 3), Bounded(graph, 1, 5)]
    )
    assert union.stretch_bound() == 5
    with_unbounded = CombinedLCA(
        graph, seed=1, components=[Bounded(graph, 1, 3), ModuloLCA(graph, 1, 2)]
    )
    assert with_unbounded.stretch_bound() is None


def test_combined_lca_requires_components(graph):
    with pytest.raises(ValueError):
        CombinedLCA(graph, seed=1, components=[])


def test_queries_are_consistent_between_orientations(graph):
    lca = ModuloLCA(graph, seed=1, modulus=2)
    for (u, v) in list(graph.edges())[:20]:
        assert lca.query(u, v) == lca.query(v, u)


def test_paper_results_table_is_well_formed():
    assert len(PAPER_RESULTS) == 4
    for entry in PAPER_RESULTS:
        assert isinstance(entry, LCADescription)
        row = entry.as_row()
        assert "algorithm" in row and "stretch" in row
