"""Property-based tests for the O(k²) construction and the remaining baselines.

Random small bounded-degree graphs with random parameter settings must always
yield spanners that are subgraphs, preserve connectivity of every component
and (in the all-sparse regime) respect the (2k−1) bound of the simulated
distributed algorithm.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import measure_stretch, preserves_connectivity
from repro.baselines import SparseSpanningSubgraphLCA, greedy_spanner
from repro.graphs import Graph
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


@st.composite
def sparse_graphs(draw, max_vertices=24):
    """Connected-ish sparse graphs: a cycle plus a few random chords."""
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    edges = {(i, (i + 1) % n) for i in range(n)}
    num_chords = draw(st.integers(min_value=0, max_value=n))
    for _ in range(num_chords):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(edges, vertices=range(n))


relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@relaxed
@given(
    graph=sparse_graphs(),
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=3),
    center_p=st.sampled_from([0.0, 0.3, 1.0]),
    mark_p=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_k_squared_spanner_invariants(graph, seed, k, center_p, mark_p):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=k,
        exploration_budget=6,
        center_probability=center_p,
        mark_probability=mark_p,
        rank_quota=8,
        independence=8,
    )
    lca = KSquaredSpannerLCA(graph, seed=seed, params=params, shared_cache=True)
    materialized = lca.materialize()
    # subgraph property is enforced by measure_stretch's check
    report = measure_stretch(graph, materialized.edges)
    assert preserves_connectivity(graph, materialized.edges)
    if center_p == 0.0:
        # all-sparse: the Baswana–Sen guarantee applies to the whole graph
        assert report.max_stretch <= max(1, 2 * k - 1)


@relaxed
@given(
    graph=sparse_graphs(max_vertices=20),
    seed=st.integers(min_value=0, max_value=10**6),
    radius=st.integers(min_value=1, max_value=4),
)
def test_sparse_spanning_lca_always_preserves_connectivity(graph, seed, radius):
    lca = SparseSpanningSubgraphLCA(graph, seed=seed, radius=radius)
    materialized = lca.materialize()
    assert preserves_connectivity(graph, materialized.edges)


@relaxed
@given(graph=sparse_graphs(max_vertices=20), k=st.integers(min_value=1, max_value=4))
def test_greedy_spanner_never_larger_than_graph_and_respects_stretch(graph, k):
    spanner = greedy_spanner(graph, stretch_parameter=k)
    assert len(spanner) <= graph.num_edges
    report = measure_stretch(graph, spanner, limit=2 * k)
    assert report.max_stretch <= 2 * k - 1
