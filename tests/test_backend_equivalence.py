"""Backend / query-engine equivalence: the correctness anchor of the fast path.

The CSR storage backend and the cached/batched query engines promise
*observational equivalence* with the original dict backend and the cold
per-query path: identical spanner edge sets and identical per-query probe
accounting (totals and per-kind counts).  These tests pin that promise down
for all three paper constructions.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.lca import QUERY_MODES
from repro.core.oracle import AdjacencyListOracle, CachedOracle
from repro.core.registry import create
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


def _spanner3(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def _spanner5(graph):
    return create("spanner5", graph, seed=5, hitting_constant=1.0)


def _spannerk(graph):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=2,
        exploration_budget=6,
        center_probability=0.3,
        mark_probability=0.25,
        rank_quota=20,
        independence=12,
    )
    return KSquaredSpannerLCA(graph, seed=7, params=params)


CASES = {
    "spanner3": (_spanner3, lambda: graphs.gnp_graph(70, 0.25, seed=11)),
    "spanner5": (
        _spanner5,
        lambda: graphs.dense_cluster_graph(80, 10, inter_probability=0.05, seed=5),
    ),
    "spannerk": (_spannerk, lambda: graphs.bounded_degree_expanderish(80, d=4, seed=3)),
}


def _materialize(factory, graph, mode):
    lca = factory(graph)
    materialized = lca.materialize(mode=mode)
    return materialized.edges, list(materialized.probe_stats.query_totals)


@pytest.mark.parametrize("name", sorted(CASES))
def test_identical_edges_and_probes_across_backends_and_modes(name):
    """Same seeds ⇒ same spanner and same per-query probe totals everywhere."""
    factory, make_graph = CASES[name]
    dict_graph = make_graph()
    csr_graph = dict_graph.to_backend("csr")
    ref_edges, ref_totals = _materialize(factory, dict_graph, "cold")
    assert ref_edges, "degenerate fixture: empty spanner"
    for graph in (dict_graph, csr_graph):
        for mode in QUERY_MODES:
            edges, totals = _materialize(factory, graph, mode)
            assert edges == ref_edges, (graph.backend, mode)
            assert totals == ref_totals, (graph.backend, mode)


@pytest.mark.parametrize("name", sorted(CASES))
def test_per_kind_probe_counts_match_cold_schedule(name):
    """The cached engine charges per *kind* exactly like the cold oracle."""
    factory, make_graph = CASES[name]
    graph = make_graph()
    cold = factory(graph)
    cold.materialize(mode="cold")
    cached = factory(graph)
    cached.materialize(mode="batched")
    assert cold._counter.snapshot() == cached._counter.snapshot()


def test_query_with_stats_matches_across_modes():
    """The per-query API reports the cold probe snapshot in cached mode too."""
    graph = graphs.gnp_graph(70, 0.25, seed=11)
    cold = _spanner3(graph)
    cached = _spanner3(graph).set_query_mode("cached")
    for (u, v) in list(graph.edges())[:80]:
        a = cold.query_with_stats(u, v)
        b = cached.query_with_stats(u, v)
        assert a.in_spanner == b.in_spanner
        assert a.probes == b.probes
    # Repeating the queries hits the memo and must charge the same again.
    for (u, v) in list(graph.edges())[:80]:
        a = cold.query_with_stats(u, v)
        b = cached.query_with_stats(u, v)
        assert a.probes == b.probes


def test_cached_oracle_primitives_charge_like_cold():
    """Primitive-level contract: per-kind charges match call by call."""
    graph = graphs.gnp_graph(40, 0.3, seed=2)
    cold = AdjacencyListOracle(graph)
    cached = CachedOracle(graph)
    v = graph.vertices()[0]
    w = graph.neighbors(v)[0]
    for _ in range(2):  # second round exercises warm caches
        for op in (
            lambda o: o.degree(v),
            lambda o: o.neighbor(v, 0),
            lambda o: o.neighbor(v, 10 ** 6),
            lambda o: o.adjacency(v, w),
            lambda o: o.adjacency(v, -1),
            lambda o: o.neighbors_prefix(v, 3),
            lambda o: o.neighbors_prefix(v, 10 ** 6),
            lambda o: o.neighbors_block(v, 2, 1),
            lambda o: o.neighbors_block(v, 2, 10 ** 6),
            lambda o: o.all_neighbors(v),
        ):
            assert op(cold) == op(cached)
            assert cold.counter.snapshot() == cached.counter.snapshot()


def test_memoized_replays_measured_cost():
    graph = graphs.gnp_graph(30, 0.3, seed=4)
    oracle = CachedOracle(graph)
    v = graph.vertices()[0]

    def compute():
        return tuple(oracle.neighbors_prefix(v, 4))

    first = oracle.memoized("ns", v, compute)
    cost_after_miss = oracle.counter.snapshot()
    second = oracle.memoized("ns", v, compute)
    assert first == second
    replayed = oracle.counter.snapshot() - cost_after_miss
    assert replayed == cost_after_miss  # hit replays exactly the miss cost
    assert oracle.cache.stats.hits == 1 and oracle.cache.stats.misses == 1


def test_csr_round_trip_preserves_orderings():
    graph = graphs.planted_hub_graph(90, num_hubs=3, hub_degree=40, seed=9)
    csr = graph.to_backend("csr")
    assert csr.to_backend("csr") is csr
    back = csr.to_backend("dict")
    assert back.as_adjacency() == graph.as_adjacency()
    assert graph.max_degree() == csr.max_degree()
    assert graph.min_degree() == csr.min_degree()
    assert sorted(graph.edges()) == sorted(csr.edges())
