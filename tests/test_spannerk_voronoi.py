"""Tests for the Voronoi-cell / cluster machinery of the O(k²) construction."""

from __future__ import annotations


from repro.core.oracle import AdjacencyListOracle
from repro.graphs import bounded_degree_expanderish, grid_graph, path_graph
from repro.spannerk import KSquaredParams, KSquaredRandomness, LocalView


def make_view(graph, *, k=2, budget=8, center_p=0.3, mark_p=0.3, seed=5):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=k,
        exploration_budget=budget,
        center_probability=center_p,
        mark_probability=mark_p,
        rank_quota=10,
        independence=10,
    )
    randomness = KSquaredRandomness(seed, params)
    oracle = AdjacencyListOracle(graph)
    return LocalView(oracle, params, randomness), params, randomness


def test_sparse_dense_classification_matches_center_discovery():
    graph = bounded_degree_expanderish(60, d=4, seed=1)
    view, params, randomness = make_view(graph, center_p=0.15)
    for v in graph.vertices():
        exploration = view.exploration(v)
        assert view.is_dense(v) == (exploration.first_center is not None)
        assert view.is_sparse(v) != view.is_dense(v)


def test_all_centers_regime_every_vertex_its_own_cell():
    graph = grid_graph(6, 6)
    view, params, _ = make_view(graph, center_p=1.0)
    for v in graph.vertices():
        assert view.is_dense(v)
        assert view.center(v) == v
        assert view.parent(v) is None
        assert view.children(v) == []
        info = view.cluster_info(v)
        assert info.members == frozenset({v})


def test_no_centers_regime_every_vertex_sparse():
    graph = grid_graph(4, 4)
    view, _, _ = make_view(graph, center_p=0.0)
    for v in graph.vertices():
        assert view.is_sparse(v)
        assert view.center(v) is None
        assert view.cluster_info(v) is None
        assert not view.is_tree_edge(v, v)


def test_voronoi_parent_points_towards_center():
    graph = path_graph(12)
    view, _, randomness = make_view(graph, center_p=0.0)  # no random centers
    # force vertex 0 to be the unique center by monkeypatching the sampler
    randomness.centers.is_center = lambda v: v == 0  # type: ignore[assignment]
    view._cache.clear()
    for v in range(1, 5):  # within radius k=2 ... only 1, 2 are dense
        pass
    assert view.center(1) == 0 and view.parent(1) == 0
    assert view.center(2) == 0 and view.parent(2) == 1
    assert view.is_dense(2)
    assert view.is_sparse(5)
    assert view.is_tree_edge(1, 0)
    assert view.is_tree_edge(1, 2)
    assert not view.is_tree_edge(3, 4)


def test_children_and_subtree_sizes_on_forced_tree():
    graph = path_graph(8)
    view, params, randomness = make_view(graph, k=3, budget=20, center_p=0.0)
    randomness.centers.is_center = lambda v: v == 0  # type: ignore[assignment]
    # vertices 0..3 are dense (distance ≤ 3 from center 0): a path-shaped tree
    assert view.children(0) == [1]
    assert view.children(1) == [2]
    assert view.children(3) == []
    subtree = view.subtree_vertices(1)
    assert set(subtree) == {1, 2, 3}
    assert not view.is_heavy(1)  # budget 20 > subtree size


def test_heavy_vertex_detection_and_grouped_clusters_on_star():
    from repro.graphs import star_graph

    graph = star_graph(10)  # hub 0 with 9 leaves
    view, params, randomness = make_view(graph, k=2, budget=4, center_p=0.0)
    randomness.centers.is_center = lambda v: v == 0  # type: ignore[assignment]
    # every leaf discovers the hub immediately, so the whole star is one cell
    assert all(view.center(v) == 0 for v in graph.vertices())
    # the hub's subtree is the whole cell (10 vertices) > L = 4 → heavy
    assert view.is_heavy(0)
    assert view.cluster_info(0).kind == "heavy-singleton"
    # leaves are light and get grouped into buckets of subtree-sums ≥ L
    leaf_info = view.cluster_info(1)
    assert leaf_info.kind == "grouped"
    assert 1 in leaf_info.members
    assert 0 not in leaf_info.members
    assert len(leaf_info.members) <= 2 * params.exploration_budget
    # the grouped clusters partition the leaves
    leaves = [v for v in graph.vertices() if v != 0]
    clusters = {view.cluster_info(v).members for v in leaves}
    covered = set()
    for members in clusters:
        assert not (covered & members)
        covered |= set(members)
    assert covered == set(leaves)


def test_whole_cell_cluster_when_center_is_light():
    graph = path_graph(6)
    view, params, randomness = make_view(graph, k=2, budget=10, center_p=0.0)
    randomness.centers.is_center = lambda v: v == 0  # type: ignore[assignment]
    info = view.cluster_info(2)
    assert info.kind == "whole-cell"
    assert info.members == frozenset({0, 1, 2})
    # all members share the same cached cluster object
    assert view.cluster_info(0) is info


def test_cluster_members_share_cell_center():
    graph = bounded_degree_expanderish(80, d=4, seed=2)
    view, params, _ = make_view(graph, center_p=0.2, budget=6)
    for v in list(graph.vertices())[:30]:
        if not view.is_dense(v):
            continue
        info = view.cluster_info(v)
        assert v in info.members
        assert len(info.members) <= 2 * params.exploration_budget
        for member in info.members:
            assert view.center(member) == info.cell_center


def test_adjacent_cells_witnesses_are_real_edges():
    graph = bounded_degree_expanderish(80, d=4, seed=2)
    view, params, _ = make_view(graph, center_p=0.25, budget=6)
    dense = [v for v in graph.vertices() if view.is_dense(v)]
    assert dense
    info = view.cluster_info(dense[0])
    for cell, (member, outside) in view.adjacent_cells(info).items():
        assert member in info.members
        assert outside not in info.members
        assert graph.has_edge(member, outside)
        assert view.center(outside) == cell
        assert cell != info.cell_center


def test_rank_position_counts_strictly_lower_ranks():
    graph = grid_graph(4, 4)
    view, _, randomness = make_view(graph)
    centers = list(graph.vertices())[:6]
    target = centers[0]
    expected = sum(
        1 for c in centers if randomness.rank_key(c) < randomness.rank_key(target)
    )
    assert view.rank_position(target, centers) == expected


def test_min_edge_to_cluster():
    graph = path_graph(6)
    view, params, randomness = make_view(graph, k=2, budget=10, center_p=0.0)
    randomness.centers.is_center = lambda v: v in (0, 5)  # type: ignore[assignment]
    info_a = view.cluster_info(1)
    info_b = view.cluster_info(4)
    edge = view.min_edge_to_cluster(info_a, info_b.members)
    assert edge == (2, 3)
    assert view.min_edge_to_cluster(info_a, frozenset({5})) is None
