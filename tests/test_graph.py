"""Tests for the adjacency-list Graph class."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import GraphError, UnknownVertexError
from repro.graphs import Graph, gnp_graph


def test_from_edges_basic():
    g = Graph.from_edges([(1, 2), (2, 3)])
    assert g.num_vertices == 3
    assert g.num_edges == 2
    assert g.degree(2) == 2
    assert set(g.neighbors(2)) == {1, 3}


def test_from_edges_ignores_duplicate_edges():
    g = Graph.from_edges([(1, 2), (2, 1), (1, 2)])
    assert g.num_edges == 1
    assert g.degree(1) == 1


def test_from_edges_rejects_self_loops():
    with pytest.raises(GraphError):
        Graph.from_edges([(1, 1)])


def test_isolated_vertices_supported():
    g = Graph.from_edges([(1, 2)], vertices=[1, 2, 3, 4])
    assert g.num_vertices == 4
    assert g.degree(3) == 0


def test_neighbor_at_and_adjacency_index_agree():
    g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
    for index in range(g.degree(0)):
        neighbor = g.neighbor_at(0, index)
        assert g.adjacency_index(0, neighbor) == index
    assert g.neighbor_at(0, 99) is None
    assert g.adjacency_index(0, 99) is None


def test_unknown_vertex_raises():
    g = Graph.from_edges([(0, 1)])
    with pytest.raises(UnknownVertexError):
        g.degree(7)
    with pytest.raises(UnknownVertexError):
        g.adjacency_index(7, 0)


def test_validation_detects_asymmetry():
    with pytest.raises(GraphError):
        Graph({0: [1], 1: []})


def test_validation_detects_repeated_neighbors():
    with pytest.raises(GraphError):
        Graph({0: [1, 1], 1: [0, 0]})


def test_validation_detects_self_loop():
    with pytest.raises(GraphError):
        Graph({0: [0]})


def test_missing_neighbor_key_rejected():
    with pytest.raises(GraphError):
        Graph({0: [1]})


def test_edges_are_reported_once():
    g = Graph.from_edges([(1, 2), (2, 3), (3, 1)])
    edges = list(g.edges())
    assert len(edges) == 3
    assert all(u < v for (u, v) in edges)


def test_degree_statistics():
    g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
    assert g.max_degree() == 3
    assert g.min_degree() == 1
    assert g.average_degree() == pytest.approx(2 * 3 / 4)


def test_subgraph_with_edges():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    sub = g.subgraph_with_edges([(1, 2)])
    assert sub.num_vertices == g.num_vertices  # spanning subgraph
    assert sub.num_edges == 1
    assert sub.has_edge(1, 2)
    assert not sub.has_edge(0, 1)


def test_subgraph_with_edges_rejects_foreign_edge():
    g = Graph.from_edges([(0, 1)])
    with pytest.raises(GraphError):
        g.subgraph_with_edges([(0, 5)])


def test_induced_subgraph():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    sub = g.induced_subgraph([0, 1, 2])
    assert sub.num_vertices == 3
    assert sub.num_edges == 2


def test_shuffle_seed_changes_order_not_structure():
    edges = [(0, i) for i in range(1, 10)]
    g1 = Graph.from_edges(edges, shuffle_seed=1)
    g2 = Graph.from_edges(edges, shuffle_seed=2)
    assert set(g1.neighbors(0)) == set(g2.neighbors(0))
    assert g1.num_edges == g2.num_edges
    # orders differ with overwhelming probability for 9 neighbors
    assert list(g1.neighbors(0)) != list(g2.neighbors(0))


def test_networkx_round_trip():
    g = gnp_graph(30, 0.2, seed=4)
    nx_graph = g.to_networkx()
    back = Graph.from_networkx(nx_graph)
    assert back.num_vertices == g.num_vertices
    assert set(back.edges()) == set(g.edges())


def test_contains_and_len():
    g = Graph.from_edges([(0, 1)])
    assert 0 in g
    assert 5 not in g
    assert len(g) == 2
    assert "n=2" in repr(g)


@settings(max_examples=30, deadline=None)
@given(st.sets(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=40))
def test_from_edges_always_symmetric(pairs):
    edges = [(u, v) for (u, v) in pairs if u != v]
    g = Graph.from_edges(edges)
    for (u, v) in g.edges():
        assert g.has_edge(v, u)
        assert g.adjacency_index(u, v) is not None
        assert g.adjacency_index(v, u) is not None
