"""Scenario runner determinism and faithfulness (repro.reports.runner)."""

from __future__ import annotations

import json

import pytest

from repro.core.registry import create
from repro.graphs import build_family
from repro.reports import (
    ScenarioSpec,
    TickClock,
    churn_ops,
    run_scenario,
    spec_for_smoke,
)
from repro.reports.runner import SMOKE_MAX_REQUESTS, SMOKE_MAX_SIZE


def _spec(**overrides):
    data = {
        "name": "runner-test",
        "algorithm": "spanner3",
        "seed": 7,
        "graph": {"family": "gnp", "sizes": [50], "density": 0.15, "seed": 3},
    }
    data.update(overrides)
    return ScenarioSpec.from_dict(data)


def test_result_payload_is_deterministic():
    spec = _spec(
        graph={"family": "gnp", "sizes": [40, 60], "density": 0.15, "seed": 3},
        mutations={"ops": 6, "seed": 2},
        workload={"kind": "zipf", "requests": 80, "seed": 1, "skew": 1.1},
        service={"shards": 2, "batch_size": 8},
    )
    first = json.dumps(run_scenario(spec).as_dict(), sort_keys=True)
    second = json.dumps(run_scenario(spec).as_dict(), sort_keys=True)
    assert first == second


def test_offline_rows_match_direct_harness_run():
    spec = _spec()
    result = run_scenario(spec)
    (row,) = result.sizes
    graph = build_family("gnp", 50, density=0.15, seed=3)
    lca = create("spanner3", graph, seed=7)
    materialized = lca.materialize(mode="batched")
    assert row.n == graph.num_vertices
    assert row.m == graph.num_edges
    assert row.spanner_edges == materialized.num_edges
    assert row.probes["total"] == materialized.probe_stats.total
    assert row.probes["max"] == materialized.probe_stats.max
    kinds = lca.probe_counter.snapshot().as_dict()
    assert row.probe_kinds == kinds
    assert row.stretch_ok
    assert result.service is None


def test_backend_axis_never_changes_probe_numbers():
    rows = {}
    for backend in ("dict", "csr"):
        spec = _spec(
            name=f"backend-{backend}",
            graph={"family": "gnp", "sizes": [50], "density": 0.15, "seed": 3,
                   "backend": backend},
        )
        (row,) = run_scenario(spec).sizes
        rows[backend] = (row.spanner_edges, row.probes, row.probe_kinds)
    assert rows["dict"] == rows["csr"]


def test_mutation_burst_is_applied_and_recorded():
    spec = _spec(mutations={"ops": 8, "seed": 5})
    (row,) = run_scenario(spec).sizes
    assert row.mutations == 8
    assert row.graph_epoch >= 8
    assert row.stretch_ok


def test_service_phase_runs_on_largest_size_with_virtual_clock():
    spec = _spec(
        graph={"family": "gnp", "sizes": [40, 60], "density": 0.15, "seed": 3},
        workload={"kind": "uniform", "requests": 60, "seed": 4},
        service={"shards": 2, "batch_size": 8},
    )
    result = run_scenario(spec)
    service = result.service
    assert service is not None
    assert service["n"] == 60
    assert service["clock"] == "virtual-ticks"
    assert service["served"] == 60
    assert service["latency"]["p50_ms"] > 0


def test_churn_workload_serves_writes():
    spec = _spec(
        graph={"family": "gnp", "sizes": [60], "density": 0.15, "seed": 3},
        workload={"kind": "churn", "requests": 120, "seed": 9, "write_ratio": 0.2},
        service={"shards": 2, "batch_size": 8},
    )
    service = run_scenario(spec).service
    assert service["mutations"] > 0
    assert service["served"] + service["mutations"] + service["rejected"] == 120


def test_smoke_shrinks_sizes_requests_and_churn():
    spec = _spec(
        graph={"family": "gnp", "sizes": [400, 800], "density": 0.05, "seed": 3},
        mutations={"ops": 500, "seed": 1},
        workload={"kind": "uniform", "requests": 5000, "seed": 2},
    )
    shrunk = spec_for_smoke(spec)
    assert shrunk.graph.sizes == (SMOKE_MAX_SIZE,)
    assert shrunk.workload.requests == SMOKE_MAX_REQUESTS
    assert shrunk.mutations.ops <= 10
    result = run_scenario(spec, smoke=True)
    assert result.smoke
    assert result.as_dict()["smoke"] is True
    assert [row.n for row in result.sizes] == [SMOKE_MAX_SIZE]


def test_algorithm_options_reach_the_factory():
    spec = _spec(
        name="k3",
        algorithm="spannerk",
        algorithm_options={"stretch_parameter": 3},
        graph={"family": "bounded", "sizes": [40], "seed": 5},
    )
    (row,) = run_scenario(spec).sizes
    graph = build_family("bounded", 40, seed=5)
    expected = create("spannerk", graph, seed=7, stretch_parameter=3)
    assert row.stretch_bound == expected.stretch_bound()


def test_churn_ops_are_valid_in_sequence():
    graph = build_family("gnp", 40, density=0.2, seed=1)
    ops = churn_ops(graph, 25, seed=3)
    assert len(ops) == 25
    # Replaying against the live graph must never raise (removes hit existing
    # edges, adds create new ones).
    for (op, u, v) in ops:
        graph.apply_mutation(op, u, v)
    assert churn_ops(build_family("gnp", 40, density=0.2, seed=1), 25, seed=3) == ops


def test_tick_clock_is_monotone_and_deterministic():
    clock = TickClock()
    readings = [clock() for _ in range(5)]
    assert readings == sorted(readings)
    assert readings == [pytest.approx(0.001 * i) for i in range(1, 6)]
