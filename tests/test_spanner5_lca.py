"""End-to-end tests for the 5-spanner LCA (Theorems 3.4 and 3.5)."""

from __future__ import annotations

import pytest

from repro import evaluate_lca, graphs
from repro.analysis import check_consistency, measure_stretch, preserves_connectivity
from repro.spanner5 import FiveSpannerLCA, FiveSpannerParams


@pytest.fixture(params=["clustered", "gnp", "hub"])
def test_graph(request):
    if request.param == "clustered":
        return graphs.dense_cluster_graph(100, 10, inter_probability=0.05, seed=5)
    if request.param == "gnp":
        return graphs.gnp_graph(80, 0.25, seed=11)
    return graphs.planted_hub_graph(100, num_hubs=3, hub_degree=50, seed=9)


def test_spanner_has_stretch_at_most_five(test_graph):
    lca = FiveSpannerLCA(test_graph, seed=7)
    report = evaluate_lca(lca)
    assert report.stretch.is_finite
    assert report.stretch.max_stretch <= 5
    assert report.connectivity_preserved


def test_consistency_of_answers(test_graph):
    lca = FiveSpannerLCA(test_graph, seed=7)
    sample = list(test_graph.edges())[:40]
    assert check_consistency(lca, edges=sample)


def test_deterministic_in_seed():
    graph = graphs.dense_cluster_graph(80, 8, inter_probability=0.05, seed=3)
    first = FiveSpannerLCA(graph, seed=5).materialize().edges
    second = FiveSpannerLCA(graph, seed=5).materialize().edges
    assert first == second


def test_low_degree_edges_always_kept():
    graph = graphs.planted_hub_graph(100, num_hubs=3, hub_degree=50, seed=9)
    lca = FiveSpannerLCA(graph, seed=2)
    for (u, v) in graph.edges():
        if min(graph.degree(u), graph.degree(v)) <= lca.params.low_threshold:
            assert lca.query(u, v)


def test_stretch_bound_is_five():
    graph = graphs.gnp_graph(40, 0.3, seed=1)
    assert FiveSpannerLCA(graph, seed=0).stretch_bound() == 5


def test_min_degree_variant_theorem_3_5():
    """Theorem 3.5: larger r works on graphs of sufficient minimum degree."""
    graph = graphs.gnp_graph(80, 0.35, seed=7)  # min degree comfortably above n^{1/4}
    lca = FiveSpannerLCA(graph, seed=3, stretch_parameter=4)
    report = evaluate_lca(lca)
    assert report.stretch.max_stretch <= 5
    assert report.connectivity_preserved


def test_respects_explicit_params():
    graph = graphs.gnp_graph(60, 0.3, seed=2)
    params = FiveSpannerParams.for_graph(graph.num_vertices, hitting_constant=1.0)
    lca = FiveSpannerLCA(graph, seed=7, params=params)
    assert lca.params is params
    report = evaluate_lca(lca)
    assert report.stretch.max_stretch <= 5


def test_disconnected_graph_supported():
    graph = graphs.disjoint_union(
        [graphs.gnp_graph(40, 0.3, seed=1), graphs.cycle_graph(20)]
    )
    lca = FiveSpannerLCA(graph, seed=4)
    materialized = lca.materialize()
    assert preserves_connectivity(graph, materialized.edges)
    assert measure_stretch(graph, materialized.edges, limit=6).max_stretch <= 5


def test_works_with_relabelled_ids():
    base = graphs.dense_cluster_graph(70, 7, inter_probability=0.06, seed=4)
    relabeled = graphs.relabel_randomly(base, seed=8)
    lca = FiveSpannerLCA(relabeled, seed=1)
    report = evaluate_lca(lca)
    assert report.stretch.max_stretch <= 5


def test_probe_counts_are_recorded():
    graph = graphs.dense_cluster_graph(60, 6, inter_probability=0.05, seed=5)
    lca = FiveSpannerLCA(graph, seed=7)
    u, v = next(iter(graph.edges()))
    outcome = lca.query_with_stats(u, v)
    assert outcome.probe_total > 0
    assert lca.probe_stats.queries == 1
