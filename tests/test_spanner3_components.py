"""Unit tests for the individual 3-spanner components."""

from __future__ import annotations


from repro.graphs import Graph, gnp_graph, star_graph
from repro.spanner3.centers import PrefixCenterSystem
from repro.spanner3.components import (
    CenterEdgeComponent,
    HighDegreeComponent,
    LowDegreeComponent,
    SuperBlockComponent,
)
from repro.spanner3.params import ThreeSpannerParams


def make_centers(prefix, probability, seed=1):
    return PrefixCenterSystem(
        seed=seed, probability=probability, prefix=prefix, independence=8
    )


def test_low_degree_component_threshold():
    graph = star_graph(20)  # hub degree 19, leaves degree 1
    component = LowDegreeComponent(graph, seed=1, threshold=2)
    assert component.query(0, 1)  # leaf endpoint is low degree
    high = LowDegreeComponent(graph, seed=1, threshold=0)
    assert not high.query(0, 1)
    assert component.stretch_bound() == 1


def test_center_edge_component_matches_systems():
    graph = gnp_graph(40, 0.3, seed=2)
    system_a = make_centers(prefix=3, probability=0.5, seed=4)
    system_b = make_centers(prefix=6, probability=0.2, seed=5)
    component = CenterEdgeComponent(graph, seed=1, systems=[system_a, system_b])
    from repro.core.oracle import AdjacencyListOracle

    oracle = AdjacencyListOracle(graph)
    for (u, v) in list(graph.edges())[:40]:
        expected = system_a.is_center_edge(oracle, u, v) or system_b.is_center_edge(
            oracle, u, v
        )
        assert component.query(u, v) == expected


def test_high_degree_component_keeps_first_new_cluster_edge():
    """A hand-built instance where the scanning rule is fully predictable."""
    # Vertex 0 has neighbors 1..6 (in this order); with probability 1 every
    # vertex is a center, so S(w) = first-`prefix` neighbors of w.
    edges = [(0, i) for i in range(1, 7)]
    edges += [(1, 2), (3, 4), (5, 6), (1, 7), (2, 7), (3, 8), (7, 8)]
    graph = Graph.from_edges(edges)
    params = ThreeSpannerParams(
        num_vertices=graph.num_vertices,
        low_threshold=2,
        super_threshold=100,
        high_center_probability=1.0,
        super_center_probability=0.0,
        independence=8,
    )
    centers = make_centers(prefix=2, probability=1.0)
    component = HighDegreeComponent(graph, seed=1, params=params, centers=centers)
    # deg(0) = 6 > low threshold 2 and <= super threshold: vertex 0 scans.
    # Its first neighbor always introduces a new cluster.
    first_neighbor = graph.neighbor_at(0, 0)
    assert component.query(0, first_neighbor)
    assert component.stretch_bound() == 3


def test_high_degree_component_ignores_low_degree_scanners():
    graph = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
    params = ThreeSpannerParams(
        num_vertices=3,
        low_threshold=5,
        super_threshold=10,
        high_center_probability=1.0,
        super_center_probability=1.0,
        independence=4,
    )
    centers = make_centers(prefix=5, probability=1.0)
    component = HighDegreeComponent(graph, seed=1, params=params, centers=centers)
    # every vertex has degree 2 <= low threshold: the scanning rule never fires
    for (u, v) in graph.edges():
        assert not component.query(u, v)


def test_super_block_component_block_locality():
    """Blocks are scanned independently: the first edge of each block whose
    endpoint has a center is kept."""
    hub = 0
    leaves = list(range(1, 13))
    edges = [(hub, leaf) for leaf in leaves]
    # give each leaf a private neighbor so leaves can have centers among them
    extra = [(leaf, 100 + leaf) for leaf in leaves]
    graph = Graph.from_edges(edges + extra)
    centers = make_centers(prefix=4, probability=1.0)
    component = SuperBlockComponent(graph, seed=1, threshold=4, centers=centers)
    neighbor_list = list(graph.neighbors(hub))
    kept = [component.query(hub, w) for w in neighbor_list]
    # within every block of 4, the first neighbor introduces a new cluster
    for block_start in range(0, 12, 4):
        assert kept[block_start]
    assert component.stretch_bound() == 3


def test_super_block_with_defaults_builds_own_centers():
    graph = gnp_graph(50, 0.3, seed=3)
    component = SuperBlockComponent.with_defaults(graph, seed=2, threshold=10)
    u, v = next(iter(graph.edges()))
    assert isinstance(component.query(u, v), bool)


def test_components_union_equals_full_lca():
    """The registered 3-spanner equals the union of its four components."""
    from repro.spanner3 import ThreeSpannerLCA

    graph = gnp_graph(60, 0.3, seed=6)
    lca = ThreeSpannerLCA(graph, seed=11)
    for (u, v) in list(graph.edges())[:60]:
        expected = any(
            component._decide(lca._oracle, u, v) for component in lca.components
        )
        assert lca.query(u, v) == expected
