"""Tests for BFS distances, connectivity and path utilities."""

from __future__ import annotations

from repro.graphs import (
    Graph,
    ball_subgraph,
    bfs_distances,
    connected_components,
    cycle_graph,
    distance,
    eccentricity,
    gnp_graph,
    is_connected,
    k_neighborhood,
    pairwise_distances,
    path_graph,
    same_component,
    shortest_path,
)


def test_bfs_distances_on_path():
    g = path_graph(6)
    distances = bfs_distances(g, 0)
    assert distances == {i: i for i in range(6)}


def test_bfs_distances_with_cutoff():
    g = path_graph(10)
    distances = bfs_distances(g, 0, cutoff=3)
    assert max(distances.values()) == 3
    assert len(distances) == 4


def test_distance_and_disconnected():
    g = Graph.from_edges([(0, 1), (2, 3)])
    assert distance(g, 0, 1) == 1
    assert distance(g, 0, 0) == 0
    assert distance(g, 0, 3) is None


def test_k_neighborhood_size():
    g = cycle_graph(12)
    assert len(k_neighborhood(g, 0, 2)) == 5


def test_ball_subgraph_contains_union_of_balls():
    g = path_graph(12)
    ball = ball_subgraph(g, [0, 11], radius=2)
    assert set(ball.vertices()) == {0, 1, 2, 9, 10, 11}


def test_eccentricity():
    g = path_graph(7)
    assert eccentricity(g, 0) == 6
    assert eccentricity(g, 3) == 3


def test_is_connected_and_components():
    g = Graph.from_edges([(0, 1), (1, 2), (3, 4)])
    assert not is_connected(g)
    components = connected_components(g)
    assert {frozenset(c) for c in components} == {frozenset({0, 1, 2}), frozenset({3, 4})}
    assert same_component(g, 0, 2)
    assert not same_component(g, 0, 4)


def test_empty_graph_is_connected():
    assert is_connected(Graph({}))


def test_pairwise_distances_groups_by_source():
    g = cycle_graph(10)
    pairs = [(0, 5), (0, 1), (3, 8)]
    assert pairwise_distances(g, pairs) == [5, 1, 5]


def test_shortest_path_endpoints_and_length():
    g = cycle_graph(8)
    path = shortest_path(g, 0, 3)
    assert path[0] == 0 and path[-1] == 3
    assert len(path) == 4
    assert shortest_path(g, 2, 2) == [2]
    disconnected = Graph.from_edges([(0, 1), (2, 3)])
    assert shortest_path(disconnected, 0, 3) is None


def test_distances_agree_with_networkx():
    g = gnp_graph(60, 0.1, seed=13)
    nx_graph = g.to_networkx()
    import networkx as nx

    source = g.vertices()[0]
    expected = nx.single_source_shortest_path_length(nx_graph, source)
    assert bfs_distances(g, source) == dict(expected)
