"""Scenario-spec loading and validation (repro.reports.spec)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.reports import (
    ScenarioSpec,
    SpecError,
    load_scenario_file,
    load_scenarios,
)

SCENARIOS_DIR = Path(__file__).resolve().parent.parent / "scenarios"

MINIMAL = {"name": "tiny", "graph": {"family": "gnp", "sizes": [40]}}


def test_minimal_spec_fills_defaults():
    spec = ScenarioSpec.from_dict(dict(MINIMAL))
    assert spec.name == "tiny"
    assert spec.algorithm == "spanner3"
    assert spec.graph.sizes == (40,)
    assert spec.graph.backend == "dict"
    assert spec.materialize.mode == "batched"
    assert spec.workload is None
    assert spec.mutations.ops == 0


def test_spec_round_trips_through_as_dict():
    data = {
        "name": "round-trip",
        "algorithm": "spannerk",
        "seed": 5,
        "algorithm_options": {"stretch_parameter": 3},
        "graph": {"family": "bounded", "sizes": [60, 80], "backend": "csr"},
        "mutations": {"ops": 4, "seed": 2},
        "workload": {"kind": "zipf", "requests": 50, "seed": 1, "skew": 1.3},
        "service": {"shards": 2, "batch_size": 8},
    }
    spec = ScenarioSpec.from_dict(data)
    again = ScenarioSpec.from_dict(spec.as_dict())
    assert again == spec


@pytest.mark.parametrize(
    "mutation, message",
    [
        ({"name": ""}, "name"),
        ({"name": "bad name with spaces"}, "name"),
        ({"algorithm_options": {}, "unknown_key": 1}, "unknown"),
        ({"graph": {"family": "nope"}}, "family"),
        ({"graph": {"family": "gnp", "sizes": []}}, "sizes"),
        ({"graph": {"backend": "sparse"}}, "backend"),
        ({"materialize": {"mode": "warp"}}, "mode"),
        ({"materialize": {"mode": "cold", "executor": "serial"}}, "batched"),
        ({"workload": {"kind": "trace"}}, "trace"),
        ({"workload": {"kind": "uniform", "skew": 2.0}}, "skew"),
        ({"workload": {"kind": "uniform", "write_ratio": 0.5}}, "write_ratio"),
        ({"workload": {"kind": "churn", "write_ratio": 1.5}}, "write_ratio"),
        ({"service": {"routing": "teleport"}}, "routing"),
        ({"mutations": {"ops": -1}}, "ops"),
    ],
)
def test_invalid_specs_raise_spec_errors(mutation, message):
    data = dict(MINIMAL)
    data.update(mutation)
    if "workload" in mutation or "service" in mutation:
        data.setdefault("workload", {"kind": "uniform", "requests": 10})
    with pytest.raises(SpecError) as excinfo:
        ScenarioSpec.from_dict(data)
    assert message.lower() in str(excinfo.value).lower()


def test_unknown_subtable_keys_are_rejected():
    with pytest.raises(SpecError, match="unknown graph keys"):
        ScenarioSpec.from_dict({"name": "x", "graph": {"famly": "gnp"}})


def test_graph_spec_accepts_scalar_size():
    spec = ScenarioSpec.from_dict({"name": "s", "graph": {"sizes": 50}})
    assert spec.graph.sizes == (50,)


def test_load_json_spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(MINIMAL), encoding="utf-8")
    (spec,) = load_scenario_file(path)
    assert spec.name == "tiny"


def test_load_toml_spec_file_with_scenario_array(tmp_path):
    path = tmp_path / "suite.toml"
    path.write_text(
        '[[scenario]]\nname = "a"\n[scenario.graph]\nsizes = [30]\n\n'
        '[[scenario]]\nname = "b"\n[scenario.graph]\nsizes = [30]\n',
        encoding="utf-8",
    )
    specs = load_scenario_file(path)
    assert [spec.name for spec in specs] == ["a", "b"]


def test_duplicate_names_within_file_rejected(tmp_path):
    path = tmp_path / "dup.toml"
    path.write_text(
        '[[scenario]]\nname = "a"\n\n[[scenario]]\nname = "a"\n', encoding="utf-8"
    )
    with pytest.raises(SpecError, match="duplicate"):
        load_scenario_file(path)


def test_duplicate_names_across_files_rejected(tmp_path):
    for stem in ("one", "two"):
        (tmp_path / f"{stem}.toml").write_text('name = "same"\n', encoding="utf-8")
    with pytest.raises(SpecError, match="defined in both"):
        load_scenarios([tmp_path])


def test_missing_file_and_bad_suffix(tmp_path):
    with pytest.raises(SpecError, match="does not exist"):
        load_scenario_file(tmp_path / "nope.toml")
    bad = tmp_path / "spec.yaml"
    bad.write_text("name: x\n", encoding="utf-8")
    with pytest.raises(SpecError, match=".toml or .json"):
        load_scenario_file(bad)


def test_curated_scenarios_directory_parses():
    """Every shipped spec under scenarios/ must load (no drift)."""
    specs = load_scenarios([SCENARIOS_DIR])
    names = [spec.name for spec in specs]
    assert len(names) == len(set(names))
    assert len(specs) >= 6
    algorithms = {spec.algorithm for spec in specs}
    assert {"spanner3", "spanner5", "spannerk"} <= algorithms
    backends = {spec.graph.backend for spec in specs}
    assert backends == {"dict", "csr"}
    kinds = {spec.workload.kind for spec in specs if spec.workload is not None}
    assert "churn" in kinds


def test_smoke_suite_covers_acceptance_matrix():
    """smoke.toml: spanner3 and spannerk on both backends, each with serving."""
    specs = load_scenario_file(SCENARIOS_DIR / "smoke.toml")
    seen = {(spec.algorithm, spec.graph.backend) for spec in specs}
    assert {
        ("spanner3", "dict"),
        ("spanner3", "csr"),
        ("spannerk", "dict"),
        ("spannerk", "csr"),
    } <= seen
    assert all(spec.workload is not None for spec in specs)


def test_toml_subset_parser_matches_tomllib_on_shipped_specs():
    """The 3.10 fallback parser must agree with tomllib on every curated spec."""
    tomllib = pytest.importorskip("tomllib")
    from repro.reports.spec import _parse_toml_subset

    for path in sorted(SCENARIOS_DIR.glob("*.toml")):
        with path.open("rb") as handle:
            expected = tomllib.load(handle)
        assert _parse_toml_subset(path) == expected, path.name


def test_wrong_typed_values_become_spec_errors():
    """Type errors in values must surface as SpecError, not raw tracebacks."""
    for bad in (
        {"name": "t", "seed": "fast"},
        {"name": "t", "algorithm_options": [1, 2]},
        {"name": "t", "graph": {"density": "0.5"}},
    ):
        with pytest.raises(SpecError):
            ScenarioSpec.from_dict(bad)


def test_subset_parser_rejects_table_array_clash(tmp_path):
    from repro.reports.spec import _parse_toml_subset

    path = tmp_path / "clash.toml"
    path.write_text('[scenario]\nname = "a"\n\n[[scenario]]\nname = "b"\n')
    with pytest.raises(SpecError, match="clashes"):
        _parse_toml_subset(path)


def test_subset_parser_handles_commas_inside_quoted_strings(tmp_path):
    from repro.reports.spec import _parse_toml_subset

    path = tmp_path / "quoted.toml"
    path.write_text('tags = ["a, b", "c"]\ncounts = [1, 2, 3]\n')
    assert _parse_toml_subset(path) == {"tags": ["a, b", "c"], "counts": [1, 2, 3]}


# --------------------------------------------------------------------------- #
# [scenario.faults] (the chaos axis)
# --------------------------------------------------------------------------- #
def test_fault_spec_round_trips_and_builds_a_plan():
    data = {
        **MINIMAL,
        "workload": {"kind": "uniform", "requests": 30},
        "service": {"shards": 2, "replication": 2, "degraded_mode": "shed"},
        "faults": {"seed": 9, "horizon": 16, "crashes": 2, "flaky": 1},
    }
    spec = ScenarioSpec.from_dict(data)
    assert ScenarioSpec.from_dict(spec.as_dict()) == spec
    assert spec.faults.total_events == 3
    plan = spec.faults.to_plan(spec.service.shards, spec.service.replication)
    assert len(plan) == 3
    assert plan == spec.faults.to_plan(2, 2)  # seeded: identical every time


def test_fault_spec_validation():
    with pytest.raises(SpecError, match="unknown faults key"):
        ScenarioSpec.from_dict(
            {
                **MINIMAL,
                "workload": {"kind": "uniform", "requests": 30},
                "faults": {"crashes": 1, "blast": 2},
            }
        )
    with pytest.raises(SpecError, match="workload"):
        # Faults without a service phase have nothing to chaos-test.
        ScenarioSpec.from_dict({**MINIMAL, "faults": {"crashes": 1}})
    with pytest.raises(SpecError):
        ScenarioSpec.from_dict(
            {
                **MINIMAL,
                "workload": {"kind": "uniform", "requests": 30},
                "faults": {"crashes": -1},
            }
        )


def test_service_spec_fault_knobs_validate():
    base = {**MINIMAL, "workload": {"kind": "uniform", "requests": 30}}
    with pytest.raises(SpecError):
        ScenarioSpec.from_dict({**base, "service": {"replication": 0}})
    with pytest.raises(SpecError):
        ScenarioSpec.from_dict({**base, "service": {"degraded_mode": "panic"}})
    with pytest.raises(SpecError):
        ScenarioSpec.from_dict({**base, "service": {"timeout_ticks": 0}})


def test_chaos_scenario_file_parses_and_shrinks_for_smoke():
    from repro.reports import spec_for_smoke

    specs = load_scenario_file(SCENARIOS_DIR / "chaos_crash_churn.toml")
    (spec,) = specs
    assert spec.faults is not None and spec.faults.total_events > 0
    assert spec.service.replication >= 2
    smoke = spec_for_smoke(spec)
    # Smoke runs only last a few cycles; the storm is compressed to fit so
    # the CI chaos job actually injects something.
    assert smoke.faults.total_events == spec.faults.total_events
    assert smoke.faults.horizon <= 4


# ---------------------------------------------------------------------------
# [scenario.observability]
# ---------------------------------------------------------------------------


def test_observability_spec_defaults_and_round_trip():
    from repro.reports import ObservabilitySpec

    data = {
        "name": "obs",
        "graph": {"family": "gnp", "sizes": [40]},
        "workload": {"kind": "uniform", "requests": 10},
        "observability": {},
    }
    spec = ScenarioSpec.from_dict(data)
    assert spec.observability == ObservabilitySpec()
    assert spec.observability.trace and spec.observability.profile
    assert spec.observability.capacity == 65536
    again = ScenarioSpec.from_dict(spec.as_dict())
    assert again == spec
    # Non-default fields survive the round trip too.
    data["observability"] = {"trace": False, "capacity": 128}
    spec = ScenarioSpec.from_dict(data)
    assert ScenarioSpec.from_dict(spec.as_dict()) == spec
    assert spec.observability.capacity == 128


def test_observability_requires_a_workload():
    with pytest.raises(SpecError, match=r"\[observability\] table needs"):
        ScenarioSpec.from_dict(
            {
                "name": "obs",
                "graph": {"family": "gnp", "sizes": [40]},
                "observability": {},
            }
        )


def test_observability_validation():
    base = {
        "name": "obs",
        "graph": {"family": "gnp", "sizes": [40]},
        "workload": {"kind": "uniform", "requests": 10},
    }
    with pytest.raises(SpecError, match="capacity"):
        ScenarioSpec.from_dict({**base, "observability": {"capacity": 0}})
    with pytest.raises(SpecError, match="trace and/or profile"):
        ScenarioSpec.from_dict(
            {**base, "observability": {"trace": False, "profile": False}}
        )
    with pytest.raises(SpecError, match="unknown observability keys"):
        ScenarioSpec.from_dict({**base, "observability": {"sampling": 0.5}})


def test_observability_smoke_scenario_file_parses():
    specs = load_scenario_file(SCENARIOS_DIR / "observability_smoke.toml")
    assert [spec.name for spec in specs] == [
        "obs-spanner3-zipf",
        "obs-spannerk-uniform",
    ]
    for spec in specs:
        assert spec.observability is not None
        assert spec.observability.trace and spec.observability.profile
