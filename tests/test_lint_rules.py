"""Fixture-backed tests for every `repro lint` rule.

Each rule gets a positive fixture (the contract violation fires), a
negative fixture (the sanctioned idiom passes), and the suppression
mechanics (inline pragmas, baseline entries) are exercised against real
findings.  Fixtures are tiny synthetic trees under tmp_path laid out like
the repository (``src/repro/...``) so path-scoped rules see the packages
they guard.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import BaselineError, load_baseline, run_lint

DOCSTRING = '"""Fixture module."""\n'


def lint_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for rel_path, source in files.items():
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(DOCSTRING + textwrap.dedent(source), encoding="utf-8")
    return run_lint(root=tmp_path)


def codes(report):
    return [finding.code for finding in report.findings]


# --------------------------------------------------------------------------- #
# DET001 — wall-clock / nondeterminism sources
# --------------------------------------------------------------------------- #
def test_det001_flags_wall_clock_reads(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            import time
            import uuid

            def stamp():
                return time.time(), uuid.uuid4()
        """,
    })
    assert codes(report) == ["DET001", "DET001"]
    assert "time.time" in report.findings[0].message


def test_det001_accepts_injected_clocks(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            def run(workload, clock):
                started = clock()
                return clock() - started
        """,
    })
    assert codes(report) == []


def test_det001_sees_through_import_aliases(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            from time import perf_counter as tick

            def now():
                return tick()
        """,
    })
    assert codes(report) == ["DET001"]


# --------------------------------------------------------------------------- #
# DET002 — ambient randomness
# --------------------------------------------------------------------------- #
def test_det002_flags_module_level_random(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            import random

            def pick(items):
                return items[random.randrange(len(items))]
        """,
    })
    assert codes(report) == ["DET002"]


def test_det002_flags_unseeded_random_instance(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            import random

            def fresh():
                return random.Random()
        """,
    })
    assert codes(report) == ["DET002"]


def test_det002_accepts_seeded_namespaced_streams(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            from random import Random

            def stream(seed):
                return Random(seed)
        """,
    })
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# OBS001 — guarded observability on hot paths
# --------------------------------------------------------------------------- #
def test_obs001_flags_unguarded_tracer_call_on_hot_path(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/core/mod.py": """
            def answer(tracer):
                tracer.instant("core.answer")
                return 1
        """,
    })
    assert codes(report) == ["OBS001"]


def test_obs001_accepts_guards_flags_and_null_tracer(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/core/mod.py": """
            NULL_TRACER = object()

            def direct(tracer):
                if tracer is not None and tracer.enabled:
                    tracer.instant("core.direct")

            def hoisted(tracer):
                tracing = tracer is not None and tracer.enabled
                if tracing:
                    tracer.instant("core.hoisted")

            def null_default(tracer=NULL_TRACER):
                tracer.instant("core.null")
        """,
    })
    assert codes(report) == []


def test_obs001_ignores_cold_packages(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/analysis/mod.py": """
            def summarize(tracer):
                tracer.instant("analysis.summarize")
        """,
    })
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# PLAN001 — picklable executor plans
# --------------------------------------------------------------------------- #
def test_plan001_flags_lambda_and_nested_callables(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            from repro.exec.plan import ChunkPlan

            def build(edges):
                def local_fn(edge):
                    return edge
                return [
                    ChunkPlan(fn=lambda e: e),
                    ChunkPlan(fn=local_fn),
                ]
        """,
    })
    assert codes(report) == ["PLAN001", "PLAN001"]


def test_plan001_accepts_module_level_callables(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            from repro.exec.plan import ChunkPlan

            def probe_edge(edge):
                return edge

            def build(edges):
                return ChunkPlan(fn=probe_edge)
        """,
    })
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# MET001 — metric-name grammar at lint time
# --------------------------------------------------------------------------- #
def test_met001_flags_names_outside_the_grammar(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            def publish(registry):
                registry.counter("BadName")
                registry.gauge("singleword", 1.0)
        """,
    })
    assert codes(report) == ["MET001", "MET001"]


def test_met001_accepts_dotted_lowercase_names(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            def publish(registry, kind):
                registry.counter("service.requests.served")
                registry.counter(f"probes.kind.{kind}")
        """,
    })
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# EXC001 — no silent exception swallowing in fault-bearing planes
# --------------------------------------------------------------------------- #
def test_exc001_flags_bare_and_silent_handlers(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/service/mod.py": """
            def shaky(fn):
                try:
                    fn()
                except:
                    pass
                try:
                    fn()
                except Exception:
                    pass
        """,
    })
    assert codes(report) == ["EXC001", "EXC001"]


def test_exc001_accepts_typed_and_handled_exceptions(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/service/mod.py": """
            def shaky(fn, log):
                try:
                    fn()
                except ValueError:
                    pass
                try:
                    fn()
                except Exception as exc:
                    log(exc)
                    raise
        """,
    })
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# IMP001 — layering and numpy containment
# --------------------------------------------------------------------------- #
def test_imp001_flags_foundation_importing_service(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/core/mod.py": """
            from repro.service import engine
        """,
    })
    assert codes(report) == ["IMP001"]


def test_imp001_flags_numpy_outside_kernels(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/obs/mod.py": """
            import numpy as np
        """,
    })
    assert codes(report) == ["IMP001"]


def test_imp001_accepts_guarded_numpy_in_kernels(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/kernels/mod.py": """
            try:
                import numpy as np
            except ImportError:
                np = None
        """,
    })
    assert codes(report) == []


def test_imp001_accepts_service_importing_core(tmp_path):
    report = lint_tree(tmp_path, {
        "src/repro/service/mod.py": """
            from repro.core import probes
        """,
    })
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# DOC001 — docstring coverage (module half; entry points need the real repo)
# --------------------------------------------------------------------------- #
def test_doc001_flags_missing_module_docstring(tmp_path):
    path = tmp_path / "src" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n", encoding="utf-8")
    report = run_lint(root=tmp_path)
    assert codes(report) == ["DOC001"]


def test_doc001_skips_private_modules(tmp_path):
    path = tmp_path / "src" / "_internal.py"
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n", encoding="utf-8")
    report = run_lint(root=tmp_path)
    assert codes(report) == []


# --------------------------------------------------------------------------- #
# LINT000 — unparseable files are findings, not crashes
# --------------------------------------------------------------------------- #
def test_syntax_errors_surface_as_lint000(tmp_path):
    path = tmp_path / "src" / "broken.py"
    path.parent.mkdir(parents=True)
    path.write_text('"""Doc."""\ndef f(:\n', encoding="utf-8")
    report = run_lint(root=tmp_path)
    assert codes(report) == ["LINT000"]


# --------------------------------------------------------------------------- #
# Suppression: inline pragmas and the baseline
# --------------------------------------------------------------------------- #
def test_same_line_pragma_suppresses_one_finding(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=DET001 - fixture
        """,
    })
    assert codes(report) == []
    assert report.suppressed_pragma == 1


def test_file_wide_pragma_suppresses_every_match(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            # repro-lint: disable-file=DET001
            import time

            def stamp():
                return time.time(), time.monotonic()
        """,
    })
    assert codes(report) == []
    assert report.suppressed_pragma == 2


def test_pragma_does_not_suppress_other_codes(tmp_path):
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=DET002 - wrong code
        """,
    })
    assert codes(report) == ["DET001"]


def test_baseline_suppresses_by_glob(tmp_path):
    (tmp_path / "lint-baseline.toml").write_text(
        'schema = 1\n\n[[allow]]\ncode = "DET001"\npath = "src/*.py"\n'
        'reason = "fixture grant"\n',
        encoding="utf-8",
    )
    report = lint_tree(tmp_path, {
        "src/mod.py": """
            import time

            def stamp():
                return time.time()
        """,
    })
    assert codes(report) == []
    assert report.suppressed_baseline == 1


def test_baseline_requires_a_reason(tmp_path):
    path = tmp_path / "lint-baseline.toml"
    path.write_text(
        'schema = 1\n\n[[allow]]\ncode = "DET001"\npath = "src/*.py"\nreason = ""\n',
        encoding="utf-8",
    )
    with pytest.raises(BaselineError, match="reason"):
        load_baseline(path)


def test_baseline_rejects_unknown_schema(tmp_path):
    path = tmp_path / "lint-baseline.toml"
    path.write_text("schema = 99\n", encoding="utf-8")
    with pytest.raises(BaselineError, match="schema"):
        load_baseline(path)
