"""Cross-module integration tests: registry → LCA → harness → reports."""

from __future__ import annotations

import pytest

import repro
from repro import available_lcas, create_lca, evaluate_lca, format_table, graphs
from repro.analysis import evaluate_materialized
from repro.baselines import baswana_sen_spanner, greedy_spanner
from repro.core.lca import MaterializedSpanner


def test_package_exposes_version_and_api():
    assert repro.__version__
    assert "spanner3" in available_lcas()
    assert hasattr(repro, "ThreeSpannerLCA")
    assert hasattr(repro, "FiveSpannerLCA")
    assert hasattr(repro, "KSquaredSpannerLCA")


def test_registry_driven_pipeline_produces_reports():
    graph = graphs.dense_cluster_graph(80, 8, inter_probability=0.05, seed=5)
    rows = []
    for name in ("spanner3", "spanner5"):
        lca = create_lca(name, graph, seed=3)
        report = evaluate_lca(lca)
        assert report.stretch_ok
        rows.append(report.as_row())
    text = format_table(rows, title="Integration")
    assert "spanner3" in text and "spanner5" in text


def test_lca_spanners_compare_sanely_to_global_baselines():
    """The LCA spanners must not be larger than the trivial 'keep all' and the
    global baselines must not beat the stretch bounds claimed by the LCAs."""
    graph = graphs.gnp_graph(90, 0.3, seed=8)
    lca3 = create_lca("spanner3", graph, seed=1)
    lca3_edges = lca3.materialize().num_edges
    bs_edges = len(baswana_sen_spanner(graph, 2, seed=1))
    greedy_edges = len(greedy_spanner(graph, 2))
    assert lca3_edges <= graph.num_edges
    assert greedy_edges <= graph.num_edges
    assert bs_edges <= graph.num_edges
    # greedy is the sparsest of the three (it is the global yardstick)
    assert greedy_edges <= lca3_edges


def test_materialized_spanner_reevaluation_round_trip():
    graph = graphs.gnp_graph(60, 0.2, seed=9)
    lca = create_lca("spanner3", graph, seed=4)
    materialized = lca.materialize()
    # Re-wrap the edge set and evaluate it as an external artifact.
    artifact = MaterializedSpanner(
        algorithm="external-copy", stretch_bound=3, edges=set(materialized.edges)
    )
    report = evaluate_materialized(graph, artifact)
    assert report.stretch_ok
    assert report.num_spanner_edges == materialized.num_edges


def test_quickstart_docstring_flow():
    graph = graphs.gnp_graph(100, 0.2, seed=1)
    lca = repro.ThreeSpannerLCA(graph, seed=7)
    u, v = next(iter(graph.edges()))
    answer = lca.query(u, v)
    assert isinstance(answer, bool)
    report = evaluate_lca(lca)
    assert report.stretch.max_stretch <= 3


@pytest.mark.parametrize("name", ["spanner3", "spanner5", "sparse-spanning"])
def test_every_registered_lca_preserves_connectivity(name):
    graph = graphs.gnp_graph(70, 0.2, seed=12)
    lca = create_lca(name, graph, seed=2)
    report = evaluate_lca(lca)
    assert report.connectivity_preserved
