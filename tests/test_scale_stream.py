"""Streaming graph builders ≡ in-memory construction (the scale-plane pin).

The scale plane's entire value proposition is that the chunked path is a
*pure refactor* of graph construction: same seed → bit-identical CSR arrays,
neighbor orderings and kernel probe counts, with no Python edge list in
between.  These tests pin that equivalence across every streaming family,
exercise the re-iterability contract of :class:`~repro.graphs.EdgeChunkStream`,
and check the one-line error surface of the chunk builder, the streaming
edge-list reader and the scenario-spec validation.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import graphs
from repro.core.errors import GraphError, ParameterError
from repro.core.registry import create
from repro.graphs import (
    EdgeChunkStream,
    Graph,
    build_family,
    cluster_edge_chunks,
    gnp_edge_chunks,
    power_law_edge_chunks,
    read_edge_list,
    read_edge_list_stream,
    write_edge_list,
)
from repro.reports.spec import SpecError, load_scenario_file
from repro.scale import build_csr_from_chunks, build_stream_family, stream_family

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

STREAM_PARAMS = [
    ("gnp-stream", 0.15),
    ("power-law-stream", 0.1),
    ("clustered-stream", 0.08),
]


def _chunk_edges(chunks: EdgeChunkStream):
    """Flatten a chunk stream back into (u, v) pairs (test-side only)."""
    for chunk in chunks:
        for i in range(0, len(chunk), 2):
            yield (chunk[i], chunk[i + 1])


def _csr_arrays(graph):
    csr = graph.to_backend("csr")
    csr.compact()
    return (
        list(csr._ids),
        list(csr._indptr),
        list(csr._indices),
    )


# --------------------------------------------------------------------------- #
# Stream build ≡ from_edges over the same chunk sequence
# --------------------------------------------------------------------------- #
@relaxed
@given(
    n=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=10**6),
    chunk_edges=st.integers(min_value=1, max_value=17),
    family_index=st.integers(min_value=0, max_value=len(STREAM_PARAMS) - 1),
)
def test_stream_build_matches_from_edges(n, seed, chunk_edges, family_index):
    family, density = STREAM_PARAMS[family_index]
    chunks = stream_family(family, n, density=density, seed=seed, chunk_edges=chunk_edges)
    streamed = build_csr_from_chunks(chunks, shuffle_seed=seed)
    reference = Graph.from_edges(
        list(_chunk_edges(chunks)), vertices=range(n), shuffle_seed=seed
    ).to_backend("csr")
    assert _csr_arrays(streamed) == _csr_arrays(reference)
    for v in streamed.vertices():
        assert list(streamed.neighbors(v)) == list(reference.neighbors(v))


@relaxed
@given(
    n=st.integers(min_value=2, max_value=80),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_gnp_stream_bit_identical_to_legacy_gnp(n, p, seed):
    """The legacy family and its streamed variant share one rng schedule."""
    legacy = graphs.gnp_graph(n, p, seed=seed).to_backend("csr")
    streamed = build_stream_family("gnp-stream", n, density=p, seed=seed)
    assert _csr_arrays(streamed) == _csr_arrays(legacy)


def test_stream_families_registered_and_equal_via_build_family():
    for family, density in STREAM_PARAMS:
        assert family in graphs.FAMILY_BUILDERS
        assert family in graphs.STREAM_FAMILIES
        via_registry = build_family(family, 50, density=density, seed=9)
        direct = build_stream_family(family, 50, density=density, seed=9)
        assert _csr_arrays(via_registry) == _csr_arrays(direct)


@pytest.mark.parametrize("family,density", STREAM_PARAMS)
def test_stream_build_probe_counts_match_from_edges(family, density):
    """Same arrays → same kernel probe counts, query by query."""
    n, seed = 48, 4
    chunks = stream_family(family, n, density=density, seed=seed, chunk_edges=11)
    streamed = build_csr_from_chunks(chunks, shuffle_seed=seed)
    reference = Graph.from_edges(
        list(_chunk_edges(chunks)), vertices=range(n), shuffle_seed=seed
    ).to_backend("csr")
    lca_s = create("spanner3", streamed, seed=7)
    lca_r = create("spanner3", reference, seed=7)
    mat_s = lca_s.materialize(mode="batched")
    mat_r = lca_r.materialize(mode="batched")
    assert mat_s.edges == mat_r.edges
    assert mat_s.probe_stats.query_totals == mat_r.probe_stats.query_totals
    assert (
        lca_s.probe_counter.snapshot().as_dict()
        == lca_r.probe_counter.snapshot().as_dict()
    )


@pytest.mark.parametrize(
    "make",
    [
        lambda: gnp_edge_chunks(40, 0.3, seed=12, chunk_edges=5),
        lambda: power_law_edge_chunks(40, seed=12, chunk_edges=5),
        lambda: cluster_edge_chunks(40, 4, inter_probability=0.1, seed=12, chunk_edges=5),
    ],
    ids=["gnp", "power-law", "clustered"],
)
def test_chunk_stream_is_reiterable_and_chunk_sized(make):
    chunks = make()
    first = [array("q", c) for c in chunks]
    second = [array("q", c) for c in chunks]
    assert first == second
    assert sum(len(c) for c in first) > 0
    assert all(len(c) <= 2 * 5 for c in first)
    assert all(len(c) % 2 == 0 for c in first)


def test_chunk_stream_rejects_bad_parameters():
    with pytest.raises(ParameterError):
        EdgeChunkStream(-1, lambda: iter(()))
    with pytest.raises(ParameterError):
        EdgeChunkStream(4, lambda: iter(()), chunk_edges=0)
    with pytest.raises(ParameterError):
        stream_family("grid", 10)


# --------------------------------------------------------------------------- #
# Chunk-builder error surface
# --------------------------------------------------------------------------- #
def _stream_of(n, pairs, chunk_edges=4):
    return EdgeChunkStream(n, lambda: iter(pairs), chunk_edges=chunk_edges)


def test_builder_rejects_self_loops_and_out_of_range():
    with pytest.raises(GraphError, match="self-loop"):
        build_csr_from_chunks(_stream_of(4, [(1, 1)]))
    with pytest.raises(GraphError, match="outside the declared vertex range"):
        build_csr_from_chunks(_stream_of(4, [(0, 9)]))
    with pytest.raises(GraphError, match="outside the declared vertex range"):
        build_csr_from_chunks(_stream_of(4, [(-1, 2)]))


def test_builder_rejects_odd_chunks_and_unstable_streams():
    class OddChunks:
        num_vertices = 4

        def __iter__(self):
            yield array("q", [0, 1, 2])

    with pytest.raises(GraphError, match="odd length"):
        build_csr_from_chunks(OddChunks())

    class Unstable:
        """Yields a different edge set on the second pass."""

        num_vertices = 4

        def __init__(self):
            self.passes = 0

        def __iter__(self):
            self.passes += 1
            pairs = [(0, 1)] if self.passes == 1 else [(2, 3)]
            yield array("q", [x for pair in pairs for x in pair])

    with pytest.raises(GraphError, match="changed between passes"):
        build_csr_from_chunks(Unstable())


def test_builder_empty_and_isolated_vertices():
    empty = build_csr_from_chunks(_stream_of(5, []))
    assert empty.num_vertices == 5
    assert empty.num_edges == 0
    assert list(empty.neighbors(3)) == []


# --------------------------------------------------------------------------- #
# Streaming edge-list reader
# --------------------------------------------------------------------------- #
def test_read_edge_list_stream_round_trip(tmp_path):
    graph = graphs.gnp_graph(30, 0.2, seed=6)
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    chunks = read_edge_list_stream(path, chunk_edges=7)
    rebuilt = build_csr_from_chunks(chunks)
    reference = read_edge_list(path).to_backend("csr")
    assert _csr_arrays(rebuilt) == _csr_arrays(reference)
    # Re-iterable: a second build sees the same file contents.
    assert _csr_arrays(build_csr_from_chunks(chunks)) == _csr_arrays(rebuilt)


def test_read_edge_list_stream_errors(tmp_path):
    with pytest.raises(GraphError, match="does not exist"):
        list(read_edge_list_stream(tmp_path / "missing.txt"))
    headerless = tmp_path / "h.txt"
    headerless.write_text("0 1\n")
    with pytest.raises(GraphError, match="header"):
        read_edge_list_stream(headerless)
    malformed = tmp_path / "m.txt"
    malformed.write_text("# 3 1\n0 one\n")
    chunks = read_edge_list_stream(malformed)
    with pytest.raises(GraphError, match="malformed edge line"):
        list(chunks)


# --------------------------------------------------------------------------- #
# Scenario-spec validation for streaming families and memo caps
# --------------------------------------------------------------------------- #
def _scenario_toml(extra=""):
    return f"""
[[scenario]]
name = "s"
algorithm = "spanner3"

[scenario.graph]
family = "gnp-stream"
sizes = [40]
density = 0.1
seed = 3
backend = "csr"

[scenario.materialize]
mode = "batched"
{extra}
"""


def test_spec_accepts_stream_family_with_csr_backend(tmp_path):
    path = tmp_path / "ok.toml"
    path.write_text(_scenario_toml("memo_cap = 16"))
    (spec,) = load_scenario_file(path)
    assert spec.graph.family == "gnp-stream"
    assert spec.materialize.memo_cap == 16


def test_spec_rejects_stream_family_with_dict_backend(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text(_scenario_toml().replace('backend = "csr"', 'backend = "dict"'))
    with pytest.raises(SpecError, match="streaming family"):
        load_scenario_file(path)


@pytest.mark.parametrize(
    "extra,message",
    [
        ("memo_cap = 0", "memo_cap"),
        ('memo_cap = 8\nmode = "cold"', "cold mode has no memo"),
        ('memo_cap = 8\nexecutor = "thread"\nworkers = 2', "unbounded caches"),
    ],
)
def test_spec_rejects_nonsensical_cap_combinations(tmp_path, extra, message):
    path = tmp_path / "bad.toml"
    toml = _scenario_toml(extra)
    if 'mode = "cold"' in extra:
        toml = toml.replace('mode = "batched"\n', "")
    if "executor" in extra:
        toml = toml.replace('mode = "batched"\n', "")
    path.write_text(toml)
    with pytest.raises(SpecError, match=message):
        load_scenario_file(path)
