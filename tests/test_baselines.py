"""Tests for the global baselines and the distributed simulation engine."""

from __future__ import annotations

import pytest

from repro.analysis import measure_stretch, preserves_connectivity
from repro.baselines import (
    ClusterSampler,
    SparseSpanningSubgraphLCA,
    adjacency_from_edges,
    baswana_sen_spanner,
    expected_size_bound,
    greedy_size_bound,
    greedy_spanner,
    simulate_baswana_sen,
)
from repro.core.errors import ParameterError
from repro.graphs import gnp_graph, grid_graph


@pytest.mark.parametrize("k", [2, 3])
def test_baswana_sen_stretch_guarantee(k):
    graph = gnp_graph(120, 0.15, seed=3)
    spanner = baswana_sen_spanner(graph, stretch_parameter=k, seed=1)
    report = measure_stretch(graph, spanner, limit=2 * k)
    assert report.max_stretch <= 2 * k - 1
    assert preserves_connectivity(graph, spanner)


def test_baswana_sen_sparsifies_dense_graphs():
    graph = gnp_graph(150, 0.4, seed=5)
    spanner = baswana_sen_spanner(graph, stretch_parameter=2, seed=1)
    assert len(spanner) < graph.num_edges
    # within a polylog factor of the k n^{1+1/k} bound
    assert len(spanner) < 20 * expected_size_bound(graph.num_vertices, 2)


def test_baswana_sen_deterministic_in_seed():
    graph = gnp_graph(80, 0.2, seed=2)
    assert baswana_sen_spanner(graph, 2, seed=4) == baswana_sen_spanner(graph, 2, seed=4)


def test_cluster_sampler_validation_and_rates():
    with pytest.raises(ParameterError):
        ClusterSampler(seed=1, stretch_parameter=0, num_vertices_global=10)
    with pytest.raises(ParameterError):
        ClusterSampler(seed=1, stretch_parameter=2, num_vertices_global=0)
    sampler = ClusterSampler(seed=1, stretch_parameter=2, num_vertices_global=400)
    rate = sum(1 for c in range(2000) if sampler.is_sampled(1, c)) / 2000
    assert abs(rate - 400 ** -0.5) < 0.03
    with pytest.raises(ParameterError):
        sampler.is_sampled(3, 0)


def test_simulate_baswana_sen_k1_keeps_one_edge_per_adjacent_cluster():
    """k = 1: no phase-1 rounds; every vertex keeps one edge to each
    neighboring (singleton) cluster, i.e. all edges survive."""
    graph = grid_graph(4, 4)
    sampler = ClusterSampler(seed=1, stretch_parameter=1, num_vertices_global=16)
    run = simulate_baswana_sen(adjacency_from_edges(graph.vertices(), graph.edges()), sampler)
    assert run.all_edges() == set(graph.edges())


def test_simulation_attributes_edges_to_vertices():
    graph = gnp_graph(40, 0.2, seed=7)
    sampler = ClusterSampler(seed=2, stretch_parameter=2, num_vertices_global=40)
    run = simulate_baswana_sen(adjacency_from_edges(graph.vertices(), graph.edges()), sampler)
    for vertex, edges in run.added_by.items():
        for (u, v) in edges:
            assert vertex in (u, v)
            assert graph.has_edge(u, v)
    assert set(run.final_cluster) == set(graph.vertices())


@pytest.mark.parametrize("k", [2, 4])
def test_greedy_spanner_stretch_and_size(k):
    graph = gnp_graph(100, 0.3, seed=9)
    spanner = greedy_spanner(graph, stretch_parameter=k)
    report = measure_stretch(graph, spanner, limit=2 * k)
    assert report.max_stretch <= 2 * k - 1
    assert len(spanner) <= graph.num_edges
    assert len(spanner) < 4 * greedy_size_bound(graph.num_vertices, k)


def test_greedy_spanner_is_deterministic():
    graph = gnp_graph(60, 0.3, seed=1)
    assert greedy_spanner(graph, 2) == greedy_spanner(graph, 2)


def test_greedy_spanner_on_tree_keeps_everything():
    from repro.graphs import path_graph

    graph = path_graph(20)
    assert greedy_spanner(graph, 3) == set(graph.edges())


def test_sparse_spanning_lca_preserves_connectivity():
    graph = gnp_graph(80, 0.15, seed=4)
    lca = SparseSpanningSubgraphLCA(graph, seed=3, radius=3)
    kept = lca.materialize()
    assert preserves_connectivity(graph, kept.edges)
    # it actually drops some edges on a graph with many short cycles
    assert kept.num_edges < graph.num_edges
    assert lca.stretch_bound() is None


def test_sparse_spanning_lca_consistent_between_orientations():
    graph = gnp_graph(40, 0.2, seed=6)
    lca = SparseSpanningSubgraphLCA(graph, seed=3, radius=2)
    for (u, v) in list(graph.edges())[:30]:
        assert lca.query(u, v) == lca.query(v, u)


def test_sparse_spanning_keeps_bridges():
    from repro.graphs import path_graph

    graph = path_graph(15)
    lca = SparseSpanningSubgraphLCA(graph, seed=1, radius=4)
    assert lca.materialize().num_edges == graph.num_edges
