"""Workload streams are reproducible; traces replay losslessly.

The serving benchmarks and equivalence tests all lean on one assumption:
a ``(kind, graph, seed, size)`` tuple names *one* request stream.  These
tests pin that across repeated construction, across graph storage backends
(the stream may not depend on dict iteration quirks), and — for the
adaptive kind — across repeated runs with the same feedback.  Trace IO
must round-trip bit-exactly, including orientation and annotation keys.
"""

from __future__ import annotations

import json

import pytest

from repro import graphs
from repro.service import TraceWorkload, make_workload, read_trace, write_trace
from repro.service.trace import iter_trace


@pytest.fixture
def graph():
    return graphs.gnp_graph(70, 0.18, seed=4)


GENERATIVE_KINDS = ("uniform", "zipf", "adaptive")


@pytest.mark.parametrize("kind", GENERATIVE_KINDS)
def test_identical_streams_for_a_fixed_seed_across_runs(graph, kind):
    streams = [
        list(make_workload(kind, graph, num_requests=150, seed=13))
        for _ in range(3)
    ]
    assert streams[0] == streams[1] == streams[2]
    assert len(streams[0]) == 150
    assert list(make_workload(kind, graph, num_requests=150, seed=14)) != streams[0]


@pytest.mark.parametrize("kind", GENERATIVE_KINDS)
def test_streams_do_not_depend_on_the_graph_storage_backend(graph, kind):
    csr = graph.to_backend("csr")
    dict_stream = list(make_workload(kind, graph, num_requests=150, seed=21))
    csr_stream = list(make_workload(kind, csr, num_requests=150, seed=21))
    assert dict_stream == csr_stream


def test_adaptive_stream_is_deterministic_under_identical_feedback(graph):
    def drive(workload):
        stream = []
        while True:
            edge = workload.next_request()
            if edge is None:
                return stream
            stream.append(edge)
            # Deterministic pseudo-answers: feedback identical across runs.
            workload.observe(edge, (edge[0] + edge[1]) % 3 == 0)

    first = drive(make_workload("adaptive", graph, num_requests=200, seed=5))
    second = drive(make_workload("adaptive", graph, num_requests=200, seed=5))
    assert first == second


# --------------------------------------------------------------------------- #
# Trace round trips
# --------------------------------------------------------------------------- #
def test_write_read_roundtrip_is_lossless(tmp_path, graph):
    # Mixed orientations and repeats — both must replay exactly.
    stream = []
    for i, (u, v) in enumerate(graph.edges()):
        stream.append((v, u) if i % 3 == 0 else (u, v))
        if i % 5 == 0:
            stream.append((u, v))
        if len(stream) >= 60:
            break
    path = tmp_path / "trace.jsonl"
    assert write_trace(path, stream) == len(stream)
    assert read_trace(path) == stream
    assert list(iter_trace(path)) == stream
    assert list(TraceWorkload(graph, path=str(path))) == stream


def test_roundtrip_preserves_large_and_negative_ids(tmp_path):
    stream = [(10**15, 10**15 + 1), (-4, 7), (7, -4)]
    path = tmp_path / "big.jsonl"
    write_trace(path, stream)
    assert read_trace(path) == stream


def test_annotation_keys_survive_replay_ignored(tmp_path, graph):
    edges = list(graph.edges())[:5]
    path = tmp_path / "annotated.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for i, (u, v) in enumerate(edges):
            handle.write(
                json.dumps({"u": u, "v": v, "ts": i * 0.5, "client": f"c{i}"}) + "\n"
            )
        handle.write("\n")  # trailing blank line is skipped
    assert read_trace(path) == edges


def test_recorded_service_stream_replays_to_identical_answers(tmp_path, graph):
    """End to end: record a workload, replay it through a fresh engine, get
    the same answers and probe totals (the regression-testing workflow)."""
    from repro.core.registry import create
    from repro.service import ServiceConfig, ServiceEngine

    factory = lambda g: create("spanner3", g, seed=5, hitting_constant=1.0)
    stream = list(make_workload("zipf", graph, num_requests=120, seed=2))
    path = tmp_path / "recorded.jsonl"
    write_trace(path, stream)

    config = ServiceConfig(num_shards=2, batch_size=8)
    first = ServiceEngine(graph, factory, config)
    first.run(TraceWorkload(graph, path=str(path)))
    second = ServiceEngine(graph, factory, ServiceConfig(num_shards=4, batch_size=16))
    second.run(TraceWorkload(graph, path=str(path)))
    assert [(r.u, r.v, r.in_spanner, r.probe_total) for r in first.records] == [
        (r.u, r.v, r.in_spanner, r.probe_total) for r in second.records
    ]
