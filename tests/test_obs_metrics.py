"""Unified metrics registry + run-metrics collection (repro.obs.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.core.registry import create
from repro.faults import FaultPlan
from repro.faults.injector import FaultStats
from repro.obs import METRICS_SCHEMA, MetricsRegistry, ProbeProfiler, collect_run_metrics
from repro.reports import TickClock
from repro.graphs import gnp_graph
from repro.service import ServiceConfig, ServiceEngine, make_workload


def serve(graph, replication=1, fault_plan=None, profiler=None):
    engine = ServiceEngine(
        graph,
        lambda g: create("spanner3", g, seed=5, hitting_constant=1.0),
        ServiceConfig(
            num_shards=2, batch_size=8, replication=replication, fault_plan=fault_plan
        ),
    )
    workload = make_workload("zipf", graph, num_requests=60, seed=3)
    return engine.run(workload, clock=TickClock(), profiler=profiler)


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------


def test_counter_gauge_histogram_roundtrip():
    registry = MetricsRegistry()
    registry.counter("service.requests.served", 3)
    registry.counter("service.requests.served", 2)
    registry.gauge("service.throughput.rps", 10.5)
    registry.gauge("service.throughput.rps", 12.25)
    for value in (1, 2, 3, 10):
        registry.observe("service.latency.ticks", value)
    assert registry.value("service.requests.served") == 5
    assert registry.value("service.throughput.rps") == 12.25
    assert registry.value("service.latency.ticks") == [1.0, 2.0, 3.0, 10.0]
    snapshot = registry.snapshot()
    assert snapshot["schema"] == METRICS_SCHEMA
    histogram = snapshot["metrics"]["service.latency.ticks"]
    assert histogram["count"] == 4
    assert histogram["max"] == 10
    assert histogram["p50"] == 3  # nearest-rank: ordered[floor(1.5 + 0.5)]


def test_counters_are_monotone():
    registry = MetricsRegistry()
    registry.counter("faults.crashes")
    with pytest.raises(ValueError, match="cannot decrease"):
        registry.counter("faults.crashes", -1)


def test_name_scheme_is_enforced():
    registry = MetricsRegistry()
    for bad in ("served", "Service.requests", "service.", "service..x", "a b.c"):
        with pytest.raises(ValueError, match="dotted lowercase"):
            registry.counter(bad)


def test_type_conflicts_are_rejected():
    registry = MetricsRegistry()
    registry.counter("cache.lookups.hits")
    with pytest.raises(ValueError, match="already registered as a counter"):
        registry.gauge("cache.lookups.hits", 1.0)
    with pytest.raises(KeyError):
        registry.value("cache.lookups.misses")


def test_snapshot_is_sorted_and_json_serializable():
    registry = MetricsRegistry()
    registry.gauge("service.b", 1)
    registry.counter("cache.a", 2)
    registry.observe("probes.h", 3)
    snapshot = registry.snapshot()
    assert list(snapshot["metrics"]) == sorted(snapshot["metrics"])
    json.dumps(snapshot)  # must not raise


# ---------------------------------------------------------------------------
# one snapshot covering every plane
# ---------------------------------------------------------------------------


def test_collect_run_metrics_covers_all_planes():
    graph = gnp_graph(60, 0.15, seed=11).to_backend("csr")
    plan = FaultPlan.generate(
        seed=9, num_shards=2, replication=2, horizon=12, crashes=2, duration=2
    )
    profiler = ProbeProfiler()
    report = serve(graph, replication=2, fault_plan=plan, profiler=profiler)
    snapshot = collect_run_metrics(report, profiler).snapshot()
    metrics = snapshot["metrics"]

    # service.*
    assert metrics["service.requests.served"]["value"] == report.served
    assert metrics["service.latency.p99_ms"]["type"] == "gauge"
    # cache.*
    assert "cache.lookups.hits" in metrics
    assert "cache.invalidations.epoch" in metrics
    assert metrics["cache.outcome.memo_hit.calls"]["type"] == "counter"
    # probes.*
    assert metrics["probes.total"]["value"] == report.probe_stats.total
    assert "probes.kind.neighbor" in metrics
    # executor.*
    assert metrics["executor.shards"]["value"] == 2
    assert "executor.queue.max_depth" in metrics
    # faults.*
    assert metrics["faults.crashes"]["value"] == report.faults["crashes"]
    assert metrics["faults.availability"]["value"] == round(report.availability, 6)

    json.dumps(snapshot)  # the one versioned artifact must serialize


def test_collect_run_metrics_without_profiler():
    graph = gnp_graph(50, 0.15, seed=11).to_backend("csr")
    report = serve(graph)
    metrics = collect_run_metrics(report).snapshot()["metrics"]
    assert "cache.invalidations.epoch" not in metrics
    assert metrics["service.requests.served"]["value"] == report.served


def test_fault_stats_register_into():
    stats = FaultStats()
    stats.crashes = 3
    stats.retries = 5
    registry = MetricsRegistry()
    stats.register_into(registry)
    assert registry.value("faults.crashes") == 3
    assert registry.value("faults.retries") == 5
    custom = MetricsRegistry()
    stats.register_into(custom, prefix="chaos")
    assert custom.value("chaos.crashes") == 3
