"""Tests for center sampling, rank assignment and index sampling."""

from __future__ import annotations

import pytest

from repro.core.errors import ParameterError
from repro.rand import (
    CenterSampler,
    IndexSampler,
    RankAssigner,
    hitting_probability,
    log_count,
)


def test_center_sampler_rate_close_to_probability():
    sampler = CenterSampler(seed=3, probability=0.3, independence=12)
    hits = sum(1 for v in range(3000) if sampler.is_center(v))
    assert abs(hits / 3000 - 0.3) < 0.04


def test_center_sampler_is_deterministic():
    a = CenterSampler(seed=3, probability=0.5, independence=8)
    b = CenterSampler(seed=3, probability=0.5, independence=8)
    assert [a.is_center(v) for v in range(200)] == [b.is_center(v) for v in range(200)]


def test_center_sampler_clamps_probability():
    sampler = CenterSampler(seed=3, probability=2.0, independence=8)
    assert sampler.probability == 1.0
    assert all(sampler.is_center(v) for v in range(50))
    empty = CenterSampler(seed=3, probability=-1.0, independence=8)
    assert not any(empty.is_center(v) for v in range(50))


def test_centers_among_and_expected_count():
    sampler = CenterSampler(seed=3, probability=0.5, independence=8)
    chosen = sampler.centers_among(range(100))
    assert set(chosen) <= set(range(100))
    assert sampler.expected_count(100) == pytest.approx(50.0)


def test_hitting_probability_formula():
    p = hitting_probability(threshold=100, num_vertices=1000, multiplier=2.0)
    assert 0 < p < 1
    assert hitting_probability(0, 1000) == 1.0
    assert hitting_probability(1, 4) == 1.0  # clamped at 1


def test_hitting_set_property_empirically():
    """(HII): a vertex with Δ neighbors sees Θ(log n) centers among them."""
    n, delta = 2000, 100
    p = hitting_probability(delta, n, multiplier=2.0)
    sampler = CenterSampler(seed=5, probability=p, independence=16)
    misses = 0
    for block in range(100):
        neighborhood = range(block * delta, (block + 1) * delta)
        if not any(sampler.is_center(v) for v in neighborhood):
            misses += 1
    assert misses == 0


def test_rank_assigner_deterministic_and_bounded():
    ranks = RankAssigner(seed=1, num_blocks=3, bits_per_block=4, independence=8)
    values = [ranks.rank(v) for v in range(100)]
    assert values == [ranks.rank(v) for v in range(100)]
    assert all(0 <= r < 2 ** (3 * 4) for r in values)
    fractions = [ranks.rank_fraction(v) for v in range(100)]
    assert all(0.0 <= f < 1.0 for f in fractions)


def test_rank_assigner_blocks_compose_rank():
    ranks = RankAssigner(seed=1, num_blocks=2, bits_per_block=5, independence=8)
    for v in range(20):
        expected = (ranks.block(v, 0) << 5) | ranks.block(v, 1)
        assert ranks.rank(v) == expected
    with pytest.raises(ParameterError):
        ranks.block(0, 5)


def test_rank_assigner_for_graph_uses_k_blocks():
    ranks = RankAssigner.for_graph(seed=2, num_vertices=1000, stretch_parameter=4, independence=8)
    assert ranks.num_blocks == 4
    assert ranks.bits_per_block >= 1


def test_rank_assigner_mostly_distinct():
    ranks = RankAssigner(seed=9, num_blocks=4, bits_per_block=8, independence=12)
    values = {ranks.rank(v) for v in range(500)}
    assert len(values) > 480  # collisions are rare with 32-bit ranks


def test_rank_assigner_validation():
    with pytest.raises(ParameterError):
        RankAssigner(seed=1, num_blocks=0, bits_per_block=2, independence=4)
    with pytest.raises(ParameterError):
        RankAssigner(seed=1, num_blocks=2, bits_per_block=0, independence=4)


def test_index_sampler_ranges_and_determinism():
    sampler = IndexSampler(seed=4, count=10, independence=8)
    indices = sampler.indices(vertex=7, upper=20)
    assert len(indices) == 10
    assert all(0 <= i < 20 for i in indices)
    assert indices == sampler.indices(vertex=7, upper=20)
    assert sampler.indices(vertex=7, upper=0) == []


def test_index_sampler_distinct_sorted():
    sampler = IndexSampler(seed=4, count=10, independence=8)
    distinct = sampler.distinct_indices(vertex=7, upper=20)
    assert distinct == sorted(set(distinct))


def test_index_sampler_validation():
    with pytest.raises(ParameterError):
        IndexSampler(seed=1, count=0, independence=4)


def test_log_count_bounds():
    assert log_count(1) == 2
    assert log_count(1000) >= 2
    assert log_count(1000, multiplier=3.0) > log_count(1000, multiplier=1.0)
