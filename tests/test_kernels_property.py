"""Property-based scalar-vs-vectorized kernel equivalence (hypothesis).

The hand-picked fixtures in ``test_kernels.py`` pin the equivalence on a few
known graph shapes; this module hammers the same contract on *arbitrary*
small graphs and seeds, including a randomly chosen mutation epoch: for every
generated instance, the numpy kernels must produce the same spanner edges,
the same per-query probe totals and the same per-kind probe counts as the
scalar reference path, before and after mutations.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.registry import create
from repro.graphs import Graph


@pytest.fixture(autouse=True)
def force_kernel_paths(monkeypatch):
    """Drop the minimum-workload floors so hypothesis-sized graphs vectorize."""
    from repro.kernels import bfs as kernel_bfs
    from repro.kernels import spanner5 as kernel_spanner5
    from repro.kernels.engine import NumpyKernel

    monkeypatch.setattr(kernel_bfs, "_MIN_BATCH_WORK", 0)
    monkeypatch.setattr(kernel_spanner5, "_MIN_GRID", 0)
    monkeypatch.setattr(NumpyKernel, "min_explore_work", 0)


@st.composite
def graph_and_mutations(draw, max_vertices=20):
    """A small random graph plus a random batch of remove/add mutations."""
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=2, max_size=3 * n, unique=True)
    )
    removals = draw(
        st.lists(st.sampled_from(edges), min_size=0, max_size=3, unique=True)
    )
    additions = draw(
        st.lists(st.sampled_from(possible), min_size=0, max_size=3, unique=True)
    )
    mutations = [("remove", u, v) for (u, v) in removals]
    mutations += [("add", u, v) for (u, v) in additions if (u, v) not in edges]
    return list(range(n)), edges, mutations


relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.function_scoped_fixture,
    ],
)


def _run(algorithm, vertices, edges, mutations, seed, kernel):
    graph = Graph.from_edges(edges, vertices=vertices).to_backend("csr")
    lca = create(algorithm, graph, seed=seed).set_kernel(kernel)
    fingerprints = []
    for batch in ([], mutations):
        lca.apply_mutations(batch)
        materialized = lca.materialize(mode="batched")
        counter = lca.probe_counter.snapshot()
        fingerprints.append(
            (
                frozenset(materialized.edges),
                tuple(materialized.probe_stats.query_totals),
                (counter.degree, counter.neighbor, counter.adjacency),
            )
        )
    return fingerprints


@pytest.mark.parametrize("algorithm", ["spanner3", "spanner5", "spannerk"])
@relaxed
@given(
    instance=graph_and_mutations(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_kernels_match_scalar_on_random_graphs_and_epochs(
    algorithm, instance, seed
):
    vertices, edges, mutations = instance
    scalar = _run(algorithm, vertices, edges, mutations, seed, "python")
    vectorized = _run(algorithm, vertices, edges, mutations, seed, "numpy")
    assert scalar == vectorized
