"""Fault plane unit tests: plans, the injector, and the retry machinery.

The service-level behaviors (failover equivalence, write barriers, chaos
determinism) live in ``test_service_faults.py``; these tests pin the
building blocks in isolation — seeded plan generation, event validation
and round-trips, injector state transitions at cycle boundaries, and the
capped-exponential retry helper shared with the exec plane.
"""

from __future__ import annotations

import pytest

from repro.exec import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    TransientTaskError,
    call_with_retries,
)
from repro.faults import (
    DOWN_KINDS,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    TransientFaultError,
)


# --------------------------------------------------------------------------- #
# Plans
# --------------------------------------------------------------------------- #
def test_event_validation_rejects_nonsense():
    with pytest.raises(FaultPlanError):
        FaultEvent(at=0, kind="meteor", shard=0)
    with pytest.raises(FaultPlanError):
        FaultEvent(at=-1, kind="crash", shard=0)
    with pytest.raises(FaultPlanError):
        FaultEvent(at=0, kind="crash", shard=-1)
    # Down-kinds must recover: an infinite outage would deadlock the
    # engine's write barrier.
    for kind in DOWN_KINDS:
        with pytest.raises(FaultPlanError, match="finite duration"):
            FaultEvent(at=0, kind=kind, shard=0, duration=0)
    with pytest.raises(FaultPlanError):
        FaultEvent(at=0, kind="slow", shard=0, delay=0)
    with pytest.raises(FaultPlanError):
        FaultEvent(at=0, kind="flaky", shard=0, count=0)


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_event_dict_roundtrip(kind):
    event = FaultEvent(at=3, kind=kind, shard=1, replica=1, duration=2, delay=5, count=2)
    assert FaultEvent.from_dict(event.as_dict()) == FaultEvent.from_dict(
        event.as_dict()
    )


def test_event_from_dict_rejects_unknown_and_missing_keys():
    with pytest.raises(FaultPlanError, match="unknown fault event key"):
        FaultEvent.from_dict({"at": 0, "kind": "crash", "shard": 0, "blast": 9})
    with pytest.raises(FaultPlanError, match="missing required key"):
        FaultEvent.from_dict({"at": 0, "kind": "crash"})


def test_plan_orders_events_by_cycle():
    late = FaultEvent(at=9, kind="crash", shard=0)
    early = FaultEvent(at=1, kind="flaky", shard=1)
    plan = FaultPlan(events=(late, early))
    assert [event.at for event in plan] == [1, 9]
    assert plan.max_shard() == 1
    assert not plan.is_empty and len(plan) == 2


def test_generate_is_deterministic_per_seed():
    knobs = dict(num_shards=4, replication=2, horizon=32, crashes=3, slow=2, flaky=2)
    assert FaultPlan.generate(7, **knobs) == FaultPlan.generate(7, **knobs)
    assert FaultPlan.generate(7, **knobs) != FaultPlan.generate(8, **knobs)


def test_generate_draws_kinds_independently():
    # The RNG stream is consumed in a fixed kind order, so turning a later
    # knob on never reshuffles an earlier kind's draws.
    base = FaultPlan.generate(5, num_shards=4, horizon=32, crashes=3)
    extended = FaultPlan.generate(5, num_shards=4, horizon=32, crashes=3, flaky=4)
    crashes = [e for e in extended if e.kind == "crash"]
    assert crashes == [e for e in base if e.kind == "crash"]


def test_plan_file_roundtrip(tmp_path):
    plan = FaultPlan.generate(3, num_shards=2, replication=2, crashes=2, slow=1)
    path = tmp_path / "plan.json"
    plan.to_file(path)
    assert FaultPlan.from_file(path) == plan


def test_plan_from_file_failures_are_plan_errors(tmp_path):
    with pytest.raises(FaultPlanError, match="cannot read"):
        FaultPlan.from_file(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text('{"events": [', encoding="utf-8")
    with pytest.raises(FaultPlanError, match="malformed fault plan JSON"):
        FaultPlan.from_file(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"events": [], "surprise": 1}', encoding="utf-8")
    with pytest.raises(FaultPlanError, match="unknown fault plan key"):
        FaultPlan.from_file(wrong)


# --------------------------------------------------------------------------- #
# Injector
# --------------------------------------------------------------------------- #
def test_crash_downs_one_replica_until_recovery():
    plan = FaultPlan(events=(FaultEvent(at=2, kind="crash", shard=0, duration=3),))
    injector = FaultInjector(plan, num_shards=2, replication=2)
    assert injector.begin_cycle(0) == []
    assert injector.is_up(0, 0)
    injector.begin_cycle(2)
    assert not injector.is_up(0, 0)
    assert injector.is_up(0, 1)
    assert injector.live_replicas(0) == [1]
    assert injector.live_replicas(1) == [0, 1]
    injector.begin_cycle(4)
    assert not injector.is_up(0, 0)  # duration 3: down on cycles 2..4
    assert injector.begin_cycle(5) == [(0, 0)]
    assert injector.is_up(0, 0)
    assert injector.stats.crashes == 1 and injector.stats.recoveries == 1


def test_shard_loss_downs_every_replica():
    plan = FaultPlan(events=(FaultEvent(at=1, kind="shard_loss", shard=1, duration=2),))
    injector = FaultInjector(plan, num_shards=2, replication=3)
    injector.begin_cycle(1)
    assert injector.live_replicas(1) == []
    assert injector.anything_down()
    assert sorted(injector.begin_cycle(3)) == [(1, 0), (1, 1), (1, 2)]
    assert injector.live_replicas(1) == [0, 1, 2]


def test_recovery_and_recrash_on_the_same_cycle():
    # Expiry runs first, then activation: the replica appears recovered
    # (the engine re-syncs it) but ends the boundary down again.
    plan = FaultPlan(
        events=(
            FaultEvent(at=0, kind="crash", shard=0, duration=2),
            FaultEvent(at=2, kind="crash", shard=0, duration=2),
        )
    )
    injector = FaultInjector(plan, num_shards=1, replication=2)
    injector.begin_cycle(0)
    assert injector.begin_cycle(2) == [(0, 0)]
    assert not injector.is_up(0, 0)


def test_slow_and_flaky_budgets_are_submission_scoped():
    plan = FaultPlan(
        events=(
            FaultEvent(at=0, kind="slow", shard=0, delay=7, count=2),
            FaultEvent(at=0, kind="flaky", shard=0, count=1),
        )
    )
    injector = FaultInjector(plan, num_shards=1)
    injector.begin_cycle(0)
    assert injector.take_flake(0, 0) is True
    assert injector.take_flake(0, 0) is False  # budget spent
    assert injector.take_delay(0, 0) == 7
    assert injector.take_delay(0, 0) == 7
    assert injector.take_delay(0, 0) == 0
    assert injector.stats.transient_errors == 1
    assert injector.stats.slow_batches == 2


def test_next_transition_covers_recoveries_and_pending_events():
    plan = FaultPlan(
        events=(
            FaultEvent(at=1, kind="shard_loss", shard=0, duration=4),
            FaultEvent(at=9, kind="crash", shard=0, duration=1),
        )
    )
    injector = FaultInjector(plan, num_shards=1, replication=1)
    injector.begin_cycle(1)
    assert injector.next_transition_after(1) == 5  # the recovery deadline
    injector.begin_cycle(5)
    assert injector.next_transition_after(5) == 9  # the pending crash
    injector.begin_cycle(9)
    assert injector.begin_cycle(10) == [(0, 0)]
    assert injector.next_transition_after(10) is None


def test_injector_rejects_plans_beyond_the_pool():
    plan = FaultPlan(events=(FaultEvent(at=0, kind="crash", shard=5),))
    with pytest.raises(FaultPlanError, match="targets shard 5"):
        FaultInjector(plan, num_shards=2)


def test_injected_fault_error_is_a_transient_task_error():
    assert issubclass(TransientFaultError, TransientTaskError)


# --------------------------------------------------------------------------- #
# Retry policy / helper (exec plane)
# --------------------------------------------------------------------------- #
def test_backoff_is_capped_exponential():
    policy = RetryPolicy(max_retries=6, backoff_base=1, backoff_cap=8)
    assert [policy.backoff_ticks(a) for a in range(6)] == [1, 2, 4, 8, 8, 8]
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=2, backoff_cap=1)


def test_call_with_retries_recovers_from_transient_failures():
    attempts = []
    reads = []

    def flaky_twice():
        attempts.append(True)
        if len(attempts) < 3:
            raise TransientTaskError("hiccup")
        return "done"

    result = call_with_retries(
        flaky_twice, policy=DEFAULT_RETRY_POLICY, clock=lambda: reads.append(True)
    )
    assert result == "done"
    assert len(attempts) == 3
    # Backoff before each retry: 1 tick, then 2 ticks.
    assert len(reads) == 3


def test_call_with_retries_gives_up_after_the_budget():
    def always_failing():
        raise TransientTaskError("permanent, actually")

    with pytest.raises(TransientTaskError):
        call_with_retries(always_failing, policy=RetryPolicy(max_retries=2))


def test_call_with_retries_does_not_swallow_real_errors():
    def broken():
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        call_with_retries(broken)
