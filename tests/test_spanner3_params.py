"""Tests for the 3-spanner parameter derivation and edge classification."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ParameterError
from repro.spanner3 import ThreeSpannerParams


def test_thresholds_follow_paper_exponents():
    params = ThreeSpannerParams.for_graph(10_000)
    assert params.low_threshold == math.ceil(math.sqrt(10_000))
    assert params.super_threshold == math.ceil(10_000 ** 0.75)
    assert params.low_threshold <= params.super_threshold


def test_probabilities_scale_like_log_over_threshold():
    params = ThreeSpannerParams.for_graph(10_000, hitting_constant=2.0)
    expected_high = 2.0 * math.log(10_000) / params.low_threshold
    assert params.high_center_probability == pytest.approx(expected_high)
    assert params.super_center_probability < params.high_center_probability


def test_probabilities_clamped_for_small_graphs():
    params = ThreeSpannerParams.for_graph(10)
    assert params.high_center_probability <= 1.0


def test_degree_classification():
    params = ThreeSpannerParams.for_graph(10_000)
    assert params.is_low_degree(params.low_threshold)
    assert not params.is_low_degree(params.low_threshold + 1)
    assert params.is_high_degree(params.low_threshold + 1)
    assert params.is_high_degree(params.super_threshold)
    assert not params.is_high_degree(params.super_threshold + 1)
    assert params.is_super_degree(params.super_threshold + 1)


def test_edge_classification_uses_minimum_degree():
    params = ThreeSpannerParams.for_graph(10_000)
    low, high, super_ = (
        params.low_threshold,
        params.super_threshold,
        params.super_threshold + 10,
    )
    assert params.classify_edge(low, super_) == "low"
    assert params.classify_edge(low + 1, super_) == "high"
    assert params.classify_edge(super_ + 1, super_ + 5) == "super"


def test_theoretical_targets():
    params = ThreeSpannerParams.for_graph(10_000)
    assert params.expected_edge_bound() == pytest.approx(10_000 ** 1.5)
    assert params.expected_probe_bound() == pytest.approx(10_000 ** 0.75)


def test_rejects_empty_graph():
    with pytest.raises(ParameterError):
        ThreeSpannerParams.for_graph(0)


def test_independence_defaults_to_log_n():
    params = ThreeSpannerParams.for_graph(1 << 16)
    assert params.independence >= 16
    explicit = ThreeSpannerParams.for_graph(1 << 16, independence=5)
    assert explicit.independence == 5
