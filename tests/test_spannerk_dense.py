"""Unit tests for the dense-side components (H^I_dense, H^B_dense rules)."""

from __future__ import annotations


from repro.core.seed import Seed
from repro.graphs import Graph, cycle_graph, grid_graph, path_graph
from repro.spannerk import (
    KSquaredParams,
    KSquaredRandomness,
    KSquaredSpannerLCA,
)
from repro.spannerk.dense import DenseConnectorComponent, VoronoiTreeComponent


def make_params(n, *, k=2, budget=8, center_p=1.0, mark_p=1.0, quota=100):
    return KSquaredParams(
        num_vertices=n,
        stretch_parameter=k,
        exploration_budget=budget,
        center_probability=center_p,
        mark_probability=mark_p,
        rank_quota=quota,
        independence=10,
    )


def build_components(graph, params, seed=5):
    randomness = KSquaredRandomness(Seed.of(seed), params)
    tree = VoronoiTreeComponent(graph, seed, params=params, randomness=randomness)
    connector = DenseConnectorComponent(
        graph, seed, params=params, randomness=randomness
    )
    return tree, connector, randomness


# --------------------------------------------------------------------------- #
# H^I_dense: Voronoi-tree edges
# --------------------------------------------------------------------------- #
def test_tree_component_in_all_centers_regime_keeps_nothing():
    """Singleton cells have empty Voronoi trees: no tree edges at all."""
    graph = grid_graph(4, 4)
    params = make_params(graph.num_vertices, center_p=1.0)
    tree, _, _ = build_components(graph, params)
    assert not any(tree.query(u, v) for (u, v) in graph.edges())


def test_tree_component_keeps_paths_to_forced_center():
    graph = path_graph(7)
    params = make_params(7, k=3, center_p=0.0)
    tree, _, randomness = build_components(graph, params)
    randomness.centers.is_center = lambda v: v == 0  # type: ignore[assignment]
    # dense vertices: 0, 1, 2, 3 — tree edges are exactly the path edges between them
    assert tree.query(0, 1) and tree.query(1, 2) and tree.query(2, 3)
    assert not tree.query(4, 5)
    assert tree.stretch_bound() == 1


# --------------------------------------------------------------------------- #
# H^B_dense rules in the all-centers regime (singleton cells and clusters)
# --------------------------------------------------------------------------- #
def test_connector_requires_both_endpoints_dense():
    graph = cycle_graph(12)
    params = make_params(12, center_p=0.0)  # nothing is dense
    _, connector, _ = build_components(graph, params)
    assert not any(connector.query(u, v) for (u, v) in graph.edges())


def test_connector_skips_intra_cell_edges():
    graph = path_graph(6)
    params = make_params(6, k=3, center_p=0.0)
    _, connector, randomness = build_components(graph, params)
    randomness.centers.is_center = lambda v: v == 0  # type: ignore[assignment]
    # vertices 0..3 share the cell of center 0: the connector never keeps
    # intra-cell edges (H^I_dense is responsible for them)
    assert not connector.query(1, 2)
    assert not connector.query(2, 3)


def test_connector_rule1_marked_cluster_keeps_minimum_edge():
    """All cells marked, all clusters singletons: rule (1) keeps every edge
    between dense vertices (the minimum-ID edge between two singletons is the
    edge itself)."""
    graph = cycle_graph(10)
    params = make_params(10, center_p=1.0, mark_p=1.0)
    _, connector, _ = build_components(graph, params)
    for (u, v) in graph.edges():
        assert connector.query(u, v)


def test_connector_rule2_without_marked_cells():
    """No cell marked: rule (2) applies (clusters with no marked neighbor
    connect to every adjacent cell), again keeping every dense-dense edge in
    the singleton regime."""
    graph = cycle_graph(10)
    params = make_params(10, center_p=1.0, mark_p=0.0, quota=0)
    _, connector, _ = build_components(graph, params)
    for (u, v) in graph.edges():
        assert connector.query(u, v)


def test_connector_rule3_respects_rank_quota():
    """With a zero rank quota only rules (1) and (2) can keep edges: every
    kept edge either touches a marked cell (rule 1) or one of its endpoint
    clusters has no marked neighboring cell at all (rule 2)."""
    graph = cycle_graph(10)
    params_no_quota = make_params(10, center_p=1.0, mark_p=0.3, quota=0)
    _, connector, randomness = build_components(graph, params_no_quota)
    kept = {edge for edge in graph.edges() if connector.query(*edge)}

    def no_marked_neighbor_cell(vertex):
        return all(
            not randomness.is_marked_cell(w) for w in graph.neighbors(vertex)
        )

    for (u, v) in kept:
        rule1_possible = randomness.is_marked_cell(u) or randomness.is_marked_cell(v)
        rule2_possible = no_marked_neighbor_cell(u) or no_marked_neighbor_cell(v)
        assert rule1_possible or rule2_possible

    params_big_quota = make_params(10, center_p=1.0, mark_p=0.3, quota=100)
    _, connector_big, _ = build_components(graph, params_big_quota)
    kept_big = {edge for edge in graph.edges() if connector_big.query(*edge)}
    assert kept <= kept_big  # a larger quota only adds edges


def test_connector_direction_symmetry():
    graph = grid_graph(4, 5)
    params = make_params(graph.num_vertices, center_p=0.6, mark_p=0.4, quota=3)
    _, connector, _ = build_components(graph, params)
    for (u, v) in list(graph.edges())[:25]:
        assert connector.query(u, v) == connector.query(v, u)


def test_connector_stretch_bound_is_probabilistic():
    graph = cycle_graph(8)
    params = make_params(8)
    _, connector, _ = build_components(graph, params)
    assert connector.stretch_bound() is None


# --------------------------------------------------------------------------- #
# Union behaviour
# --------------------------------------------------------------------------- #
def test_components_union_equals_full_lca():
    graph = grid_graph(5, 5)
    params = make_params(graph.num_vertices, center_p=0.5, mark_p=0.3, quota=5)
    lca = KSquaredSpannerLCA(graph, seed=5, params=params, shared_cache=True)
    for (u, v) in list(graph.edges())[:30]:
        expected = any(
            component._decide(lca._oracle, u, v) for component in lca.components
        )
        assert lca.query(u, v) == expected


def test_isolated_vertex_handled():
    graph = Graph({0: [1], 1: [0], 2: []})
    params = make_params(3, center_p=0.5)
    lca = KSquaredSpannerLCA(graph, seed=5, params=params)
    assert isinstance(lca.query(0, 1), bool)
