"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import GENERATORS, build_parser, main
from repro.graphs import gnp_graph, read_edge_list, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(gnp_graph(60, 0.2, seed=3), path)
    return str(path)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "spanner3" in out and "spanner5" in out and "spannerk" in out


def test_generate_command_writes_readable_graph(tmp_path, capsys):
    out_path = tmp_path / "generated.txt"
    code = main(
        ["generate", "--family", "gnp", "--n", "50", "--density", "0.2", "--out", str(out_path)]
    )
    assert code == 0
    graph = read_edge_list(out_path)
    assert graph.num_vertices == 50
    assert "wrote" in capsys.readouterr().out


@pytest.mark.parametrize("family", sorted(GENERATORS))
def test_every_generator_family_is_buildable(family, tmp_path):
    out_path = tmp_path / f"{family}.txt"
    code = main(
        ["generate", "--family", family, "--n", "40", "--density", "0.1",
         "--out", str(out_path), "--seed", "2"]
    )
    assert code == 0
    assert read_edge_list(out_path).num_vertices >= 16


def test_query_command_with_explicit_edges(graph_file, capsys):
    graph = read_edge_list(graph_file)
    u, v = next(iter(graph.edges()))
    code = main(
        ["query", "--graph", graph_file, "--algorithm", "spanner3",
         "--edge", f"{u},{v}", "--seed", "4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert f"({u}, {v})" in out
    assert "probes" in out


def test_query_command_default_count(graph_file, capsys):
    assert main(["query", "--graph", graph_file, "--count", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("(") >= 3


def test_query_rejects_malformed_edge(graph_file):
    with pytest.raises(SystemExit):
        main(["query", "--graph", graph_file, "--edge", "nonsense"])


def test_evaluate_command(graph_file, capsys):
    code = main(
        ["evaluate", "--graph", graph_file, "--algorithm", "spanner3", "--seed", "4"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "stretch" in out
    assert "spanner3" in out


def test_evaluate_generated_graph(capsys):
    code = main(
        ["evaluate", "--generate", "gnp", "--n", "60", "--density", "0.2",
         "--algorithm", "spanner3", "--stretch-sample", "30"]
    )
    assert code == 0


def test_materialize_command_reports_and_exports(graph_file, capsys, tmp_path):
    out_path = tmp_path / "spanner.txt"
    code = main(
        ["materialize", "--graph", graph_file, "--algorithm", "spanner3",
         "--seed", "4", "--out", str(out_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "materialization" in out
    spanner = read_edge_list(out_path)
    host = read_edge_list(graph_file)
    assert spanner.num_vertices == host.num_vertices
    assert 0 < spanner.num_edges <= host.num_edges


def test_materialize_executor_output_matches_in_process(graph_file, capsys):
    """--executor/--workers change wall-clock only; the report is identical
    (modulo the executor column) across backends and worker counts."""
    def run(extra):
        assert main(
            ["materialize", "--graph", graph_file, "--algorithm", "spanner3",
             "--seed", "4", *extra]
        ) == 0
        rows = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("spanner3")
        ]
        # Drop the executor column: split on '|', remove the 5th field.
        return [
            "|".join(field for i, field in enumerate(line.split("|")) if i != 4)
            for line in rows
        ]

    reference = run([])
    for extra in (
        ["--executor", "serial"],
        ["--executor", "thread", "--workers", "2"],
        ["--executor", "process", "--workers", "2"],
    ):
        assert run(extra) == reference, extra


def test_materialize_rejects_executor_with_non_batched_mode(graph_file):
    with pytest.raises(SystemExit, match="batched engine"):
        main(
            ["materialize", "--graph", graph_file, "--query-mode", "cold",
             "--executor", "process"]
        )


def test_serve_bench_thread_executor_flags(graph_file, capsys):
    code = main(
        ["serve-bench", "--graph", graph_file, "--requests", "120",
         "--shards", "3", "--executor", "thread", "--workers", "2",
         "--max-inflight", "2", "--seed", "4"]
    )
    assert code == 0
    assert "Service run" in capsys.readouterr().out


def test_sweep_command(capsys):
    code = main(
        ["sweep", "--algorithm", "spanner3", "--sizes", "40,80", "--queries", "15"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Fitted exponents" in out


def test_lowerbound_command(capsys):
    code = main(["lowerbound", "--n", "26", "--degree", "3", "--budget", "5", "--trials", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Theorem 1.3" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_family_rejected(tmp_path):
    parser = build_parser()
    args = parser.parse_args(
        ["generate", "--out", str(tmp_path / "x.txt"), "--n", "20"]
    )
    args.generate = "martian"
    with pytest.raises(SystemExit):
        from repro.cli import cmd_generate

        cmd_generate(args)


def test_query_mode_and_backend_flags(graph_file, capsys):
    """--backend / --query-mode select the fast path without changing output."""
    outputs = {}
    for backend in ("dict", "csr"):
        for mode in ("cold", "cached", "batched"):
            code = main(
                ["evaluate", "--graph", graph_file, "--algorithm", "spanner3",
                 "--seed", "4", "--backend", backend, "--query-mode", mode]
            )
            assert code == 0
            outputs[(backend, mode)] = capsys.readouterr().out
    reference = outputs[("dict", "cold")]
    assert "spanner3" in reference
    for key, out in outputs.items():
        assert out == reference, key


def test_query_command_accepts_query_mode(graph_file, capsys):
    graph = read_edge_list(graph_file)
    u, v = next(iter(graph.edges()))
    cold = main(["query", "--graph", graph_file, "--edge", f"{u},{v}",
                 "--query-mode", "cold"])
    cold_out = capsys.readouterr().out
    cached = main(["query", "--graph", graph_file, "--edge", f"{u},{v}",
                   "--query-mode", "cached", "--backend", "csr"])
    cached_out = capsys.readouterr().out
    assert cold == cached == 0
    # The title line names the backend class; the query rows must agree.
    assert cold_out.splitlines()[1:] == cached_out.splitlines()[1:]


def test_backend_flag_rejects_unknown_value(graph_file):
    with pytest.raises(SystemExit):
        main(["evaluate", "--graph", graph_file, "--backend", "quantum"])


def test_serve_bench_command_runs_a_workload(graph_file, capsys, tmp_path):
    report_path = tmp_path / "service.json"
    code = main(
        ["serve-bench", "--graph", graph_file, "--algorithm", "spanner3",
         "--workload", "zipf", "--requests", "200", "--shards", "3",
         "--batch-size", "8", "--seed", "4", "--json", str(report_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Service run" in out
    assert "Per-shard telemetry" in out
    import json

    payload = json.loads(report_path.read_text())
    assert payload["served"] == 200
    assert payload["num_shards"] == 3
    assert len(payload["shards"]) == 3


def test_serve_bench_replays_traces(graph_file, capsys, tmp_path):
    from repro.service import write_trace

    graph = read_edge_list(graph_file)
    trace_path = tmp_path / "trace.jsonl"
    write_trace(trace_path, list(graph.edges())[:25])
    code = main(
        ["serve-bench", "--graph", graph_file, "--workload", "trace",
         "--trace", str(trace_path), "--shards", "2", "--no-coalesce"]
    )
    assert code == 0
    assert "trace" in capsys.readouterr().out


def test_serve_bench_trace_workload_requires_trace_flag(graph_file):
    with pytest.raises(SystemExit):
        main(["serve-bench", "--graph", graph_file, "--workload", "trace"])


def test_serve_bench_replays_whole_trace_when_requests_unset(graph_file, capsys, tmp_path):
    """A trace longer than the generative default (2000) must replay fully."""
    from repro.service import write_trace

    graph = read_edge_list(graph_file)
    edges = list(graph.edges())
    stream = [edges[i % len(edges)] for i in range(2100)]
    trace_path = tmp_path / "long_trace.jsonl"
    write_trace(trace_path, stream)
    code = main(
        ["serve-bench", "--graph", graph_file, "--workload", "trace",
         "--trace", str(trace_path), "--shards", "2"]
    )
    assert code == 0
    assert "2100" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# Argument validation (satellite: clean errors instead of deep tracebacks)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("value", ["0", "-2", "nope"])
@pytest.mark.parametrize(
    "argv",
    [
        ["materialize", "--executor", "process", "--workers"],
        ["evaluate", "--executor", "thread", "--workers"],
        ["serve-bench", "--workers"],
        ["serve-bench", "--max-inflight"],
    ],
)
def test_bad_worker_counts_fail_with_a_clean_argparse_error(
    graph_file, capsys, argv, value
):
    with pytest.raises(SystemExit) as excinfo:
        main([argv[0], "--graph", graph_file, *argv[1:], value])
    assert excinfo.value.code == 2  # argparse usage error, not a traceback
    err = capsys.readouterr().err
    assert "must be >= 1" in err or "not an integer" in err


def test_good_worker_counts_still_parse(graph_file):
    args = build_parser().parse_args(
        ["serve-bench", "--graph", graph_file, "--workers", "3",
         "--max-inflight", "2"]
    )
    assert args.workers == 3 and args.max_inflight == 2


# --------------------------------------------------------------------------- #
# Mutation plane: the mutate subcommand and the churn workload
# --------------------------------------------------------------------------- #
def test_mutate_command_applies_ops_and_writes_result(graph_file, capsys, tmp_path):
    graph = read_edge_list(graph_file)
    edges = list(graph.edges())
    (ru, rv) = edges[0]
    non_edge = None
    for a in graph.vertices():
        for b in graph.vertices():
            if a != b and not graph.has_edge(a, b):
                non_edge = (a, b)
                break
        if non_edge:
            break
    out_path = tmp_path / "mutated.txt"
    code = main(
        ["mutate", "--graph", graph_file,
         "--add", f"{non_edge[0]},{non_edge[1]}",
         "--remove", f"{ru},{rv}", "--out", str(out_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Graph mutation" in out and "wrote mutated graph" in out
    mutated = read_edge_list(out_path)
    assert mutated.num_edges == graph.num_edges
    assert mutated.has_edge(*non_edge)
    assert not mutated.has_edge(ru, rv)


def test_mutate_command_replays_trace_ops(graph_file, capsys, tmp_path):
    from repro.service import TraceOp, write_trace

    graph = read_edge_list(graph_file)
    (ru, rv) = next(iter(graph.edges()))
    trace_path = tmp_path / "ops.jsonl"
    write_trace(trace_path, [(1, 2), TraceOp("remove", ru, rv)])  # query ignored
    out_path = tmp_path / "mutated.txt"
    code = main(
        ["mutate", "--graph", graph_file, "--ops", str(trace_path),
         "--out", str(out_path)]
    )
    assert code == 0
    assert not read_edge_list(out_path).has_edge(ru, rv)


def test_mutate_command_rejects_invalid_ops_cleanly(graph_file, capsys):
    with pytest.raises(SystemExit, match="mutate:"):
        main(["mutate", "--graph", graph_file, "--add", "0,0"])
    with pytest.raises(SystemExit, match="at least one"):
        main(["mutate", "--graph", graph_file])


def test_serve_bench_runs_the_churn_workload(graph_file, capsys, tmp_path):
    report_path = tmp_path / "churn.json"
    code = main(
        ["serve-bench", "--graph", graph_file, "--workload", "churn",
         "--requests", "200", "--write-ratio", "0.25", "--shards", "2",
         "--batch-size", "8", "--seed", "4", "--json", str(report_path)]
    )
    assert code == 0
    assert "churn" in capsys.readouterr().out
    import json

    payload = json.loads(report_path.read_text())
    assert payload["mutations"] > 0
    assert (
        payload["offered"]
        == payload["admitted"] + payload["rejected"] + payload["mutations"]
    )


def _write_report_spec(tmp_path):
    spec_path = tmp_path / "suite.toml"
    spec_path.write_text(
        "\n".join(
            [
                "[[scenario]]",
                'name = "cli-report"',
                'algorithm = "spanner3"',
                "seed = 7",
                "[scenario.graph]",
                'family = "gnp"',
                "sizes = [40]",
                "density = 0.2",
                "seed = 3",
                "[scenario.workload]",
                'kind = "uniform"',
                "requests = 30",
                "seed = 1",
                "[scenario.service]",
                "shards = 2",
                "batch_size = 8",
                "",
            ]
        ),
        encoding="utf-8",
    )
    return spec_path


def test_report_run_and_render_commands(tmp_path, capsys):
    spec_path = _write_report_spec(tmp_path)
    results = tmp_path / "results"
    assert main(["report", "run", str(spec_path), "--results", str(results)]) == 0
    assert "cli-report" in capsys.readouterr().out
    assert (results / "cli-report.json").exists()

    out_path = tmp_path / "report.md"
    code = main(
        ["report", "render", "--results", str(results), "--out", str(out_path)]
    )
    assert code == 0
    markdown = out_path.read_text(encoding="utf-8")
    assert "## Probe complexity vs n" in markdown
    assert "## Service latency percentiles (virtual time)" in markdown
    assert "cli-report" in markdown

    # Without --out the report is printed.
    assert main(["report", "render", "--results", str(results)]) == 0
    assert "# Scenario report" in capsys.readouterr().out


def test_report_run_smoke_flag_marks_results(tmp_path, capsys):
    spec_path = _write_report_spec(tmp_path)
    results = tmp_path / "results"
    code = main(
        ["report", "run", str(spec_path), "--results", str(results), "--smoke"]
    )
    assert code == 0
    import json

    document = json.loads((results / "cli-report.json").read_text())
    assert document["result"]["smoke"] is True


def test_report_commands_fail_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="report run:"):
        main(["report", "run", str(tmp_path / "missing.toml")])
    with pytest.raises(SystemExit, match="no results"):
        main(["report", "render", "--results", str(tmp_path / "empty")])


# --------------------------------------------------------------------------- #
# Fault plane (serve-bench flags, chaos specs, clean error paths)
# --------------------------------------------------------------------------- #
def test_serve_bench_with_fault_flags(graph_file, capsys, tmp_path):
    report_path = tmp_path / "faults.json"
    code = main(
        ["serve-bench", "--graph", graph_file, "--requests", "300",
         "--shards", "2", "--batch-size", "8", "--replication", "2",
         "--crashes", "2", "--flaky", "1", "--fault-seed", "9",
         "--fault-horizon", "8", "--json", str(report_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Fault plane" in out and "availability" in out
    import json

    payload = json.loads(report_path.read_text())
    assert payload["faults"]["crashes"] > 0
    assert payload["replication"] == 2
    assert 0.0 <= payload["availability"] <= 1.0


def test_serve_bench_replays_a_fault_plan_file(graph_file, capsys, tmp_path):
    from repro.faults import FaultEvent, FaultPlan

    plan_path = tmp_path / "plan.json"
    FaultPlan(
        events=(FaultEvent(at=1, kind="crash", shard=0, duration=2),)
    ).to_file(plan_path)
    code = main(
        ["serve-bench", "--graph", graph_file, "--requests", "200",
         "--shards", "2", "--replication", "2", "--fault-plan", str(plan_path)]
    )
    assert code == 0
    assert "Fault plane" in capsys.readouterr().out


def test_serve_bench_rejects_a_malformed_trace_cleanly(graph_file, tmp_path):
    trace_path = tmp_path / "truncated.jsonl"
    trace_path.write_text('{"op": "query", "u": 1', encoding="utf-8")
    with pytest.raises(SystemExit, match="malformed trace record"):
        main(["serve-bench", "--graph", graph_file, "--workload", "trace",
              "--trace", str(trace_path)])


def test_serve_bench_rejects_a_malformed_fault_plan_cleanly(graph_file, tmp_path):
    plan_path = tmp_path / "bad.json"
    plan_path.write_text('{"events": [', encoding="utf-8")
    with pytest.raises(SystemExit, match="fault plan"):
        main(["serve-bench", "--graph", graph_file,
              "--fault-plan", str(plan_path)])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["serve-bench", "--graph", graph_file,
              "--fault-plan", str(tmp_path / "missing.json")])


def test_serve_bench_rejects_a_plan_beyond_the_pool(graph_file, tmp_path):
    from repro.faults import FaultEvent, FaultPlan

    plan_path = tmp_path / "wide.json"
    FaultPlan(
        events=(FaultEvent(at=0, kind="crash", shard=5, duration=2),)
    ).to_file(plan_path)
    with pytest.raises(SystemExit, match="targets shard 5"):
        main(["serve-bench", "--graph", graph_file, "--shards", "2",
              "--fault-plan", str(plan_path)])


def test_report_run_rejects_unknown_faults_keys(tmp_path):
    spec_path = tmp_path / "chaos.toml"
    spec_path.write_text(
        "\n".join(
            [
                "[[scenario]]",
                'name = "bad-chaos"',
                'algorithm = "spanner3"',
                "[scenario.graph]",
                'family = "gnp"',
                "sizes = [40]",
                "[scenario.workload]",
                'kind = "uniform"',
                "requests = 30",
                "[scenario.faults]",
                "crashes = 1",
                "blast_radius = 3",
                "",
            ]
        ),
        encoding="utf-8",
    )
    with pytest.raises(SystemExit, match="unknown faults key"):
        main(["report", "run", str(spec_path), "--results",
              str(tmp_path / "results")])


def test_degraded_mode_flag_validates_choices(graph_file, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve-bench", "--graph", graph_file,
              "--degraded-mode", "panic"])
    assert excinfo.value.code == 2  # argparse usage error

# --------------------------------------------------------------------------- #
# Observability plane (trace subcommand, export flags, report --trace-dir)
# --------------------------------------------------------------------------- #
def _serve_with_trace(graph_file, tmp_path):
    trace_path = tmp_path / "spans.jsonl"
    code = main(
        ["serve-bench", "--graph", graph_file, "--requests", "150",
         "--shards", "2", "--batch-size", "8", "--seed", "4",
         "--trace-out", str(trace_path)]
    )
    assert code == 0
    return trace_path


def test_serve_bench_exports_trace_chrome_and_metrics(graph_file, capsys, tmp_path):
    import json

    jsonl = tmp_path / "spans.jsonl"
    chrome = tmp_path / "spans.json"
    metrics = tmp_path / "metrics.json"
    code = main(
        ["serve-bench", "--graph", graph_file, "--requests", "150",
         "--shards", "2", "--batch-size", "8", "--seed", "4",
         "--trace-out", str(jsonl), "--trace-chrome", str(chrome),
         "--metrics-out", str(metrics)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "spans" in out and "metrics" in out

    from repro.obs import read_trace_jsonl

    records = read_trace_jsonl(jsonl)
    assert records
    names = {record["name"] for record in records}
    assert {"service.run", "service.batch"} <= names
    document = json.loads(chrome.read_text())
    assert len(document["traceEvents"]) == len(records)
    snapshot = json.loads(metrics.read_text())
    assert snapshot["schema"] == 1
    assert snapshot["metrics"]["service.requests.served"]["value"] == 150
    assert "cache.outcome.memo_hit.calls" in snapshot["metrics"]


def test_trace_command_summarizes_a_trace(graph_file, capsys, tmp_path):
    trace_path = _serve_with_trace(graph_file, tmp_path)
    capsys.readouterr()
    assert main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "service.run" in out
    assert "ticks" in out


def test_trace_command_converts_to_chrome(graph_file, capsys, tmp_path):
    import json

    trace_path = _serve_with_trace(graph_file, tmp_path)
    chrome_path = tmp_path / "chrome.json"
    assert main(["trace", str(trace_path), "--chrome", str(chrome_path)]) == 0
    document = json.loads(chrome_path.read_text())
    assert document["traceEvents"]
    assert {event["ph"] for event in document["traceEvents"]} <= {"X", "i"}


def test_trace_command_rejects_missing_file_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="trace: cannot read trace file"):
        main(["trace", str(tmp_path / "missing.jsonl")])


def test_trace_command_rejects_corrupt_file_cleanly(tmp_path):
    corrupt = tmp_path / "corrupt.jsonl"
    corrupt.write_text("this is not a span\n", encoding="utf-8")
    with pytest.raises(SystemExit, match="trace: .*:1: malformed trace record"):
        main(["trace", str(corrupt)])


def test_trace_command_handles_empty_trace(capsys, tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    assert main(["trace", str(empty)]) == 0
    assert "0 spans" in capsys.readouterr().out


def _write_obs_report_spec(tmp_path):
    spec_path = tmp_path / "obs.toml"
    spec_path.write_text(
        "\n".join(
            [
                "[[scenario]]",
                'name = "cli-obs"',
                'algorithm = "spanner3"',
                "seed = 7",
                "[scenario.graph]",
                'family = "gnp"',
                "sizes = [40]",
                "density = 0.2",
                "seed = 3",
                "[scenario.workload]",
                'kind = "uniform"',
                "requests = 30",
                "seed = 1",
                "[scenario.service]",
                "shards = 2",
                "batch_size = 8",
                "[scenario.observability]",
                "trace = true",
                "profile = true",
                "",
            ]
        ),
        encoding="utf-8",
    )
    return spec_path


def test_report_run_trace_dir_exports_deterministic_traces(tmp_path, capsys):
    spec_path = _write_obs_report_spec(tmp_path)
    exports = []
    for label in ("one", "two"):
        results = tmp_path / f"results-{label}"
        traces = tmp_path / f"traces-{label}"
        code = main(
            ["report", "run", str(spec_path), "--results", str(results),
             "--trace-dir", str(traces)]
        )
        assert code == 0
        jsonl = traces / "cli-obs.trace.jsonl"
        chrome = traces / "cli-obs.trace.json"
        assert jsonl.exists() and chrome.exists()
        exports.append(jsonl.read_bytes())
    assert exports[0] == exports[1]

    # The rendered report gains the observability sections.
    out_path = tmp_path / "report.md"
    code = main(
        ["report", "render", "--results", str(tmp_path / "results-one"),
         "--out", str(out_path)]
    )
    assert code == 0
    markdown = out_path.read_text(encoding="utf-8")
    assert "## Trace summary (observability scenarios)" in markdown
    assert "## Probe attribution by kernel phase" in markdown
