"""Bounded-memory oracle mode: eviction is answer- and probe-invisible.

The scale plane's bounded :class:`~repro.core.cache.BoundedOracleCache`
forgets memo entries under an LRU cap and recomputes them on demand.  Since
every memoized value is a pure function of ``(graph, seed, key)`` and every
recompute re-charges the exact cold probe schedule a hit would have
replayed, a capped oracle must be *bit-identical* to the unbounded one in
answers and per-kind probe accounting — across algorithms, graph backends
and mutation epochs.  These tests pin that equivalence, plus the honesty of
the accounting (evicted-then-recomputed work is charged, never dropped) and
the protocol edges (no incremental snapshots, k-wise tape compression).
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.cache import BoundedOracleCache, OracleCache, SnapshotCursor
from repro.core.registry import create
from repro.reports.runner import churn_ops

CAPS = [1, 2, 8]
ALGORITHMS = ["spanner3", "spanner5", "spannerk"]
BACKENDS = ["dict", "csr"]


def _graph(backend, seed=5):
    return graphs.gnp_graph(40, 0.18, seed=seed).to_backend(backend)


def _trace(lca, edges):
    """(answer, probe-total, per-kind counter) per query — the full ledger."""
    out = []
    for (u, v) in edges:
        result = lca.query_with_stats(u, v)
        out.append((result.in_spanner, result.probes, lca.probe_counter.snapshot().as_dict()))
    return out


# --------------------------------------------------------------------------- #
# Equivalence: capped ≡ unbounded, across algorithms × backends × epochs
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("cap", CAPS)
def test_bounded_oracle_bit_identical_across_epochs(algorithm, backend, cap):
    reference = create(algorithm, _graph(backend), seed=7)
    bounded = create(algorithm, _graph(backend), seed=7).set_memo_cap(cap)
    reference.set_query_mode("cached")
    bounded.set_query_mode("cached")

    for epoch in range(3):
        edges = sorted(reference.graph.edges())[:30]
        assert _trace(reference, edges) == _trace(bounded, edges)
        # Re-query half of them (hits on one side, possible re-derivations
        # on the other — the ledger must still agree entry for entry).
        assert _trace(reference, edges[:15]) == _trace(bounded, edges[:15])
        ops = churn_ops(reference.graph, 6, seed=100 + epoch)
        assert reference.apply_mutations(ops) == bounded.apply_mutations(ops)


@pytest.mark.parametrize("cap", CAPS)
def test_bounded_oracle_materialize_matches_unbounded(cap):
    reference = create("spanner3", _graph("csr"), seed=3)
    bounded = create("spanner3", _graph("csr"), seed=3).set_memo_cap(cap)
    mat_r = reference.materialize(mode="batched")
    mat_b = bounded.materialize(mode="batched")
    assert mat_b.edges == mat_r.edges
    assert mat_b.probe_stats.query_totals == mat_r.probe_stats.query_totals
    assert (
        bounded.probe_counter.snapshot().as_dict()
        == reference.probe_counter.snapshot().as_dict()
    )


# --------------------------------------------------------------------------- #
# Eviction mechanics and honest accounting (scalar kernel: the memo path)
# --------------------------------------------------------------------------- #
@pytest.fixture
def scalar_bounded_lca():
    """A cap-1 spanner3 LCA pinned to the scalar kernel.

    The vectorized kernels keep their own array tables and bypass the
    OracleCache memo entirely; only the scalar path exercises store/evict.
    """
    lca = create("spanner3", _graph("csr"), seed=11).set_kernel("python")
    lca.set_memo_cap(1)
    lca.set_query_mode("cached")
    return lca


def test_eviction_counts_and_resident_bound(scalar_bounded_lca):
    lca = scalar_bounded_lca
    edges = sorted(lca.graph.edges())[:20]
    cache = lca.ensure_cached_oracle().cache
    assert isinstance(cache, BoundedOracleCache)
    lca.query_batch(edges)
    assert cache.resident_entries <= 1
    # Every stored answer past the first displaced its predecessor.
    assert cache.evictions == len(edges) - 1
    assert cache.stats.misses == len(edges)


def test_evicted_work_is_recharged_not_dropped(scalar_bounded_lca):
    """Alternate two queries under cap=1: every re-touch pays full cold cost."""
    lca = scalar_bounded_lca
    edges = sorted(lca.graph.edges())[:2]
    cache = lca.ensure_cached_oracle().cache
    first = lca.query_batch(edges)
    baseline = first.probe_totals
    evictions = cache.evictions
    misses = cache.stats.misses
    for _ in range(3):
        again = lca.query_batch(edges)
        # Identical answers AND identical per-query charges: the recompute
        # after an eviction re-pays exactly the cold schedule — work is
        # re-charged, never silently dropped (and never double-counted).
        assert again.answers == first.answers
        assert again.probe_totals == baseline
        assert cache.evictions > evictions
        assert cache.stats.misses > misses
        evictions = cache.evictions
        misses = cache.stats.misses
    assert cache.resident_entries <= 1


def test_unbounded_cache_untouched_by_default():
    lca = create("spanner3", _graph("csr"), seed=11)
    assert lca.memo_cap is None
    cache = lca.ensure_cached_oracle().cache
    assert isinstance(cache, OracleCache)
    assert not isinstance(cache, BoundedOracleCache)


# --------------------------------------------------------------------------- #
# k-wise tape compression: probe-free entries are never resident
# --------------------------------------------------------------------------- #
def test_probe_free_entries_not_stored_but_recomputed_identically():
    graph = _graph("csr")
    bounded = BoundedOracleCache(graph, memo_cap=4)
    unbounded = OracleCache(graph)
    calls = {"bounded": 0, "unbounded": 0}

    def compute_for(name):
        def compute():
            calls[name] += 1
            return ("tape", name == name)  # pure function of the key

        return compute

    # Probe-free computes (empty dependency set): the bounded cache
    # recomputes from the seed family instead of keeping them resident.
    for _ in range(2):
        value_b = bounded.memoize("coins", 7, compute_for("bounded"))
        value_u = unbounded.memoize("coins", 7, compute_for("unbounded"))
        assert value_b == value_u
    assert calls["bounded"] == 2  # recomputed on demand, never resident
    assert calls["unbounded"] == 1  # memoized once
    assert bounded.resident_entries == 0


def test_memo_cap_validation():
    graph = _graph("csr")
    for bad in (0, -3, True, 2.5, "8"):
        with pytest.raises(ValueError):
            BoundedOracleCache(graph, memo_cap=bad)
    lca = create("spanner3", graph, seed=1)
    for bad in (0, -1, True, 1.5):
        with pytest.raises(ValueError):
            lca.set_memo_cap(bad)
    assert lca.set_memo_cap(4).memo_cap == 4
    assert lca.set_memo_cap(None).memo_cap is None


def test_bounded_cache_refuses_incremental_snapshots():
    graph = _graph("csr")
    cache = BoundedOracleCache(graph, memo_cap=2)
    cache.snapshot()  # full snapshots are fine
    with pytest.raises(RuntimeError, match="incremental snapshots"):
        cache.snapshot(since=SnapshotCursor())


def test_process_workers_stay_unbounded():
    """The cap is coordinator-local: it never ships with an LCASpec."""
    lca = create("spanner3", _graph("csr"), seed=2).set_memo_cap(2)
    spec = lca.executor_spec()
    rebuilt = create(spec.algorithm, _graph("csr"), seed=spec.seed, **spec.kwargs)
    assert rebuilt.memo_cap is None
