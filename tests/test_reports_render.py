"""Artifact store and Markdown report generation (repro.reports)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import format_markdown_table
from repro.reports import (
    ResultStore,
    ScenarioSpec,
    StoreError,
    load_scenario_file,
    render_report,
    run_scenario,
)

SCENARIOS_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def _tiny_spec(name="render-test", backend="dict", algorithm="spanner3"):
    return ScenarioSpec.from_dict(
        {
            "name": name,
            "algorithm": algorithm,
            "seed": 7,
            "graph": {
                "family": "gnp",
                "sizes": [40],
                "density": 0.2,
                "seed": 3,
                "backend": backend,
            },
            "workload": {"kind": "uniform", "requests": 40, "seed": 1},
            "service": {"shards": 2, "batch_size": 8},
        }
    )


# --------------------------------------------------------------------------- #
# Store
# --------------------------------------------------------------------------- #
def test_store_round_trip_and_listing(tmp_path):
    store = ResultStore(tmp_path / "results")
    result = run_scenario(_tiny_spec())
    path = store.save(result, wall_seconds=1.25)
    assert path.exists()
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["store_schema"] == 1
    assert "python" in document["environment"]
    assert document["wall_seconds"] == 1.25
    assert store.list() == ["render-test"]
    assert store.load("render-test") == result.as_dict()


def test_store_rejects_missing_and_malformed(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(StoreError, match="no stored result"):
        store.load("ghost")
    (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(StoreError, match="not valid JSON"):
        store.load("bad")
    (tmp_path / "alien.json").write_text('{"store_schema": 99, "result": {}}')
    with pytest.raises(StoreError, match="schema"):
        store.load("alien")


# --------------------------------------------------------------------------- #
# Render
# --------------------------------------------------------------------------- #
def test_markdown_table_escapes_pipes_everywhere():
    table = format_markdown_table([{"|H|": "a|b"}])
    assert "\\|H\\|" in table
    assert "a\\|b" in table


def test_render_contains_all_sections_and_rows():
    payloads = [
        run_scenario(_tiny_spec(name="rt-dict", backend="dict")).as_dict(),
        run_scenario(_tiny_spec(name="rt-csr", backend="csr")).as_dict(),
    ]
    markdown = render_report(payloads)
    for heading in (
        "# Scenario report",
        "## Scenarios",
        "## Probe complexity vs n",
        "## Spanner size vs stretch parameter",
        "## Stretch certificates",
        "## Service latency percentiles (virtual time)",
    ):
        assert heading in markdown
    assert "rt-dict" in markdown and "rt-csr" in markdown
    assert "p99 ms" in markdown


def test_render_is_sorted_and_independent_of_input_order():
    a = run_scenario(_tiny_spec(name="aaa")).as_dict()
    b = run_scenario(_tiny_spec(name="zzz")).as_dict()
    assert render_report([a, b]) == render_report([b, a])


def test_full_cycle_is_byte_identical_across_runs(tmp_path):
    """The acceptance criterion, as a test: run → store → render, twice."""
    specs = [
        _tiny_spec(name="cycle-s3-dict", backend="dict"),
        _tiny_spec(name="cycle-s3-csr", backend="csr"),
        _tiny_spec(name="cycle-sk-dict", backend="dict", algorithm="spannerk"),
        _tiny_spec(name="cycle-sk-csr", backend="csr", algorithm="spannerk"),
    ]
    renders = []
    for round_dir in ("one", "two"):
        store = ResultStore(tmp_path / round_dir)
        for spec in specs:
            store.save(run_scenario(spec))
        renders.append(render_report(store.load_all()))
    assert renders[0] == renders[1]
    assert renders[0].encode("utf-8") == renders[1].encode("utf-8")


def test_render_without_service_phase_has_empty_latency_table():
    spec = ScenarioSpec.from_dict(
        {"name": "offline-only", "graph": {"family": "gnp", "sizes": [30]}}
    )
    markdown = render_report([run_scenario(spec).as_dict()])
    section = markdown.split("## Service latency percentiles (virtual time)")[1]
    assert "(no rows)" in section


def test_smoke_suite_renders_acceptance_tables(tmp_path):
    """scenarios/smoke.toml under --smoke renders probes-vs-n and latency
    tables covering spanner3 and spannerk on both backends."""
    store = ResultStore(tmp_path)
    for spec in load_scenario_file(SCENARIOS_DIR / "smoke.toml"):
        store.save(run_scenario(spec, smoke=True))
    markdown = render_report(store.load_all())
    probe_section = markdown.split("## Probe complexity vs n")[1].split("## ")[0]
    latency_section = markdown.split(
        "## Service latency percentiles (virtual time)"
    )[1]
    for name in (
        "smoke-spanner3-dict",
        "smoke-spanner3-csr",
        "smoke-spannerk-dict",
        "smoke-spannerk-csr",
    ):
        assert name in probe_section
        assert name in latency_section
