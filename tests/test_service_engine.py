"""Scheduler, workload and telemetry behaviors of the service layer.

Equivalence with the single-oracle baseline is pinned by
``test_service_equivalence.py``; these tests cover the serving mechanics
themselves: admission control, queue bounds, workload determinism and shape,
trace round-trips, and the metrics reductions.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import graphs
from repro.core.probes import nearest_rank_percentile
from repro.core.registry import create
from repro.service import (
    LatencyStats,
    ServiceConfig,
    ServiceEngine,
    TraceWorkload,
    make_workload,
    read_trace,
    serve_workload,
    write_trace,
)


@pytest.fixture
def graph():
    return graphs.gnp_graph(60, 0.2, seed=3)


def _factory(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


# --------------------------------------------------------------------------- #
# Scheduler / admission control
# --------------------------------------------------------------------------- #
def test_overloaded_ingress_sheds_load_and_books_every_request(graph):
    config = ServiceConfig(
        num_shards=2, batch_size=4, arrival_burst=32, max_queue_depth=8
    )
    workload = make_workload("uniform", graph, num_requests=400, seed=1)
    report = ServiceEngine(graph, _factory, config).run(workload)
    assert report.offered == 400
    assert report.rejected > 0
    assert report.admitted + report.rejected == report.offered
    assert report.served == report.admitted  # the queue always drains
    assert report.max_queue_depth_seen <= config.max_queue_depth


def test_steady_state_ingress_rejects_nothing(graph):
    config = ServiceConfig(num_shards=2, batch_size=16)
    workload = make_workload("uniform", graph, num_requests=200, seed=1)
    report = ServiceEngine(graph, _factory, config).run(workload)
    assert report.rejected == 0
    assert report.served == 200
    assert report.batches >= 200 // 16


def test_non_edges_are_rejected_not_served(graph):
    u, v = next(iter(graph.edges()))
    missing = graph.num_vertices + 5
    stream = [(u, v), (u, missing), (v, u)]
    workload = TraceWorkload(graph, edges=stream)
    report = serve_workload(graph, _factory, workload, ServiceConfig(batch_size=2))
    assert report.served == 2
    assert report.rejected == 1
    assert report.extras["invalid_requests"] == 1


def test_latency_counts_queueing_delay(graph):
    """With an injected clock, latency = completion − arrival stamps."""
    ticks = iter(range(10_000))
    config = ServiceConfig(num_shards=1, batch_size=2, coalesce=True)
    workload = make_workload("uniform", graph, num_requests=6, seed=2)
    report = ServiceEngine(graph, _factory, config).run(
        workload, clock=lambda: next(ticks)
    )
    assert report.served == 6
    assert report.latency.count == 6
    assert all(sample > 0 for sample in report.latency.samples_s)


def test_config_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        ServiceConfig(num_shards=0)
    with pytest.raises(ValueError):
        ServiceConfig(batch_size=0)
    with pytest.raises(ValueError):
        ServiceConfig(max_queue_depth=0)
    with pytest.raises(ValueError):
        ServiceConfig(arrival_burst=0)
    with pytest.raises(ValueError):
        ServiceConfig(routing="modulo")


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["uniform", "zipf", "adaptive"])
def test_generative_workloads_are_deterministic_per_seed(graph, kind):
    first = list(make_workload(kind, graph, num_requests=120, seed=7))
    second = list(make_workload(kind, graph, num_requests=120, seed=7))
    other = list(make_workload(kind, graph, num_requests=120, seed=8))
    assert first == second
    assert first != other
    assert len(first) == 120
    assert all(graph.has_edge(u, v) for (u, v) in first)


def test_zipf_workload_concentrates_on_high_degree_vertices(graph):
    requests = list(make_workload("zipf", graph, num_requests=2000, seed=1, skew=1.3))
    hits = Counter()
    for (u, v) in requests:
        hits[u] += 1
        hits[v] += 1
    by_degree = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    hot = sum(hits[v] for v in by_degree[:6])
    cold = sum(hits[v] for v in by_degree[-6:])
    assert hot > 3 * max(cold, 1), "zipf stream is not degree-skewed"


def test_adaptive_workload_follows_spanner_answers(graph):
    workload = make_workload("adaptive", graph, num_requests=50, seed=3, follow=1.0)
    engine = ServiceEngine(graph, _factory, ServiceConfig(batch_size=4))
    report = engine.run(workload)
    assert report.served == 50
    # After warmup, followed requests share an endpoint with an earlier
    # in-spanner answer (the frontier); check the property on the log.
    frontier = set()
    followed = 0
    for record in engine.records:
        if frontier and (record.u in frontier or record.v in frontier):
            followed += 1
        if record.in_spanner:
            frontier.update((record.u, record.v))
    assert followed > 0


def test_make_workload_rejects_unknown_kind(graph):
    with pytest.raises(ValueError):
        make_workload("flood", graph)
    with pytest.raises(ValueError):
        make_workload("trace", graph)  # needs a path or an edge list


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #
def test_trace_roundtrip_preserves_orientation(tmp_path, graph):
    edges = []
    for i, (u, v) in enumerate(graph.edges()):
        edges.append((v, u) if i % 2 else (u, v))
        if len(edges) == 20:
            break
    path = tmp_path / "trace.jsonl"
    assert write_trace(path, edges) == 20
    assert read_trace(path) == edges
    replay = list(TraceWorkload(graph, path=str(path)))
    assert replay == edges


def test_trace_truncation_and_malformed_lines(tmp_path, graph):
    edges = list(graph.edges())[:10]
    path = tmp_path / "trace.jsonl"
    write_trace(path, edges)
    assert list(TraceWorkload(graph, num_requests=4, path=str(path))) == edges[:4]
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"u": 1, "v": 2}\nnot-json\n')
    with pytest.raises(ValueError, match="malformed trace record"):
        read_trace(bad)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_latency_stats_use_nearest_rank_percentiles():
    stats = LatencyStats()
    for ms in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
        stats.add(ms / 1e3)
    assert stats.count == 10
    assert stats.max_s == pytest.approx(0.010)
    assert stats.percentile_s(50) == pytest.approx(
        nearest_rank_percentile(sorted(stats.samples_s), 50)
    )
    summary = stats.as_dict()
    assert summary["p50_ms"] == pytest.approx(6.0)  # rank ⌊0.5·9 + 0.5⌋ = 5
    assert summary["p99_ms"] == pytest.approx(10.0)


def test_service_report_shape(graph):
    workload = make_workload("zipf", graph, num_requests=150, seed=2)
    report = serve_workload(
        graph, _factory, workload, ServiceConfig(num_shards=3, batch_size=8)
    )
    row = report.as_row()
    assert row["served"] == 150
    assert row["workload"] == "zipf"
    payload = report.as_dict()
    assert payload["num_shards"] == 3
    assert len(payload["shards"]) == 3
    assert payload["throughput_rps"] > 0
    assert payload["latency"]["count"] == 150
    assert payload["probes"]["queries"] == 150
    assert report.shard_imbalance() >= 1.0
    assert 0.0 <= report.rejection_rate <= 1.0


# --------------------------------------------------------------------------- #
# Regressions
# --------------------------------------------------------------------------- #
def test_rerunning_an_engine_reports_per_run_shard_telemetry(graph):
    """Shard telemetry in a report covers that run only, not the pool's
    lifetime — a second run must not double-count the first."""
    engine = ServiceEngine(graph, _factory, ServiceConfig(num_shards=2, batch_size=8))
    first = engine.run(make_workload("uniform", graph, num_requests=80, seed=1))
    second = engine.run(make_workload("uniform", graph, num_requests=50, seed=2))
    assert first.served == 80 and second.served == 50
    assert sum(r.requests for r in first.shard_reports) == 80
    assert sum(r.requests for r in second.shard_reports) == 50
    assert sum(r.probes.total for r in second.shard_reports) == second.probe_stats.total


def test_range_routing_spreads_non_contiguous_vertex_ids():
    """Range routing partitions the *sorted id space* by rank, so offset or
    sparse vertex ids still use every shard."""
    from repro.graphs import Graph
    from repro.service import ShardRouter

    ids = [1000 + 3 * i for i in range(40)]
    edges = [(ids[i], ids[i + 1]) for i in range(len(ids) - 1)]
    graph = Graph.from_edges(edges)
    router = ShardRouter(4, graph.vertices(), "range")
    used = {router.shard_of_vertex(v) for v in ids}
    assert used == {0, 1, 2, 3}
    # Pool-level: a served run on such a graph reaches more than one shard.
    workload = make_workload("uniform", graph, num_requests=60, seed=1)
    config = ServiceConfig(num_shards=4, routing="range", batch_size=8)
    report = ServiceEngine(graph, _factory, config).run(workload)
    assert sum(1 for r in report.shard_reports if r.requests) > 1
