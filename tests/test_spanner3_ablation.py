"""Tests for the naïve single-center ablation variant (Idea I baseline)."""

from __future__ import annotations

import random

from repro import create_lca, graphs
from repro.analysis import measure_stretch, preserves_connectivity
from repro.core.oracle import AdjacencyListOracle
from repro.spanner3 import NaiveSingleCenterLCA, SingleCenterSystem, ThreeSpannerLCA


def test_single_center_system_picks_first_sampled_prefix_neighbor():
    graph = graphs.Graph.from_edges([(0, i) for i in range(1, 8)])
    system = SingleCenterSystem(seed=3, probability=1.0, prefix=4, independence=8)
    oracle = AdjacencyListOracle(graph)
    assert system.center_of(oracle, 0) == graph.neighbor_at(0, 0)
    empty = SingleCenterSystem(seed=3, probability=0.0, prefix=4, independence=8)
    assert empty.center_of(oracle, 0) is None


def test_single_center_membership_requires_prefix_scan():
    graph = graphs.Graph.from_edges([(0, i) for i in range(1, 12)])
    system = SingleCenterSystem(seed=3, probability=1.0, prefix=6, independence=8)
    oracle = AdjacencyListOracle(graph)
    before = oracle.counter.total
    system.in_cluster_of(oracle, 0, graph.neighbor_at(0, 0))
    # one Degree probe + up to `prefix` Neighbor probes — much more than the
    # single Adjacency probe of the multiple-center system
    assert oracle.counter.total - before >= 2


def test_naive_lca_is_a_valid_three_spanner():
    graph = graphs.gnp_graph(80, 0.25, seed=6)
    lca = NaiveSingleCenterLCA(graph, seed=4)
    materialized = lca.materialize()
    report = measure_stretch(graph, materialized.edges, limit=4)
    assert report.is_finite
    assert report.max_stretch <= 3
    assert preserves_connectivity(graph, materialized.edges)


def test_naive_lca_is_registered():
    graph = graphs.gnp_graph(40, 0.3, seed=1)
    lca = create_lca("spanner3-naive", graph, seed=2)
    u, v = next(iter(graph.edges()))
    assert isinstance(lca.query(u, v), bool)


def test_naive_variant_uses_more_probes_than_idea_one():
    graph = graphs.gnp_graph(150, 0.25, seed=8)
    smart = ThreeSpannerLCA(graph, seed=5, hitting_constant=1.0)
    naive = NaiveSingleCenterLCA(graph, seed=5, hitting_constant=1.0)
    rng = random.Random(1)
    sample = rng.sample(list(graph.edges()), 60)
    for (u, v) in sample:
        smart.query(u, v)
        naive.query(u, v)
    assert naive.probe_stats.mean > smart.probe_stats.mean


def test_naive_answers_are_consistent():
    graph = graphs.gnp_graph(60, 0.3, seed=2)
    lca = NaiveSingleCenterLCA(graph, seed=9)
    for (u, v) in list(graph.edges())[:25]:
        assert lca.query(u, v) == lca.query(v, u)
        assert lca.query(u, v) == lca.query(u, v)
