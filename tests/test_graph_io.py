"""Tests for graph I/O round trips."""

from __future__ import annotations

import pytest

from repro.core.errors import GraphError
from repro.graphs import (
    Graph,
    gnp_graph,
    read_adjacency_json,
    read_edge_list,
    write_adjacency_json,
    write_edge_list,
)
from repro.graphs.io import edges_to_lines


def test_edge_list_round_trip(tmp_path):
    g = gnp_graph(40, 0.15, seed=6)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    back = read_edge_list(path)
    assert set(back.edges()) == set(g.edges())
    assert back.num_vertices == g.num_vertices


def test_edge_list_preserves_isolated_vertices(tmp_path):
    g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2, 3])
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    back = read_edge_list(path)
    assert back.num_vertices == 4
    assert back.degree(3) == 0


def test_edge_list_without_header(tmp_path):
    g = Graph.from_edges([(0, 1), (1, 2)])
    path = tmp_path / "plain.txt"
    write_edge_list(g, path, header=False)
    content = path.read_text()
    assert not content.startswith("#")
    back = read_edge_list(path)
    assert back.num_edges == 2


def test_read_edge_list_rejects_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1\n")
    with pytest.raises(GraphError):
        read_edge_list(path)
    path.write_text("v 1 2\n")
    with pytest.raises(GraphError):
        read_edge_list(path)


def test_adjacency_json_round_trip_preserves_order(tmp_path):
    g = gnp_graph(30, 0.3, seed=6)
    path = tmp_path / "graph.json"
    write_adjacency_json(g, path)
    back = read_adjacency_json(path)
    for v in g.vertices():
        assert list(back.neighbors(v)) == list(g.neighbors(v))


def test_edges_to_lines():
    assert edges_to_lines([(1, 2), (3, 4)]) == ["1 2", "3 4"]
