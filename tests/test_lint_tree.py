"""Meta-test: the committed tree satisfies its own lint contracts.

`repro lint` over the repository must come back clean (modulo the reviewed
baseline and inline pragmas) — this is the same gate CI's lint job runs,
kept in the suite so a contract regression fails locally before push.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import DEFAULT_BASELINE_NAME, format_json, load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_tree_is_lint_clean_modulo_baseline():
    report = run_lint(root=REPO_ROOT)
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.clean, f"new lint findings:\n{rendered}"
    assert report.files_checked > 100


def test_every_baseline_entry_still_suppresses_something():
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    report = run_lint(root=REPO_ROOT)
    assert baseline.entries, "baseline exists but grants nothing"
    assert report.suppressed_baseline >= len(baseline.entries), (
        "some baseline entries no longer match any finding; prune them"
    )


def test_full_tree_json_report_is_byte_stable():
    first = format_json(run_lint(root=REPO_ROOT))
    second = format_json(run_lint(root=REPO_ROOT))
    assert first == second
