"""Tests for the sparse side: ball gathering and the local Baswana–Sen replay."""

from __future__ import annotations

from repro.core.oracle import AdjacencyListOracle
from repro.graphs import bounded_degree_expanderish, cycle_graph, grid_graph
from repro.spannerk import KSquaredParams, KSquaredRandomness
from repro.spannerk.sparse import SparseSpannerComponent
from repro.baselines import ClusterSampler, adjacency_from_edges, simulate_baswana_sen
from repro.core.seed import Seed


def make_component(graph, k=2, center_p=0.0, budget=10, seed=7):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=k,
        exploration_budget=budget,
        center_probability=center_p,
        mark_probability=0.2,
        rank_quota=20,
        independence=10,
    )
    randomness = KSquaredRandomness(Seed.of(seed).derive("spannerk"), params)
    return (
        SparseSpannerComponent(graph, seed, params=params, randomness=randomness),
        params,
        randomness,
    )


def test_dense_dense_edges_are_never_in_h_sparse():
    graph = grid_graph(5, 5)
    component, params, randomness = make_component(graph, center_p=1.0)
    for (u, v) in list(graph.edges())[:20]:
        assert not component.query(u, v)


def test_all_sparse_local_replay_matches_global_simulation():
    """When every vertex is sparse, querying each edge locally must reproduce
    exactly the global Baswana–Sen run on the whole graph."""
    graph = cycle_graph(30)
    k = 2
    component, params, _ = make_component(graph, k=k, center_p=0.0, budget=50)
    # Global run with the same sampler randomness.
    sampler = ClusterSampler(
        Seed.of(7).derive("spannerk/baswana-sen"),
        stretch_parameter=k,
        num_vertices_global=graph.num_vertices,
        independence=params.independence,
    )
    adjacency = adjacency_from_edges(graph.vertices(), graph.edges())
    global_run = simulate_baswana_sen(adjacency, sampler)
    for (u, v) in graph.edges():
        assert component.query(u, v) == global_run.edge_in_spanner(u, v)


def test_gather_ball_completeness():
    graph = grid_graph(6, 6)
    component, _, _ = make_component(graph, k=2)
    oracle = AdjacencyListOracle(graph)
    ball = component._gather_ball(oracle, [0], radius=2)
    # Vertices at distance < 2 have complete adjacency recorded.
    from repro.graphs import bfs_distances

    distances = bfs_distances(graph, 0)
    for vertex, neighbors in ball.items():
        if distances[vertex] < 2:
            assert set(neighbors) == set(graph.neighbors(vertex))
    # All vertices within distance 2 appear.
    expected = {v for v, d in distances.items() if d <= 2}
    assert expected <= set(ball)


def test_sparse_component_stretch_guarantee_unit():
    graph = bounded_degree_expanderish(60, d=4, seed=1)
    k = 2
    component, _, _ = make_component(graph, k=k, center_p=0.0, budget=30)
    kept = {edge for edge in graph.edges() if component.query(*edge)}
    from repro.analysis import measure_stretch

    report = measure_stretch(graph, kept, limit=2 * k)
    assert report.max_stretch <= 2 * k - 1


def test_stretch_bound_reported():
    graph = cycle_graph(10)
    component, _, _ = make_component(graph, k=3)
    assert component.stretch_bound() == 5
