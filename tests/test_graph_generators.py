"""Tests for the graph generators."""

from __future__ import annotations

import pytest

from repro.core.errors import ParameterError
from repro.graphs import (
    bounded_degree_expanderish,
    circulant_graph,
    complete_graph,
    cycle_graph,
    dense_cluster_graph,
    disjoint_union,
    gnm_graph,
    gnp_graph,
    grid_graph,
    is_connected,
    path_graph,
    planted_hub_graph,
    power_law_graph,
    random_regular_graph,
    relabel_randomly,
    star_graph,
)


def test_complete_graph():
    g = complete_graph(6)
    assert g.num_edges == 15
    assert g.max_degree() == 5


def test_cycle_and_path():
    assert cycle_graph(10).num_edges == 10
    assert path_graph(10).num_edges == 9
    assert cycle_graph(10).max_degree() == 2
    with pytest.raises(ParameterError):
        cycle_graph(2)


def test_star_graph():
    g = star_graph(12)
    assert g.degree(0) == 11
    assert g.num_edges == 11


def test_grid_graph():
    g = grid_graph(4, 5)
    assert g.num_vertices == 20
    assert g.num_edges == 4 * 4 + 3 * 5
    assert g.max_degree() <= 4
    assert is_connected(g)


def test_gnp_graph_density_tracks_p():
    g = gnp_graph(200, 0.1, seed=3)
    expected = 0.1 * 200 * 199 / 2
    assert abs(g.num_edges - expected) < 0.35 * expected
    assert gnp_graph(50, 0.0, seed=1).num_edges == 0
    assert gnp_graph(10, 1.0, seed=1).num_edges == 45


def test_gnp_graph_deterministic_in_seed():
    a = gnp_graph(80, 0.2, seed=7)
    b = gnp_graph(80, 0.2, seed=7)
    assert set(a.edges()) == set(b.edges())


def test_gnm_graph_exact_edge_count():
    g = gnm_graph(50, 100, seed=2)
    assert g.num_edges == 100
    with pytest.raises(ParameterError):
        gnm_graph(5, 100)


def test_random_regular_graph_is_regular():
    g = random_regular_graph(40, 4, seed=5)
    degrees = {g.degree(v) for v in g.vertices()}
    assert degrees == {4}
    with pytest.raises(ParameterError):
        random_regular_graph(5, 5)
    with pytest.raises(ParameterError):
        random_regular_graph(5, 3)  # odd n * d


def test_circulant_graph_structure():
    g = circulant_graph(10, [1, 2])
    assert g.degree(0) == 4
    assert is_connected(g)


def test_power_law_graph_has_degree_skew():
    g = power_law_graph(300, exponent=2.3, min_degree=2, seed=8)
    assert g.num_vertices == 300
    assert g.max_degree() > 3 * max(1, g.min_degree())
    with pytest.raises(ParameterError):
        power_law_graph(10, exponent=0.5)


def test_planted_hub_graph_hubs_have_high_degree():
    g = planted_hub_graph(150, num_hubs=3, hub_degree=60, seed=1)
    hub_degrees = [g.degree(v) for v in range(3)]
    other_degrees = [g.degree(v) for v in range(10, 150)]
    assert min(hub_degrees) > 3 * (sum(other_degrees) / len(other_degrees))
    assert is_connected(g)


def test_dense_cluster_graph_structure():
    g = dense_cluster_graph(60, 6, inter_probability=0.05, seed=2)
    assert g.num_vertices == 60
    # each cluster of 10 vertices is a clique: at least 6 * C(10,2) edges
    assert g.num_edges >= 6 * 45


def test_bounded_degree_expanderish():
    g = bounded_degree_expanderish(100, d=6, seed=4)
    assert g.max_degree() <= 6 + 2
    assert is_connected(g)
    with pytest.raises(ParameterError):
        bounded_degree_expanderish(101, d=6)
    with pytest.raises(ParameterError):
        bounded_degree_expanderish(100, d=5)


def test_disjoint_union_relabels():
    a = cycle_graph(5)
    b = cycle_graph(7)
    union = disjoint_union([a, b])
    assert union.num_vertices == 12
    assert union.num_edges == 12
    assert not is_connected(union)


def test_relabel_randomly_is_isomorphic():
    g = gnp_graph(40, 0.2, seed=3)
    relabeled = relabel_randomly(g, seed=9)
    assert relabeled.num_vertices == g.num_vertices
    assert relabeled.num_edges == g.num_edges
    assert sorted(relabeled.degree(v) for v in relabeled.vertices()) == sorted(
        g.degree(v) for v in g.vertices()
    )
    # IDs are no longer 0..n-1
    assert max(relabeled.vertices()) > g.num_vertices
