"""Robustness and failure-injection tests.

These cover the operational corners a downstream user hits: probe budgets,
oracle/graph agreement under arbitrary inputs, degenerate graphs, and
reproducibility of whole spanners across independently constructed LCA
instances.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import AdjacencyListOracle
from repro.core.errors import ProbeBudgetExceededError
from repro.graphs import Graph, complete_graph, gnp_graph, star_graph
from repro.spanner3 import ThreeSpannerLCA
from repro.spanner5 import FiveSpannerLCA


# --------------------------------------------------------------------------- #
# Probe budgets as failure injection
# --------------------------------------------------------------------------- #
def test_lca_query_respects_probe_budget():
    graph = gnp_graph(120, 0.3, seed=4)
    lca = ThreeSpannerLCA(graph, seed=2)
    # Replace the counter with a budgeted one: a tiny budget must interrupt
    # a query on a high-degree edge (deciding such an edge needs more than
    # the two Degree probes the budget allows).
    lca._counter.budget = 2
    dense_edge = max(
        graph.edges(), key=lambda e: min(graph.degree(e[0]), graph.degree(e[1]))
    )
    assert min(graph.degree(dense_edge[0]), graph.degree(dense_edge[1])) > (
        lca.params.low_threshold
    )
    with pytest.raises(ProbeBudgetExceededError):
        lca.query(*dense_edge)


def test_budget_failure_does_not_corrupt_later_queries():
    graph = gnp_graph(100, 0.25, seed=4)
    reference = ThreeSpannerLCA(graph, seed=2)
    budgeted = ThreeSpannerLCA(graph, seed=2)
    edges = list(graph.edges())[:20]
    expected = [reference.query(u, v) for (u, v) in edges]

    budgeted._counter.budget = 3
    for (u, v) in edges:
        try:
            budgeted.query(u, v)
        except ProbeBudgetExceededError:
            pass
    budgeted._counter.budget = None
    budgeted._counter.reset()
    assert [budgeted.query(u, v) for (u, v) in edges] == expected


# --------------------------------------------------------------------------- #
# Oracle answers always agree with the graph
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    edge_set=st.sets(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=40
    ),
    probes=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 20)), max_size=30),
)
def test_oracle_matches_graph_on_arbitrary_probes(edge_set, probes):
    edges = [(u, v) for (u, v) in edge_set if u != v]
    if not edges:
        return
    graph = Graph.from_edges(edges)
    oracle = AdjacencyListOracle(graph)
    for (v, index) in probes:
        if not graph.has_vertex(v):
            continue
        assert oracle.neighbor(v, index) == graph.neighbor_at(v, index)
        assert oracle.degree(v) == graph.degree(v)
    for (u, v) in edges:
        assert oracle.adjacency(u, v) == graph.adjacency_index(u, v)


def test_oracle_block_partition_covers_neighbor_list():
    graph = star_graph(30)
    oracle = AdjacencyListOracle(graph)
    blocks = []
    index = 0
    while True:
        block = oracle.neighbors_block(0, block_size=7, block_index=index)
        if not block:
            break
        blocks.append(block)
        index += 1
    flattened = [w for block in blocks for w in block]
    assert flattened == list(graph.neighbors(0))


# --------------------------------------------------------------------------- #
# Degenerate graphs
# --------------------------------------------------------------------------- #
def test_complete_graph_spanners():
    graph = complete_graph(30)
    for lca_cls, bound in ((ThreeSpannerLCA, 3), (FiveSpannerLCA, 5)):
        lca = lca_cls(graph, seed=1)
        materialized = lca.materialize()
        from repro.analysis import measure_stretch

        report = measure_stretch(graph, materialized.edges, limit=bound + 1)
        assert report.max_stretch <= bound


def test_single_edge_graph():
    graph = Graph.from_edges([(7, 9)])
    lca = ThreeSpannerLCA(graph, seed=1)
    assert lca.query(7, 9) is True  # both endpoints are low degree


def test_empty_neighbor_lists_do_not_crash_materialize():
    graph = Graph({0: [1], 1: [0], 5: []})
    lca = FiveSpannerLCA(graph, seed=1)
    assert lca.materialize().num_edges == 1


# --------------------------------------------------------------------------- #
# Reproducibility across independently constructed instances
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("lca_cls", [ThreeSpannerLCA, FiveSpannerLCA])
def test_independent_instances_agree_edge_by_edge(lca_cls):
    graph = gnp_graph(80, 0.2, seed=6)
    first = lca_cls(graph, seed=42)
    second = lca_cls(graph, seed=42)
    for (u, v) in list(graph.edges())[:50]:
        assert first.query(u, v) == second.query(v, u)


def test_probe_counts_are_deterministic_for_identical_queries():
    graph = gnp_graph(90, 0.25, seed=3)
    lca_a = ThreeSpannerLCA(graph, seed=4)
    lca_b = ThreeSpannerLCA(graph, seed=4)
    for (u, v) in list(graph.edges())[:20]:
        assert (
            lca_a.query_with_stats(u, v).probe_total
            == lca_b.query_with_stats(u, v).probe_total
        )
