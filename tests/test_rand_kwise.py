"""Tests for the d-wise independent hash families (Section 5)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ParameterError
from repro.rand import (
    KWiseHash,
    KWiseHashFamily,
    MERSENNE_PRIME,
    concatenated_rank,
    recommended_independence,
    seed_bit_cost,
)


def test_same_seed_same_function():
    h1 = KWiseHash(7, independence=8)
    h2 = KWiseHash(7, independence=8)
    assert all(h1.value(x) == h2.value(x) for x in range(100))


def test_different_seeds_differ_somewhere():
    h1 = KWiseHash(7, independence=8)
    h2 = KWiseHash(8, independence=8)
    assert any(h1.value(x) != h2.value(x) for x in range(100))


def test_values_lie_in_field():
    h = KWiseHash(3, independence=10)
    for x in range(500):
        assert 0 <= h.value(x) < MERSENNE_PRIME


def test_uniform_in_unit_interval():
    h = KWiseHash(3, independence=10)
    values = [h.uniform(x) for x in range(2000)]
    assert all(0.0 <= v < 1.0 for v in values)
    # mean of 2000 (pairwise independent at least) uniforms concentrates near 1/2
    assert abs(sum(values) / len(values) - 0.5) < 0.05


def test_bernoulli_rate_tracks_probability():
    h = KWiseHash(11, independence=12)
    trials = 4000
    hits = sum(1 for x in range(trials) if h.bernoulli(x, 0.2))
    assert abs(hits / trials - 0.2) < 0.03


def test_bernoulli_validates_probability():
    h = KWiseHash(1, independence=2)
    with pytest.raises(ParameterError):
        h.bernoulli(0, 1.5)


def test_integer_range_and_determinism():
    h = KWiseHash(5, independence=6)
    values = [h.integer(x, 10) for x in range(300)]
    assert all(0 <= v < 10 for v in values)
    assert values == [h.integer(x, 10) for x in range(300)]
    with pytest.raises(ParameterError):
        h.integer(0, 0)


def test_bits_within_range():
    h = KWiseHash(5, independence=6)
    for x in range(200):
        assert 0 <= h.bits(x, 7) < 2**7
    with pytest.raises(ParameterError):
        h.bits(0, 0)
    with pytest.raises(ParameterError):
        h.bits(0, 64)


def test_independence_parameter_validation():
    with pytest.raises(ParameterError):
        KWiseHash(1, independence=0)


def test_family_members_are_label_sensitive():
    family = KWiseHashFamily(9, independence=6)
    a = family.member("alpha")
    b = family.member("beta")
    a2 = family.member("alpha")
    assert all(a.value(x) == a2.value(x) for x in range(50))
    assert any(a.value(x) != b.value(x) for x in range(50))


def test_family_members_list():
    family = KWiseHashFamily(9, independence=6)
    members = family.members("level", 4)
    assert len(members) == 4
    values = [m.value(123) for m in members]
    assert len(set(values)) > 1


def test_pairwise_correlation_is_weak():
    """Empirical sanity check of the independence claim.

    For a d-wise independent family the outputs of two distinct inputs are
    independent; we check that the empirical correlation of the parity bits
    of h(2i) and h(2i+1) over many i is close to zero.
    """
    h = KWiseHash(21, independence=16)
    pairs = [(h.value(2 * i) & 1, h.value(2 * i + 1) & 1) for i in range(3000)]
    mean_x = sum(p[0] for p in pairs) / len(pairs)
    mean_y = sum(p[1] for p in pairs) / len(pairs)
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in pairs) / len(pairs)
    assert abs(covariance) < 0.03


def test_recommended_independence_scales_logarithmically():
    assert recommended_independence(2) >= 2
    assert recommended_independence(1024) == pytest.approx(2 * 10, abs=1)
    assert recommended_independence(10**6) < 50


def test_seed_bit_cost_matches_lemma():
    # d * max(gamma, beta) with gamma = ceil(log2 n)
    assert seed_bit_cost(1024, 20) == 20 * 10
    # O(log^2 n) overall
    n = 10**6
    d = recommended_independence(n)
    assert seed_bit_cost(n, d) <= 10 * math.log2(n) ** 2


def test_concatenated_rank_orders_blocks_most_significant_first():
    family = KWiseHashFamily(4, independence=8)
    hashes = family.members("rank", 3)
    rank = concatenated_rank(hashes, 77, bits_per_block=4)
    blocks = [h.bits(77, 4) for h in hashes]
    expected = (blocks[0] << 8) | (blocks[1] << 4) | blocks[2]
    assert rank == expected


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**61), st.integers(min_value=2, max_value=20))
def test_value_is_pure_function(x, independence):
    h = KWiseHash(13, independence=independence)
    assert h.value(x) == h.value(x)
