"""Vectorized probe kernels (repro.kernels): selection, fallback, equivalence.

The kernel layer promises *observational equivalence* with the scalar query
engines: identical spanner edge sets, identical per-query probe totals and
identical per-kind probe counts, with numpy strictly a wall-clock
optimization.  These tests pin the selection/fallback machinery (including
the one-line error when ``kernel="numpy"`` is requested without numpy) and
the equivalence promise for all three paper constructions across both graph
backends and across mutation epochs.
"""

from __future__ import annotations

import pytest

import repro.kernels as kernels
from repro import graphs
from repro.analysis import evaluate_lca
from repro.cli import main as cli_main
from repro.core.registry import create
from repro.kernels import ENV_KERNEL, KernelUnavailableError, resolve_kernel
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


def _spanner3(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def _spanner5(graph):
    return create("spanner5", graph, seed=5, hitting_constant=1.0)


def _spannerk(graph):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=2,
        exploration_budget=6,
        center_probability=0.3,
        mark_probability=0.25,
        rank_quota=20,
        independence=12,
    )
    return KSquaredSpannerLCA(graph, seed=7, params=params)


CASES = {
    "spanner3": (_spanner3, lambda: graphs.gnp_graph(70, 0.25, seed=11)),
    "spanner5": (
        _spanner5,
        lambda: graphs.dense_cluster_graph(80, 10, inter_probability=0.05, seed=5),
    ),
    "spannerk": (_spannerk, lambda: graphs.bounded_degree_expanderish(80, d=4, seed=3)),
}


@pytest.fixture
def force_kernel_paths(monkeypatch):
    """Drop the minimum-workload thresholds so tiny test graphs hit numpy.

    The kernels fall back to the scalar path (probe-exactly) below a
    sources×limit / grid-size floor; fixtures here are far below it, so the
    equivalence tests would silently compare scalar against scalar without
    this.
    """
    pytest.importorskip("numpy")
    from repro.kernels import bfs as kernel_bfs
    from repro.kernels import spanner5 as kernel_spanner5
    from repro.kernels.engine import NumpyKernel

    monkeypatch.setattr(kernel_bfs, "_MIN_BATCH_WORK", 0)
    monkeypatch.setattr(kernel_spanner5, "_MIN_GRID", 0)
    monkeypatch.setattr(NumpyKernel, "min_explore_work", 0)


def _fingerprint(lca, materialized):
    counter = lca.probe_counter.snapshot()
    return (
        frozenset(materialized.edges),
        tuple(materialized.probe_stats.query_totals),
        (counter.degree, counter.neighbor, counter.adjacency),
    )


# --------------------------------------------------------------------------- #
# Selection and fallback
# --------------------------------------------------------------------------- #


def test_resolve_python_is_scalar_path(monkeypatch):
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    assert resolve_kernel("python") is None


def test_resolve_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("cython")


def test_resolve_numpy_without_numpy_is_one_line_error(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy_or_none", lambda: None)
    with pytest.raises(KernelUnavailableError) as excinfo:
        resolve_kernel("numpy")
    message = str(excinfo.value)
    assert "\n" not in message
    assert "pip install repro-spanner-lca[fast]" in message


def test_auto_without_numpy_falls_back_to_scalar(monkeypatch):
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    monkeypatch.setattr(kernels, "_numpy_or_none", lambda: None)
    assert resolve_kernel("auto") is None
    assert resolve_kernel(None) is None


def test_auto_with_numpy_picks_the_vectorized_kernel(monkeypatch):
    pytest.importorskip("numpy")
    monkeypatch.delenv(ENV_KERNEL, raising=False)
    kernel = resolve_kernel("auto")
    assert kernel is not None and kernel.name == "numpy"


def test_env_var_overrides_auto(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "python")
    assert resolve_kernel(None) is None
    assert resolve_kernel("auto") is None
    # An explicit selection always wins over the environment.
    pytest.importorskip("numpy")
    assert resolve_kernel("numpy") is not None


def test_invalid_env_var_fails_loudly(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "fortran")
    with pytest.raises(KernelUnavailableError, match="REPRO_KERNEL"):
        resolve_kernel(None)


def test_set_kernel_validates_and_chains():
    graph = graphs.gnp_graph(30, 0.2, seed=1)
    lca = _spanner3(graph)
    assert lca.set_kernel("python") is lca
    assert lca.kernel_name == "python"
    with pytest.raises(ValueError, match="unknown kernel"):
        lca.set_kernel("cython")


def test_set_kernel_numpy_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy_or_none", lambda: None)
    lca = _spanner3(graphs.gnp_graph(30, 0.2, seed=1))
    with pytest.raises(KernelUnavailableError):
        lca.set_kernel("numpy")


def test_cli_kernel_error_is_one_line_systemexit(monkeypatch, tmp_path):
    monkeypatch.setattr(kernels, "_numpy_or_none", lambda: None)
    path = tmp_path / "g.txt"
    graphs.write_edge_list(graphs.gnp_graph(30, 0.2, seed=1), path)
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["materialize", "--graph", str(path), "--kernel", "numpy"])
    message = str(excinfo.value)
    assert message.startswith("materialize:") and "\n" not in message


# --------------------------------------------------------------------------- #
# Equivalence: scalar vs. vectorized
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["dict", "csr"])
@pytest.mark.parametrize("name", sorted(CASES))
def test_identical_edges_and_probes_across_kernels(name, backend, force_kernel_paths):
    """Same seeds ⇒ same spanner, probe totals and per-kind counts."""
    factory, make_graph = CASES[name]

    def run(kernel):
        graph = make_graph().to_backend(backend)
        lca = factory(graph).set_kernel(kernel)
        assert lca.kernel_name == kernel
        return _fingerprint(lca, lca.materialize(mode="batched"))

    assert run("python") == run("numpy")


@pytest.mark.parametrize("name", sorted(CASES))
def test_kernel_equivalence_survives_mutation_epochs(name, force_kernel_paths):
    """Post-mutation epochs re-run through the kernels bit-identically."""
    factory, make_graph = CASES[name]

    def run(kernel):
        graph = make_graph().to_backend("csr")
        lca = factory(graph).set_kernel(kernel)
        edges = sorted(graph.edges())
        fingerprints = [_fingerprint(lca, lca.materialize(mode="batched"))]
        # Epoch 1: drop a few edges; epoch 2: add one back plus a fresh edge.
        victims = edges[:: max(1, len(edges) // 3)][:3]
        for (u, v) in victims:
            graph.remove_edge(u, v)
        fingerprints.append(_fingerprint(lca, lca.materialize(mode="batched")))
        graph.add_edge(*victims[0])
        fingerprints.append(_fingerprint(lca, lca.materialize(mode="batched")))
        return fingerprints

    assert run("python") == run("numpy")


def test_evaluate_lca_kernel_parameter_is_probe_invariant(force_kernel_paths):
    graph = graphs.gnp_graph(60, 0.2, seed=9).to_backend("csr")
    scalar = evaluate_lca(_spanner3(graph), kernel="python")
    graph2 = graphs.gnp_graph(60, 0.2, seed=9).to_backend("csr")
    vectorized = evaluate_lca(_spanner3(graph2), kernel="numpy")
    assert scalar.num_spanner_edges == vectorized.num_spanner_edges
    assert scalar.probe_max == vectorized.probe_max
    assert scalar.probe_mean == vectorized.probe_mean


def test_cold_queries_stay_scalar_and_identical(force_kernel_paths):
    """The cold engine is the reference path; kernels must not touch it."""

    def run(kernel):
        graph = graphs.gnp_graph(50, 0.2, seed=3).to_backend("csr")
        lca = _spanner3(graph).set_kernel(kernel)
        lca.set_query_mode("cold")
        outcomes = [lca.query_with_stats(u, v) for (u, v) in sorted(graph.edges())[:40]]
        return [(o.in_spanner, o.probe_total) for o in outcomes]

    assert run("python") == run("numpy")


def test_executor_materialization_carries_the_kernel(force_kernel_paths):
    """Worker rebuilds honor LCASpec.kernel; results match the scalar path."""

    def run(kernel):
        graph = graphs.gnp_graph(60, 0.2, seed=9).to_backend("csr")
        lca = _spanner3(graph).set_kernel(kernel)
        materialized = lca.materialize(executor="thread", workers=2)
        return frozenset(materialized.edges), tuple(
            materialized.probe_stats.query_totals
        )

    assert run("python") == run("numpy")


def test_service_engine_kernel_config_is_probe_invariant(force_kernel_paths):
    from repro.service import ServiceConfig, ServiceEngine, make_workload

    def run(kernel):
        graph = graphs.gnp_graph(60, 0.2, seed=9).to_backend("csr")
        config = ServiceConfig(num_shards=2, batch_size=8, kernel=kernel)
        workload = make_workload("uniform", graph, num_requests=200, seed=1)
        report = ServiceEngine(graph, _spanner3, config).run(workload)
        return report.served, report.in_spanner, report.probe_stats.total

    assert run("python") == run("numpy")


def test_service_config_rejects_unknown_kernel():
    from repro.service import ServiceConfig

    with pytest.raises(ValueError, match="unknown kernel"):
        ServiceConfig(kernel="cython")
