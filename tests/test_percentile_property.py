"""Property-based pin of ``nearest_rank_percentile``.

The implementation uses explicit floor-based nearest-rank selection —
``ordered[⌊q/100 · (N-1) + 1/2⌋]`` with half-up tie handling.  The oracle
here derives the same fractional rank *independently* through
``statistics.quantiles`` on the index space: for ``q = j/2`` percent, the
``j``-th of 200 inclusive quantiles of ``range(N)`` is exactly the rank
``(N-1)·j/200``, recovered exactly with ``Fraction.limit_denominator`` and
resolved to an index with exact half-up rounding.  Agreement is checked on
random sorted samples with ties, on the half-way tie ranks themselves, and
on empty input.
"""

from __future__ import annotations

import statistics
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probes import nearest_rank_percentile

#: Percentiles with exact float representation of q/2: every j/2 for
#: j = 0..200, which includes all the half-way tie ranks for N-1 ≤ 200.
HALF_PERCENTS = [j / 2 for j in range(201)]


def quantiles_oracle(ordered, q):
    """Nearest-rank selection with the rank derived via statistics.quantiles."""
    if not ordered:
        return 0
    n = len(ordered)
    if n == 1:
        return ordered[0]
    j = round(q * 2)  # q is a multiple of 0.5 by construction
    if j == 0:
        rank = Fraction(0)
    elif j == 200:
        rank = Fraction(n - 1)
    else:
        # The j-th of 200 inclusive quantiles of 0..N-1 is (N-1)*j/200 up to
        # float noise; limit_denominator snaps it back to the exact rational
        # (true denominator ≤ 200).
        positions = statistics.quantiles(range(n), n=200, method="inclusive")
        rank = Fraction(positions[j - 1]).limit_denominator(10**6)
        assert rank == Fraction((n - 1) * j, 200)
    index = int(rank + Fraction(1, 2))  # exact half-up (floor of rank + 1/2)
    return ordered[index]


@settings(deadline=None, max_examples=300)
@given(
    data=st.lists(st.integers(min_value=-40, max_value=40), max_size=80),
    q=st.sampled_from(HALF_PERCENTS),
)
def test_matches_statistics_quantiles_oracle(data, q):
    ordered = sorted(data)
    assert nearest_rank_percentile(ordered, q) == quantiles_oracle(ordered, q)


@settings(deadline=None, max_examples=200)
@given(
    data=st.lists(
        st.sampled_from([0, 1, 1, 2, 5]), min_size=1, max_size=40
    ),  # heavy ties in *values*
    q=st.sampled_from(HALF_PERCENTS),
)
def test_heavily_tied_values_still_select_an_element(data, q):
    ordered = sorted(data)
    result = nearest_rank_percentile(ordered, q)
    assert result in ordered
    assert result == quantiles_oracle(ordered, q)


def test_tie_ranks_round_half_up():
    # 26 elements: q=58 gives rank 0.58*25 = 14.5 → index 15 (half-up),
    # the case banker's rounding would get wrong.
    ordered = list(range(26))
    assert nearest_rank_percentile(ordered, 58) == 15
    assert quantiles_oracle(ordered, 58) == 15
    # q=50 over an even count lands on a half rank too.
    ordered = [1, 2, 3, 4]
    assert nearest_rank_percentile(ordered, 50) == quantiles_oracle(ordered, 50) == 3


def test_empty_input_and_domain_errors():
    assert nearest_rank_percentile([], 50) == 0
    assert quantiles_oracle([], 50) == 0
    with pytest.raises(ValueError):
        nearest_rank_percentile([1, 2], 101)
    with pytest.raises(ValueError):
        nearest_rank_percentile([1, 2], -0.5)


@settings(deadline=None, max_examples=100)
@given(data=st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=30))
def test_endpoints_are_min_and_max(data):
    ordered = sorted(data)
    if ordered:
        assert nearest_rank_percentile(ordered, 0) == ordered[0]
        assert nearest_rank_percentile(ordered, 100) == ordered[-1]
