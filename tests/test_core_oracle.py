"""Tests for the probe oracle: answers and probe accounting."""

from __future__ import annotations

from repro.core.oracle import AdjacencyListOracle, SubgraphOracle
from repro.core.probes import ProbeCounter
from repro.graphs import Graph


def make_graph():
    return Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])


def test_degree_probe_counts():
    oracle = AdjacencyListOracle(make_graph())
    assert oracle.degree(0) == 3
    assert oracle.counter.degree == 1
    assert oracle.counter.total == 1


def test_neighbor_probe_returns_bottom_out_of_range():
    oracle = AdjacencyListOracle(make_graph())
    assert oracle.neighbor(1, 0) in {0, 2}
    assert oracle.neighbor(1, 5) is None
    assert oracle.counter.neighbor == 2


def test_adjacency_probe_returns_index_or_none():
    graph = make_graph()
    oracle = AdjacencyListOracle(graph)
    index = oracle.adjacency(0, 2)
    assert index is not None
    assert graph.neighbor_at(0, index) == 2
    assert oracle.adjacency(1, 3) is None
    assert oracle.counter.adjacency == 2


def test_has_edge_uses_single_adjacency_probe():
    oracle = AdjacencyListOracle(make_graph())
    assert oracle.has_edge(0, 1)
    assert not oracle.has_edge(1, 3)
    assert oracle.counter.adjacency == 2
    assert oracle.counter.total == 2


def test_neighbors_prefix_probe_cost():
    oracle = AdjacencyListOracle(make_graph())
    prefix = oracle.neighbors_prefix(0, 2)
    assert len(prefix) == 2
    # one Degree probe + two Neighbor probes
    assert oracle.counter.degree == 1
    assert oracle.counter.neighbor == 2


def test_neighbors_prefix_clamps_to_degree():
    oracle = AdjacencyListOracle(make_graph())
    prefix = oracle.neighbors_prefix(1, 100)
    assert len(prefix) == 2


def test_neighbors_block_partitions_list():
    graph = Graph.from_edges([(0, i) for i in range(1, 8)])
    oracle = AdjacencyListOracle(graph)
    block0 = oracle.neighbors_block(0, block_size=3, block_index=0)
    block1 = oracle.neighbors_block(0, block_size=3, block_index=1)
    block2 = oracle.neighbors_block(0, block_size=3, block_index=2)
    block3 = oracle.neighbors_block(0, block_size=3, block_index=3)
    assert len(block0) == 3 and len(block1) == 3 and len(block2) == 1
    assert block3 == []
    combined = block0 + block1 + block2
    assert combined == list(graph.neighbors(0))


def test_all_neighbors_counts_degree_plus_neighbors():
    oracle = AdjacencyListOracle(make_graph())
    neighbors = oracle.all_neighbors(0)
    assert set(neighbors) == {1, 2, 3}
    assert oracle.counter.degree == 1
    assert oracle.counter.neighbor == 3


def test_shared_counter_between_oracles():
    counter = ProbeCounter()
    graph = make_graph()
    oracle = AdjacencyListOracle(graph, counter)
    sub = SubgraphOracle(oracle, [0, 1, 2])
    sub.degree(0)
    oracle.degree(0)
    assert counter.degree == 2
    # the subgraph oracle sees the induced subgraph only
    assert sub.graph.num_vertices == 3
    assert sub.degree(0) == 2  # vertex 3 removed


def test_num_vertices_is_free():
    oracle = AdjacencyListOracle(make_graph())
    assert oracle.num_vertices == 4
    assert oracle.counter.total == 0
