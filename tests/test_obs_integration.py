"""End-to-end observability: engine hooks, scenario payloads, determinism.

Three invariants of the observability plane, checked through the real
service engine and the scenario runner:

* **Observation is free of side effects** — running with a tracer and a
  profiler attached produces bit-identical request records, latency
  percentiles and probe totals to an unobserved run of the same schedule.
* **Traces are deterministic** — two runs of the same scenario (including
  the chaos scenario's crash storm) export byte-identical JSONL span
  streams.
* **The payload carries the whole plane** — scenario results gain one
  ``observability`` block with the trace summary, the attribution profile
  and the unified metrics snapshot, and the renderer turns it into the
  trace-summary / attribution sections.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.registry import create
from repro.graphs import gnp_graph
from repro.obs import ProbeProfiler, SpanTracer, trace_jsonl
from repro.reports import TickClock, load_scenario_file, run_scenario, render_report
from repro.service import ServiceConfig, ServiceEngine, make_workload

SCENARIOS_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def run_engine(graph, tracer=None, profiler=None):
    engine = ServiceEngine(
        graph,
        lambda g: create("spanner3", g, seed=5, hitting_constant=1.0),
        ServiceConfig(num_shards=2, batch_size=8, record=True),
    )
    workload = make_workload("zipf", graph, num_requests=120, seed=3)
    report = engine.run(
        workload, clock=TickClock(), tracer=tracer, profiler=profiler
    )
    return engine, report


def test_tracing_and_profiling_do_not_change_the_run():
    graph = gnp_graph(70, 0.15, seed=11).to_backend("csr")
    plain_engine, plain = run_engine(graph)
    tracer, profiler = SpanTracer(), ProbeProfiler()
    traced_engine, traced = run_engine(graph, tracer=tracer, profiler=profiler)

    assert [
        (r.seq, r.u, r.v, r.in_spanner, r.probe_total)
        for r in plain_engine.records
    ] == [
        (r.seq, r.u, r.v, r.in_spanner, r.probe_total)
        for r in traced_engine.records
    ]
    assert plain.latency.as_dict() == traced.latency.as_dict()
    assert plain.probe_stats.total == traced.probe_stats.total
    # ... and the observation actually happened.
    assert tracer.finished()
    names = {span.name for span in tracer.finished()}
    assert {"service.run", "service.batch"} <= names
    assert profiler.outcome_calls["memo-hit"] + profiler.outcome_calls["cold"] > 0


def test_engine_traces_are_deterministic():
    graph = gnp_graph(70, 0.15, seed=11).to_backend("csr")
    exports = []
    for _ in range(2):
        tracer = SpanTracer()
        run_engine(graph, tracer=tracer, profiler=ProbeProfiler())
        exports.append(trace_jsonl(tracer))
    assert exports[0] == exports[1]


def test_chaos_scenario_traces_are_byte_identical():
    (spec,) = load_scenario_file(SCENARIOS_DIR / "chaos_crash_churn.toml")
    assert spec.observability is not None and spec.observability.trace
    exports = []
    for _ in range(2):
        tracer = SpanTracer(capacity=spec.observability.capacity)
        result = run_scenario(spec, smoke=True, tracer=tracer)
        exports.append(trace_jsonl(tracer))
        # The storm actually ran and was traced.
        assert result.service["faults"]["crashes"] > 0
        fault_spans = [s for s in tracer.finished() if s.cat == "fault"]
        assert fault_spans
    assert exports[0] == exports[1]
    assert exports[0]


def test_scenario_payload_carries_observability_block():
    (spec, _) = load_scenario_file(SCENARIOS_DIR / "observability_smoke.toml")
    result = run_scenario(spec, smoke=True)
    obs = result.service["observability"]
    assert obs["trace"]["spans"] > 0
    assert obs["trace"]["dropped"] == 0
    assert obs["trace"]["summary"]
    assert obs["profile"]["phases"]
    metrics = obs["metrics"]["metrics"]
    for name in (
        "service.requests.served",
        "cache.lookups.hits",
        "probes.total",
        "executor.shards",
        "faults.availability",
    ):
        assert name in metrics, name


def test_render_includes_observability_sections():
    (spec, _) = load_scenario_file(SCENARIOS_DIR / "observability_smoke.toml")
    result = run_scenario(spec, smoke=True)
    report = render_report([result.as_dict()])
    assert "## Trace summary (observability scenarios)" in report
    assert "## Probe attribution by kernel phase" in report
    assert "## Probe attribution by cache outcome" in report
    assert "service.batch" in report
    assert "memo-hit" in report
    # Rendering twice from the same payload is byte-stable.
    assert report == render_report([result.as_dict()])


def test_scenarios_without_observability_render_empty_sections():
    import dataclasses

    (spec, _) = load_scenario_file(SCENARIOS_DIR / "observability_smoke.toml")
    bare = run_scenario(dataclasses.replace(spec, observability=None), smoke=True)
    assert bare.service.get("observability") is None
    report = render_report([bare.as_dict()])
    assert "## Trace summary (observability scenarios)" in report
