"""Tests for the multiple-center system (Idea I)."""

from __future__ import annotations

from repro.core.oracle import AdjacencyListOracle
from repro.graphs import Graph, gnp_graph
from repro.spanner3.centers import PrefixCenterSystem


def make_system(prefix=4, probability=0.5, seed=3):
    return PrefixCenterSystem(
        seed=seed, probability=probability, prefix=prefix, independence=8
    )


def test_center_membership_is_probe_free():
    system = make_system()
    graph = gnp_graph(30, 0.3, seed=1)
    oracle = AdjacencyListOracle(graph)
    _ = [system.is_center(v) for v in graph.vertices()]
    assert oracle.counter.total == 0


def test_center_set_is_prefix_of_neighbors():
    graph = Graph.from_edges([(0, i) for i in range(1, 10)])
    system = make_system(prefix=4, probability=1.0)
    oracle = AdjacencyListOracle(graph)
    centers = system.center_set(oracle, 0)
    assert centers == list(graph.neighbors(0))[:4]
    # probes: one Degree + four Neighbor
    assert oracle.counter.degree == 1
    assert oracle.counter.neighbor == 4


def test_center_set_respects_sampling():
    graph = Graph.from_edges([(0, i) for i in range(1, 30)])
    system = make_system(prefix=29, probability=0.4, seed=10)
    oracle = AdjacencyListOracle(graph)
    centers = set(system.center_set(oracle, 0))
    expected = {w for w in graph.neighbors(0) if system.is_center(w)}
    assert centers == expected
    assert 0 < len(centers) < 29


def test_cluster_membership_single_adjacency_probe():
    graph = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
    system = make_system(prefix=2, probability=1.0)
    oracle = AdjacencyListOracle(graph)
    first_two = list(graph.neighbors(0))[:2]
    third = list(graph.neighbors(0))[2]
    before = oracle.counter.adjacency
    assert system.in_cluster_of(oracle, 0, first_two[0])
    assert oracle.counter.adjacency == before + 1
    assert not system.in_cluster_of(oracle, 0, third)


def test_cluster_membership_false_for_non_centers():
    graph = Graph.from_edges([(0, 1)])
    system = make_system(prefix=5, probability=0.0)
    oracle = AdjacencyListOracle(graph)
    assert not system.in_cluster_of(oracle, 0, 1)
    # non-centers are rejected without any probe
    assert oracle.counter.total == 0


def test_is_center_edge_checks_both_directions():
    graph = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
    system = make_system(prefix=1, probability=1.0)
    oracle = AdjacencyListOracle(graph)
    for (u, v) in graph.edges():
        expected = (
            system.in_cluster_of(oracle, u, v) or system.in_cluster_of(oracle, v, u)
        )
        assert system.is_center_edge(oracle, u, v) == expected


def test_global_and_oracle_versions_agree():
    graph = gnp_graph(40, 0.25, seed=5)
    system = make_system(prefix=5, probability=0.5, seed=2)
    oracle = AdjacencyListOracle(graph)
    for v in graph.vertices():
        assert system.center_set(oracle, v) == system.center_set_global(graph, v)
    for (u, v) in list(graph.edges())[:30]:
        assert system.in_cluster_of(oracle, u, v) == system.in_cluster_of_global(
            graph, u, v
        )
