"""Property pin of ``LatencyStats.merge`` against the flat-list oracle.

``merge`` combines two already-sorted per-shard sample views with a linear
two-pointer pass instead of concatenating and re-sorting.  The oracle here
is the behavior it replaces: a fresh ``LatencyStats`` fed every sample of
both sides through :meth:`add`.  Summaries (count, mean, max, every pinned
percentile) must be identical, and the maintained sorted view must be the
true sorted union — including duplicate and negative-magnitude floats.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.metrics import LatencyStats

samples = st.lists(
    st.floats(
        min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
    ),
    max_size=60,
)


def from_samples(values):
    stats = LatencyStats()
    for value in values:
        stats.add(value)
    return stats


@settings(deadline=None, max_examples=200)
@given(left=samples, right=samples)
def test_merge_matches_flat_list_oracle(left, right):
    merged = from_samples(left)
    merged.merge(from_samples(right))
    oracle = from_samples(left + right)
    assert merged.samples_s == oracle.samples_s
    assert merged._sorted_samples() == sorted(left + right)
    assert merged.as_dict() == oracle.as_dict()


@settings(deadline=None, max_examples=100)
@given(left=samples, middle=samples, right=samples)
def test_merge_chains_like_one_big_summary(left, middle, right):
    pool = from_samples(left)
    pool.merge(from_samples(middle))
    pool.merge(from_samples(right))
    oracle = from_samples(left + middle + right)
    assert pool.as_dict() == oracle.as_dict()


def test_merge_empty_sides_are_noops():
    stats = from_samples([0.25, 0.5])
    stats.merge(LatencyStats())
    assert stats.samples_s == [0.25, 0.5]
    empty = LatencyStats()
    empty.merge(from_samples([1.0]))
    assert empty.samples_s == [1.0]
    assert empty.percentile_s(50) == 1.0


def test_merge_does_not_mutate_the_other_side():
    left = from_samples([3.0, 1.0])
    right = from_samples([2.0])
    left.merge(right)
    assert right.samples_s == [2.0]
    assert left._sorted_samples() == [1.0, 2.0, 3.0]
