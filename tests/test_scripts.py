"""CI gate scripts: docstring coverage and Markdown link checking."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = REPO_ROOT / "scripts"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPTS / script), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=120,
    )


def test_check_docs_passes_on_the_tree():
    completed = _run("check_docs.py")
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "OK" in completed.stdout


def test_check_links_passes_on_repo_markdown():
    completed = _run("check_links.py")
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "OK" in completed.stdout


def test_check_links_flags_broken_relative_links(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "see [good](page.md) and [bad](missing/page.md)\n", encoding="utf-8"
    )
    completed = _run("check_links.py", str(page))
    assert completed.returncode == 1
    assert "missing/page.md" in completed.stdout


def test_check_links_rejects_missing_target(tmp_path):
    completed = _run("check_links.py", str(tmp_path / "ghost.md"))
    assert completed.returncode == 2
