"""Profiler phase attribution under the vectorized kernels.

The :class:`~repro.obs.profiler.ProbeProfiler` attributes probes to
algorithmic phases (``bfs``, ``voronoi``, ``neighbor-scan``).  The batched
numpy kernels replay those phase boundaries in bulk — one frame covering many
scalar-equivalent calls, with the call count carried explicitly — so the
attribution a profiler reports must be *identical* to the scalar path: same
per-phase probe totals, same per-kind splits, same call counts.  That parity
is what keeps flame-style probe attribution trustworthy regardless of which
kernel produced the numbers.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro import graphs
from repro.core.registry import create
from repro.obs import ProbeProfiler
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


@pytest.fixture(autouse=True)
def force_kernel_paths(monkeypatch):
    from repro.kernels import bfs as kernel_bfs
    from repro.kernels import spanner5 as kernel_spanner5
    from repro.kernels.engine import NumpyKernel

    monkeypatch.setattr(kernel_bfs, "_MIN_BATCH_WORK", 0)
    monkeypatch.setattr(kernel_spanner5, "_MIN_GRID", 0)
    monkeypatch.setattr(NumpyKernel, "min_explore_work", 0)


def _profile(make_lca, kernel):
    lca = make_lca().set_kernel(kernel)
    profiler = ProbeProfiler()
    lca.attach_profiler(profiler)
    lca.materialize(mode="batched")
    payload = profiler.as_dict()
    return payload["phases"], dict(profiler.phase_calls)


def test_spanner3_neighbor_scan_attribution_matches_scalar():
    def make_lca():
        graph = graphs.gnp_graph(70, 0.25, seed=11).to_backend("csr")
        return create("spanner3", graph, seed=5, hitting_constant=1.0)

    scalar_phases, scalar_calls = _profile(make_lca, "python")
    numpy_phases, numpy_calls = _profile(make_lca, "numpy")
    assert scalar_phases == numpy_phases
    assert scalar_calls == numpy_calls
    assert scalar_phases.get("neighbor-scan", {}).get("total", 0) > 0


def test_spannerk_bfs_and_voronoi_attribution_matches_scalar():
    def make_lca():
        graph = graphs.bounded_degree_expanderish(80, d=4, seed=3).to_backend("csr")
        params = KSquaredParams(
            num_vertices=graph.num_vertices,
            stretch_parameter=2,
            exploration_budget=6,
            center_probability=0.3,
            mark_probability=0.25,
            rank_quota=20,
            independence=12,
        )
        return KSquaredSpannerLCA(graph, seed=7, params=params)

    scalar_phases, scalar_calls = _profile(make_lca, "python")
    numpy_phases, numpy_calls = _profile(make_lca, "numpy")
    assert scalar_phases == numpy_phases
    assert scalar_calls == numpy_calls
    assert scalar_phases.get("bfs", {}).get("total", 0) > 0


def test_spanner5_attribution_matches_scalar():
    def make_lca():
        graph = graphs.dense_cluster_graph(
            80, 10, inter_probability=0.05, seed=5
        ).to_backend("csr")
        return create("spanner5", graph, seed=5, hitting_constant=1.0)

    scalar_phases, scalar_calls = _profile(make_lca, "python")
    numpy_phases, numpy_calls = _profile(make_lca, "numpy")
    assert scalar_phases == numpy_phases
    assert scalar_calls == numpy_calls
