"""Cold-schedule charging is order-independent under interleaved queries.

The accounting contract of :mod:`repro.core.cache` says every query is
charged the probes of its *cold-cache* schedule — a pure function of
``(graph, seed, query)`` — no matter which queries ran before it and warmed
the memo tables.  The backend-equivalence suite pins this end-to-end for
materializations (one fixed edge order); these tests attack the contract
where it is actually at risk: per-query charges under *interleaved* and
*reordered* query streams, including streams interleaved across different
constructions, which is exactly the access pattern the service layer's
sharded pool produces.
"""

from __future__ import annotations

import random

import pytest

from repro import graphs
from repro.core.registry import create
from repro.spannerk import KSquaredParams, KSquaredSpannerLCA


def _spanner3(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def _spanner5(graph):
    return create("spanner5", graph, seed=5, hitting_constant=1.0)


def _spannerk(graph):
    params = KSquaredParams(
        num_vertices=graph.num_vertices,
        stretch_parameter=2,
        exploration_budget=6,
        center_probability=0.3,
        mark_probability=0.25,
        rank_quota=20,
        independence=12,
    )
    return KSquaredSpannerLCA(graph, seed=7, params=params)


FACTORIES = {"spanner3": _spanner3, "spanner5": _spanner5, "spannerk": _spannerk}


@pytest.fixture(scope="module")
def graph():
    """One shared graph for all constructions, so streams can interleave."""
    return graphs.gnp_graph(60, 0.25, seed=11)


@pytest.fixture(scope="module")
def cold_reference(graph):
    """Per-construction map ``edge -> cold per-kind probe snapshot``."""
    reference = {}
    for name, factory in FACTORIES.items():
        lca = factory(graph)  # cold mode: every query re-derives from scratch
        reference[name] = {
            (u, v): lca.query_with_stats(u, v).probes for (u, v) in graph.edges()
        }
    return reference


def _orders(edges):
    shuffled = list(edges)
    random.Random("interleave:1").shuffle(shuffled)
    return {
        "forward": list(edges),
        "reverse": list(reversed(edges)),
        "shuffled": shuffled,
    }


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_per_query_charges_are_independent_of_query_order(
    name, graph, cold_reference
):
    """Any permutation of the stream charges each edge its cold snapshot."""
    edges = list(graph.edges())
    for label, order in _orders(edges).items():
        lca = FACTORIES[name](graph).set_query_mode("cached")
        for (u, v) in order:
            snapshot = lca.query_with_stats(u, v).probes
            assert snapshot == cold_reference[name][(u, v)], (name, label, (u, v))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_repeats_interleaved_with_new_queries_recharge_identically(
    name, graph, cold_reference
):
    """A hot repeat sandwiched between cold first-touches charges the same
    cold schedule both times."""
    edges = list(graph.edges())[:60]
    lca = FACTORIES[name](graph).set_query_mode("cached")
    first_charge = {}
    for index, (u, v) in enumerate(edges):
        snapshot = lca.query_with_stats(u, v).probes
        first_charge[(u, v)] = snapshot
        if index >= 1:  # repeat an earlier (now memoized) query immediately
            prev = edges[index // 2]
            again = lca.query_with_stats(*prev).probes
            assert again == first_charge[prev], (name, prev)
            assert again == cold_reference[name][prev], (name, prev)


def test_interleaving_across_constructions_does_not_cross_charge(
    graph, cold_reference
):
    """Round-robin the same stream through all three constructions at once;
    every construction still charges its own cold schedule per query."""
    edges = list(graph.edges())
    lcas = {
        name: factory(graph).set_query_mode("cached")
        for name, factory in FACTORIES.items()
    }
    rotation = sorted(FACTORIES)
    for index, (u, v) in enumerate(edges):
        # One construction answers this edge; the others answer neighbors of
        # the stream position, so all memo tables warm out of lockstep.
        for offset, name in enumerate(rotation):
            (a, b) = edges[(index + offset) % len(edges)]
            snapshot = lcas[name].query_with_stats(a, b).probes
            assert snapshot == cold_reference[name][(a, b)], (name, (a, b))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_orientation_has_its_own_cold_schedule(name, graph, cold_reference):
    """(u, v) and (v, u) may probe differently; each orientation must be
    charged its own cold schedule even when the other is already memoized."""
    edges = list(graph.edges())[:40]
    cold = FACTORIES[name](graph)
    reversed_reference = {
        (v, u): cold.query_with_stats(v, u).probes for (u, v) in edges
    }
    cached = FACTORIES[name](graph).set_query_mode("cached")
    for (u, v) in edges:
        forward = cached.query_with_stats(u, v).probes
        backward = cached.query_with_stats(v, u).probes
        assert forward == cold_reference[name][(u, v)], (name, (u, v))
        assert backward == reversed_reference[(v, u)], (name, (v, u))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_query_batch_totals_match_interleaved_per_query_path(name, graph):
    """The streaming batch engine charges the same per-request totals as the
    per-query API for an interleaved, repeat-heavy stream."""
    edges = list(graph.edges())[:50]
    stream = edges + [(v, u) for (u, v) in edges[:20]] + edges[:10]
    batch = FACTORIES[name](graph).query_batch(stream)
    per_query = FACTORIES[name](graph).set_query_mode("cached")
    for (u, v), answer, total in batch:
        outcome = per_query.query_with_stats(u, v)
        assert outcome.in_spanner == answer, (name, (u, v))
        assert outcome.probe_total == total, (name, (u, v))
