"""Tests for the classic LCAs (MIS, maximal matching, vertex cover)."""

from __future__ import annotations

import pytest

from repro.core.errors import NotAnEdgeError, UnknownVertexError
from repro.graphs import cycle_graph, gnp_graph, star_graph
from repro.lca_classic import (
    MaximalIndependentSetLCA,
    MaximalMatchingLCA,
    VertexCoverLCA,
    greedy_matching_reference,
    greedy_mis_reference,
)


@pytest.fixture
def graph():
    return gnp_graph(60, 0.1, seed=8)


# --------------------------------------------------------------------------- #
# Maximal independent set
# --------------------------------------------------------------------------- #
def test_mis_is_independent_and_maximal(graph):
    lca = MaximalIndependentSetLCA(graph, seed=4)
    mis = lca.materialize()
    for (u, v) in graph.edges():
        assert not (u in mis and v in mis)  # independence
    for v in graph.vertices():
        if v not in mis:
            assert any(w in mis for w in graph.neighbors(v))  # maximality


def test_mis_matches_sequential_greedy(graph):
    lca = MaximalIndependentSetLCA(graph, seed=4)
    assert lca.materialize() == greedy_mis_reference(graph, lca)


def test_mis_is_deterministic_and_validates_vertices(graph):
    lca = MaximalIndependentSetLCA(graph, seed=4)
    v = graph.vertices()[0]
    assert lca.query(v) == lca.query(v)
    with pytest.raises(UnknownVertexError):
        lca.query(10**9)
    assert lca.probe_stats.queries >= 2


def test_mis_on_star_graph():
    graph = star_graph(20)
    lca = MaximalIndependentSetLCA(graph, seed=1)
    mis = lca.materialize()
    # either the hub alone, or all leaves
    assert mis == {0} or mis == set(range(1, 20))


# --------------------------------------------------------------------------- #
# Maximal matching / vertex cover
# --------------------------------------------------------------------------- #
def test_matching_is_a_matching_and_maximal(graph):
    lca = MaximalMatchingLCA(graph, seed=9)
    matching = lca.materialize()
    used = {}
    for (u, v) in matching:
        assert used.setdefault(u, (u, v)) == (u, v)
        assert used.setdefault(v, (u, v)) == (u, v)
    matched_vertices = set(used)
    for (u, v) in graph.edges():
        assert u in matched_vertices or v in matched_vertices  # maximality


def test_matching_matches_sequential_greedy(graph):
    lca = MaximalMatchingLCA(graph, seed=9)
    assert lca.materialize() == greedy_matching_reference(graph, lca)


def test_matching_rejects_non_edges(graph):
    lca = MaximalMatchingLCA(graph, seed=9)
    non_edge = None
    for u in graph.vertices():
        for v in graph.vertices():
            if u != v and not graph.has_edge(u, v):
                non_edge = (u, v)
                break
        if non_edge:
            break
    with pytest.raises(NotAnEdgeError):
        lca.query(*non_edge)
    with pytest.raises(UnknownVertexError):
        lca.query(10**9, 10**9 + 1)


def test_matching_orientation_independent():
    graph = cycle_graph(12)
    lca = MaximalMatchingLCA(graph, seed=2)
    for (u, v) in graph.edges():
        assert lca.query(u, v) == lca.query(v, u)


def test_vertex_cover_covers_every_edge(graph):
    cover_lca = VertexCoverLCA(graph, seed=9)
    cover = cover_lca.materialize()
    for (u, v) in graph.edges():
        assert u in cover or v in cover


def test_vertex_cover_is_twice_matching():
    graph = cycle_graph(16)
    matching = MaximalMatchingLCA(graph, seed=3).materialize()
    cover = VertexCoverLCA(graph, seed=3).materialize()
    assert len(cover) == 2 * len(matching)


def test_vertex_cover_validates_vertices(graph):
    cover_lca = VertexCoverLCA(graph, seed=9)
    with pytest.raises(UnknownVertexError):
        cover_lca.query(10**9)
