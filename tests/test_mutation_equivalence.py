"""The mutation-plane equivalence oracle.

The correctness backbone of the dynamic graph support: after *any* mutation
sequence, a live LCA — with all its epoch-tagged memo state accumulated
across earlier queries and earlier graph versions — must answer exactly
like a from-scratch LCA built on the post-mutation edge set.  "Exactly"
means bit-identical spanner edge sets, bit-identical per-query probe
totals, and identical per-kind probe counts, across all three spanner
families and both storage backends.
"""

from __future__ import annotations

import random

import pytest

from repro import graphs
from repro.core.registry import create
from repro.graphs import Graph

ALGORITHMS = ("spanner3", "spanner5", "spannerk")


def _signature(lca):
    """Everything equivalence cares about, from one full materialization."""
    before = lca.probe_counter.snapshot()
    materialized = lca.materialize(mode="batched")
    per_kind = lca.probe_counter.snapshot() - before
    return (
        frozenset(materialized.edges),
        tuple(materialized.probe_stats.query_totals),
        (per_kind.neighbor, per_kind.degree, per_kind.adjacency),
    )


def _mutate_randomly(graph, rng, steps, min_edges=15):
    edge_set = {tuple(sorted(e)) for e in graph.edges()}
    vertices = graph.vertices()
    for _ in range(steps):
        if rng.random() < 0.5 and len(edge_set) > min_edges:
            u, v = rng.choice(sorted(edge_set))
            edge_set.discard((u, v))
            graph.remove_edge(u, v)
        else:
            while True:
                u = vertices[rng.randrange(len(vertices))]
                v = vertices[rng.randrange(len(vertices))]
                if u != v and tuple(sorted((u, v))) not in edge_set:
                    break
            edge_set.add(tuple(sorted((u, v))))
            graph.add_edge(u, v)


def _fresh_rebuild(graph, algorithm, seed, **kwargs):
    """A from-scratch LCA on a from-scratch graph with the current rows."""
    rebuilt = type(graph)(graph.as_adjacency(), validate=True)
    return create(algorithm, rebuilt, seed=seed, **kwargs)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend", ("dict", "csr"))
def test_mutated_lca_matches_from_scratch_rebuild(algorithm, backend):
    graph = graphs.gnp_graph(45, 0.12, seed=21).to_backend(backend)
    lca = create(algorithm, graph, seed=9)
    lca.materialize(mode="batched")  # warm every memo layer pre-mutation

    rng = random.Random(f"{algorithm}:{backend}")
    for round_index in range(4):
        _mutate_randomly(graph, rng, steps=7)
        # Interleave reads so the cache keeps re-warming between rounds.
        lca.query_batch(list(graph.edges())[: 12 + round_index])

    assert lca.graph_epoch == 28
    live = _signature(lca)
    fresh = _signature(_fresh_rebuild(graph, algorithm, seed=9))
    assert live[0] == fresh[0], "spanner edge sets diverged after mutations"
    assert live[1] == fresh[1], "per-query probe totals diverged"
    assert live[2] == fresh[2], "per-kind probe counts diverged"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_single_mutations_invalidate_exactly_what_they_touch(algorithm):
    """Add one edge, remove one edge: answers track the graph immediately."""
    graph = graphs.gnp_graph(36, 0.15, seed=4).to_backend("csr")
    lca = create(algorithm, graph, seed=3)
    lca.materialize(mode="batched")

    edges = list(graph.edges())
    victim = edges[len(edges) // 2]
    graph.remove_edge(*victim)
    live = _signature(lca)
    fresh = _signature(_fresh_rebuild(graph, algorithm, seed=3))
    assert live == fresh

    graph.add_edge(*victim)  # re-added at the end of both rows
    live = _signature(lca)
    fresh = _signature(_fresh_rebuild(graph, algorithm, seed=3))
    assert live == fresh


def test_compaction_never_changes_answers_or_probes():
    graph = graphs.gnp_graph(40, 0.15, seed=13).to_backend("csr")
    lca = create("spanner3", graph, seed=5)
    rng = random.Random(99)
    _mutate_randomly(graph, rng, steps=10)
    before = _signature(lca)
    assert graph.delta_count > 0
    graph.compact()
    assert graph.delta_count == 0
    assert _signature(lca) == before


def test_mutation_aware_parallel_materialization_matches_serial():
    """Post-mutation parallel runs export the compacted graph and fold back
    bit-identical results."""
    graph = graphs.gnp_graph(40, 0.2, seed=8).to_backend("csr")
    lca = create("spanner3", graph, seed=2)
    lca.materialize(mode="batched")
    rng = random.Random(5)
    _mutate_randomly(graph, rng, steps=9)

    serial = _fresh_rebuild(graph, "spanner3", seed=2).materialize(mode="batched")
    parallel = lca.materialize(executor="process", workers=2)
    assert parallel.edges == serial.edges
    assert (
        parallel.probe_stats.query_totals == serial.probe_stats.query_totals
    )


def test_spannerk_shared_cache_mode_survives_mutations():
    """The coarse epoch guard on the spannerk shared exploration cache:
    answers under shared_cache=True must track mutations (probe accounting
    under shared_cache differs from cold by design, so only answers pin)."""
    graph = graphs.bounded_degree_expanderish(60, d=4, seed=6)
    lca = create("spannerk", graph, seed=4, shared_cache=True)
    lca.materialize(mode="batched")
    rng = random.Random(17)
    _mutate_randomly(graph, rng, steps=6)
    live = lca.materialize(mode="batched")
    fresh = create(
        "spannerk",
        Graph(graph.as_adjacency(), validate=True),
        seed=4,
        shared_cache=True,
    ).materialize(mode="batched")
    assert live.edges == fresh.edges
    assert live.probe_stats.query_totals == fresh.probe_stats.query_totals
