"""Smoke tests: every shipped example runs successfully on small inputs.

The examples double as executable documentation; these tests keep them
working as the library evolves.  Each example is invoked as a subprocess the
way a user would run it, with arguments small enough for the whole module to
finish in a couple of seconds.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["120", "0.2", "3"]),
    ("social_network_queries.py", ["200", "40", "5"]),
    ("cluster_overlay.py", ["6", "8", "2"]),
    ("lower_bound_demo.py", ["26", "4", "1"]),
    ("probe_budget_study.py", ["200", "0.15", "3"]),
    ("stretch_certificates.py", ["90", "0.3", "2"]),
    ("serve_demo.py", ["150", "0.1", "400"]),
]


@pytest.mark.parametrize("script, args", CASES, ids=[c[0] for c in CASES])
def test_example_runs_cleanly(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    completed = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert completed.stdout.strip(), "examples must print a report"


def test_examples_directory_has_quickstart_plus_scenarios():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 4  # quickstart plus at least three scenarios


def test_every_example_is_covered_by_a_case():
    """No example may be skipped: adding a script without a CASES entry
    (and therefore without a smoke run) is a test failure, not a gap."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for (script, _args) in CASES}
    assert scripts == covered, (
        f"examples without a smoke-test case: {sorted(scripts - covered)}; "
        f"cases without a script: {sorted(covered - scripts)}"
    )


def test_examples_readme_catalogs_every_example():
    readme = (EXAMPLES_DIR / "README.md").read_text(encoding="utf-8")
    for script in (p.name for p in EXAMPLES_DIR.glob("*.py")):
        assert script in readme, f"examples/README.md does not mention {script}"
