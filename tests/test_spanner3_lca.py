"""End-to-end tests for the 3-spanner LCA (Theorem 1.1, r = 2)."""

from __future__ import annotations

import pytest

from repro import evaluate_lca, graphs
from repro.analysis import check_consistency, measure_stretch, preserves_connectivity
from repro.spanner3 import (
    ThreeSpannerLCA,
    ThreeSpannerParams,
    build_reference_spanner,
    classify_edges,
)


@pytest.fixture(params=["gnp", "hub", "clustered"])
def test_graph(request):
    if request.param == "gnp":
        return graphs.gnp_graph(90, 0.25, seed=11)
    if request.param == "hub":
        return graphs.planted_hub_graph(120, num_hubs=4, hub_degree=60, seed=9)
    return graphs.dense_cluster_graph(100, 10, inter_probability=0.05, seed=5)


def test_spanner_is_subgraph_with_stretch_at_most_three(test_graph):
    lca = ThreeSpannerLCA(test_graph, seed=7)
    report = evaluate_lca(lca)
    assert report.stretch.is_finite
    assert report.stretch.max_stretch <= 3
    assert report.connectivity_preserved


def test_lca_matches_global_reference_construction(test_graph):
    lca = ThreeSpannerLCA(test_graph, seed=7)
    materialized = lca.materialize()
    reference = build_reference_spanner(lca)
    assert materialized.edges == reference


def test_answers_are_consistent_and_order_independent(tiny_graph):
    lca = ThreeSpannerLCA(tiny_graph, seed=3)
    assert check_consistency(lca)


def test_same_seed_same_spanner_different_seed_may_differ(small_dense_graph):
    first = ThreeSpannerLCA(small_dense_graph, seed=5).materialize().edges
    second = ThreeSpannerLCA(small_dense_graph, seed=5).materialize().edges
    assert first == second
    third = ThreeSpannerLCA(small_dense_graph, seed=6).materialize().edges
    # different seed gives a valid spanner; it need not be identical
    assert measure_stretch(small_dense_graph, third, limit=4).max_stretch <= 3


def test_low_degree_edges_always_kept(hub_graph):
    lca = ThreeSpannerLCA(hub_graph, seed=2)
    params = lca.params
    for (u, v) in hub_graph.edges():
        if min(hub_graph.degree(u), hub_graph.degree(v)) <= params.low_threshold:
            assert lca.query(u, v)


def test_works_with_non_contiguous_vertex_ids():
    base = graphs.gnp_graph(70, 0.3, seed=4)
    relabeled = graphs.relabel_randomly(base, seed=8)
    lca = ThreeSpannerLCA(relabeled, seed=1)
    report = evaluate_lca(lca)
    assert report.stretch.max_stretch <= 3
    assert report.connectivity_preserved


def test_robust_to_adjacency_list_order():
    edges = list(graphs.gnp_graph(80, 0.3, seed=10).edges())
    for shuffle_seed in (1, 2):
        graph = graphs.Graph.from_edges(edges, shuffle_seed=shuffle_seed)
        lca = ThreeSpannerLCA(graph, seed=4)
        report = evaluate_lca(lca)
        assert report.stretch.max_stretch <= 3


def test_probe_complexity_stays_moderate(small_dense_graph):
    """Per-query probes stay well below reading the whole graph."""
    lca = ThreeSpannerLCA(small_dense_graph, seed=7)
    report = evaluate_lca(lca)
    # 2m (all adjacency lists) is the trivial upper bound; the LCA must do
    # substantially better even at this small scale.
    assert report.probe_max < small_dense_graph.num_edges
    assert report.probe_mean < report.probe_max


def test_disconnected_graph_components_preserved():
    graph = graphs.disjoint_union(
        [graphs.gnp_graph(40, 0.3, seed=1), graphs.gnp_graph(40, 0.3, seed=2)]
    )
    lca = ThreeSpannerLCA(graph, seed=9)
    materialized = lca.materialize()
    assert preserves_connectivity(graph, materialized.edges)
    stretch = measure_stretch(graph, materialized.edges, limit=4)
    assert stretch.max_stretch <= 3


def test_classify_edges_partitions_all_edges(small_dense_graph):
    lca = ThreeSpannerLCA(small_dense_graph, seed=7)
    counts = classify_edges(lca)
    assert sum(counts.values()) == small_dense_graph.num_edges
    assert set(counts) == {"low", "high", "super"}


def test_stretch_bound_is_three(small_dense_graph):
    assert ThreeSpannerLCA(small_dense_graph, seed=0).stretch_bound() == 3


def test_explicit_params_are_respected(small_dense_graph):
    params = ThreeSpannerParams.for_graph(
        small_dense_graph.num_vertices, hitting_constant=1.0
    )
    lca = ThreeSpannerLCA(small_dense_graph, seed=7, params=params)
    assert lca.params is params
    report = evaluate_lca(lca)
    assert report.stretch.max_stretch <= 3


def test_star_graph_keeps_all_edges():
    star = graphs.star_graph(50)
    lca = ThreeSpannerLCA(star, seed=1)
    # every edge touches a degree-1 vertex → E_low keeps everything
    assert lca.materialize().num_edges == star.num_edges


# fixtures from conftest are used directly in some tests above
@pytest.fixture
def tiny_graph():
    return graphs.gnp_graph(24, 0.3, seed=2)


@pytest.fixture
def small_dense_graph():
    return graphs.gnp_graph(90, 0.25, seed=11)


@pytest.fixture
def hub_graph():
    return graphs.planted_hub_graph(120, num_hubs=4, hub_degree=60, seed=9)
