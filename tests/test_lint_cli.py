"""The `repro lint` CLI: formats, exit codes, byte-stable output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import LINT_SCHEMA, format_json, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent

DIRTY = '"""Fixture."""\nimport time\n\n\ndef stamp():\n    return time.time()\n'
CLEAN = '"""Fixture."""\n\n\ndef identity(x):\n    return x\n'


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(DIRTY, encoding="utf-8")
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(CLEAN, encoding="utf-8")
    return tmp_path


def test_lint_exit_zero_and_summary_on_clean_tree(clean_tree, capsys):
    assert main(["lint", "--root", str(clean_tree)]) == 0
    out = capsys.readouterr().out
    assert "repro lint: 0 finding(s) in 1 file(s)" in out


def test_lint_exit_one_and_rendered_findings_on_dirty_tree(dirty_tree, capsys):
    assert main(["lint", "--root", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "src/mod.py:6:11: DET001" in out
    assert "repro lint: 1 finding(s)" in out


def test_lint_json_format_is_schema_versioned(dirty_tree, capsys):
    assert main(["lint", "--root", str(dirty_tree), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == LINT_SCHEMA
    assert document["files_checked"] == 1
    (finding,) = document["findings"]
    assert finding["code"] == "DET001"
    assert finding["path"] == "src/mod.py"
    assert "DET001" in document["rules"] and "IMP001" in document["rules"]


def test_lint_json_output_is_byte_stable(dirty_tree, capsys):
    main(["lint", "--root", str(dirty_tree), "--format", "json"])
    first = capsys.readouterr().out
    main(["lint", "--root", str(dirty_tree), "--format", "json"])
    second = capsys.readouterr().out
    assert first == second
    assert first == format_json(run_lint(root=dirty_tree))


def test_lint_accepts_explicit_paths(dirty_tree, capsys):
    (dirty_tree / "src" / "ok.py").write_text(CLEAN, encoding="utf-8")
    assert main(
        ["lint", "--root", str(dirty_tree), "src/ok.py"]
    ) == 0
    assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out


def test_lint_missing_target_is_a_clean_error(dirty_tree):
    with pytest.raises(SystemExit, match="lint:"):
        main(["lint", "--root", str(dirty_tree), "no/such/dir"])


def test_lint_explicit_baseline_overrides_default(dirty_tree, capsys):
    baseline = dirty_tree / "grants.toml"
    baseline.write_text(
        'schema = 1\n\n[[allow]]\ncode = "DET001"\npath = "src/*.py"\n'
        'reason = "fixture grant"\n',
        encoding="utf-8",
    )
    assert main(
        ["lint", "--root", str(dirty_tree), "--baseline", str(baseline)]
    ) == 0
    assert "(1 baselined" in capsys.readouterr().out


def test_lint_malformed_baseline_is_a_clean_error(dirty_tree):
    baseline = dirty_tree / "grants.toml"
    baseline.write_text("schema = 99\n", encoding="utf-8")
    with pytest.raises(SystemExit, match="lint:"):
        main(["lint", "--root", str(dirty_tree), "--baseline", str(baseline)])
