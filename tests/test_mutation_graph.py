"""Graph-level mutation plane: overlay semantics, epochs, edge cases.

Both storage backends must expose identical mutation behavior: appends land
at the end of both rows, removals preserve the survivors' order, and every
mutation bumps the endpoints' epochs.  The CSR backend additionally keeps a
delta overlay whose compaction must be observably invisible.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import GraphError, UnknownVertexError
from repro.graphs import Graph

BACKENDS = ("dict", "csr")


def _graph(backend, edges, vertices=None):
    return Graph.from_edges(edges, vertices=vertices, backend=backend)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


# --------------------------------------------------------------------------- #
# Basic semantics
# --------------------------------------------------------------------------- #
def test_add_edge_appends_to_the_end_of_both_rows(backend):
    graph = _graph(backend, [(0, 1), (1, 2), (2, 3)])
    graph.add_edge(0, 3)
    assert graph.neighbors(0) == (1, 3)
    assert graph.neighbors(3) == (2, 0)
    assert graph.num_edges == 4
    assert graph.has_edge(0, 3) and graph.has_edge(3, 0)
    assert graph.adjacency_index(0, 3) == 1
    assert graph.adjacency_index(3, 0) == 1


def test_remove_edge_preserves_survivor_order(backend):
    graph = _graph(backend, [(0, 1), (0, 2), (0, 3), (0, 4), (2, 3)])
    graph.remove_edge(0, 2)
    assert graph.neighbors(0) == (1, 3, 4)
    assert graph.neighbors(2) == (3,)
    assert graph.num_edges == 4
    assert not graph.has_edge(0, 2)
    assert graph.adjacency_index(0, 3) == 1  # shifted down


def test_readding_a_removed_edge_moves_it_to_the_row_end(backend):
    graph = _graph(backend, [(0, 1), (0, 2), (0, 3)])
    graph.remove_edge(0, 1)
    graph.add_edge(0, 1)
    assert graph.neighbors(0) == (2, 3, 1)
    assert graph.degree(0) == 3


def test_mutation_bumps_epochs_of_exactly_the_endpoints(backend):
    graph = _graph(backend, [(0, 1), (1, 2), (2, 3)])
    assert graph.epoch == 0
    assert all(graph.vertex_epoch(v) == 0 for v in graph.vertices())
    graph.add_edge(0, 3)
    assert graph.epoch == 1
    assert graph.vertex_epoch(0) == 1 and graph.vertex_epoch(3) == 1
    assert graph.vertex_epoch(1) == 0 and graph.vertex_epoch(2) == 0
    graph.remove_edge(1, 2)
    assert graph.epoch == 2
    assert graph.vertex_epoch(1) == 2 and graph.vertex_epoch(2) == 2
    assert graph.vertex_epoch(0) == 1  # untouched by the second mutation


def test_apply_mutation_routes_by_op_and_rejects_unknown_kinds(backend):
    graph = _graph(backend, [(0, 1), (1, 2)])
    graph.apply_mutation("add", 0, 2)
    graph.apply_mutation("remove", 0, 1)
    assert sorted(graph.edges()) == [(0, 2), (1, 2)]
    with pytest.raises(GraphError, match="unknown mutation op"):
        graph.apply_mutation("toggle", 0, 2)


# --------------------------------------------------------------------------- #
# Edge cases (satellite: mutation edge cases)
# --------------------------------------------------------------------------- #
def test_removing_a_nonexistent_edge_raises(backend):
    graph = _graph(backend, [(0, 1), (1, 2)])
    with pytest.raises(GraphError, match="not an edge"):
        graph.remove_edge(0, 2)
    # The failed call must not corrupt state or bump epochs.
    assert graph.epoch == 0
    assert graph.num_edges == 2


def test_adding_a_duplicate_edge_raises(backend):
    graph = _graph(backend, [(0, 1), (1, 2)])
    with pytest.raises(GraphError, match="already an edge"):
        graph.add_edge(1, 0)  # either orientation is a duplicate
    # A delta-overlay duplicate (added, not yet compacted) is caught too.
    graph.add_edge(0, 2)
    with pytest.raises(GraphError, match="already an edge"):
        graph.add_edge(2, 0)
    assert graph.epoch == 1


def test_self_loops_and_unknown_vertices_are_rejected(backend):
    graph = _graph(backend, [(0, 1)])
    with pytest.raises(GraphError, match="self loop"):
        graph.add_edge(1, 1)
    with pytest.raises(UnknownVertexError):
        graph.add_edge(0, 99)
    with pytest.raises(UnknownVertexError):
        graph.remove_edge(0, 99)


def test_mutating_an_isolated_vertex(backend):
    graph = _graph(backend, [(0, 1)], vertices=[0, 1, 2, 3])
    assert graph.degree(2) == 0
    graph.add_edge(2, 0)
    assert graph.neighbors(2) == (0,)
    assert graph.neighbors(0) == (1, 2)
    graph.remove_edge(2, 0)
    assert graph.degree(2) == 0
    assert graph.neighbors(2) == ()
    assert graph.has_vertex(2)  # removal never deletes the vertex
    # Vertex 3 stayed isolated and untouched throughout.
    assert graph.degree(3) == 0 and graph.vertex_epoch(3) == 0


def test_removing_a_vertexs_last_edge_leaves_it_isolated(backend):
    graph = _graph(backend, [(0, 1), (1, 2)])
    graph.remove_edge(0, 1)
    assert graph.degree(0) == 0
    assert graph.num_vertices == 3
    assert sorted(graph.edges()) == [(1, 2)]


# --------------------------------------------------------------------------- #
# CSR overlay + compaction
# --------------------------------------------------------------------------- #
def test_csr_compact_then_mutate_interleavings_match_dict_reference():
    rng = random.Random(77)
    edges = [(i, (i + 1) % 25) for i in range(25)]
    csr = _graph("csr", edges)
    ref = _graph("dict", edges)
    edge_set = {tuple(sorted(e)) for e in csr.edges()}
    for step in range(300):
        if rng.random() < 0.5 and len(edge_set) > 5:
            u, v = rng.choice(sorted(edge_set))
            edge_set.discard((u, v))
            csr.remove_edge(u, v)
            ref.remove_edge(u, v)
        else:
            while True:
                u, v = rng.randrange(25), rng.randrange(25)
                if u != v and tuple(sorted((u, v))) not in edge_set:
                    break
            edge_set.add(tuple(sorted((u, v))))
            csr.add_edge(u, v)
            ref.add_edge(u, v)
        if step % 37 == 0:
            csr.compact()
            assert csr.delta_count == 0
    assert csr.as_adjacency() == ref.as_adjacency()
    assert csr.num_edges == ref.num_edges
    assert csr.epoch == ref.epoch == 300
    csr.compact()
    assert csr.as_adjacency() == ref.as_adjacency()


def test_csr_compact_is_observably_invisible():
    graph = _graph("csr", [(0, 1), (1, 2), (2, 3), (3, 0)])
    graph.add_edge(0, 2)
    graph.remove_edge(1, 2)
    before = {
        "adjacency": graph.as_adjacency(),
        "edges": sorted(graph.edges()),
        "epoch": graph.epoch,
        "epochs": {v: graph.vertex_epoch(v) for v in graph.vertices()},
        "degrees": {v: graph.degree(v) for v in graph.vertices()},
        "max": graph.max_degree(),
        "min": graph.min_degree(),
    }
    assert graph.delta_count > 0
    graph.compact()
    assert graph.delta_count == 0
    after = {
        "adjacency": graph.as_adjacency(),
        "edges": sorted(graph.edges()),
        "epoch": graph.epoch,
        "epochs": {v: graph.vertex_epoch(v) for v in graph.vertices()},
        "degrees": {v: graph.degree(v) for v in graph.vertices()},
        "max": graph.max_degree(),
        "min": graph.min_degree(),
    }
    assert before == after


def test_csr_auto_compacts_past_the_threshold():
    graph = _graph("csr", [(i, (i + 1) % 60) for i in range(60)])
    graph.compact_threshold = 16
    for i in range(20):
        graph.add_edge(i, (i + 2) % 60)
    assert graph.delta_count <= 16
    assert graph.num_edges == 80


def test_to_shared_folds_pending_deltas_first():
    graph = _graph("csr", [(0, 1), (1, 2)])
    graph.add_edge(0, 2)
    graph.remove_edge(0, 1)
    export = graph.to_shared()
    try:
        assert graph.delta_count == 0  # compacted on export
        attached = export.handle.attach()
        try:
            assert attached.as_adjacency() == graph.as_adjacency()
        finally:
            attached.detach()
    finally:
        export.close()


def test_shared_csr_attachments_are_read_only():
    graph = _graph("csr", [(0, 1), (1, 2)])
    export = graph.to_shared()
    try:
        attached = export.handle.attach()
        try:
            with pytest.raises(GraphError, match="read-only"):
                attached.add_edge(0, 2)
            with pytest.raises(GraphError, match="read-only"):
                attached.remove_edge(0, 1)
        finally:
            attached.detach()
    finally:
        export.close()


def test_mutated_subgraphs_and_backend_conversion_see_current_rows(backend):
    graph = _graph(backend, [(0, 1), (1, 2), (2, 3)])
    graph.add_edge(0, 3)
    graph.remove_edge(1, 2)
    other = graph.to_backend("csr" if backend == "dict" else "dict")
    assert other.as_adjacency() == graph.as_adjacency()
    sub = graph.induced_subgraph([0, 1, 3])
    assert sorted(sub.edges()) == [(0, 1), (0, 3)]
    assert isinstance(graph.subgraph_with_edges([(0, 3)]), Graph)


def test_csr_overlay_iteration_does_not_materialize_view_tuples():
    """compact()/edges() on the delta path use the cache-free row accessor
    (regression: iterating self.neighbors(v) for every vertex pinned an
    O(m) tuple copy of the adjacency in the view cache)."""
    graph = _graph("csr", [(i, (i + 1) % 50) for i in range(50)])
    graph.add_edge(0, 25)
    views_before = len(graph._views)
    list(graph.edges())
    graph.max_degree(), graph.min_degree()
    graph.compact()
    assert len(graph._views) == views_before
