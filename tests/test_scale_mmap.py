"""Disk-backed CSR snapshots: round trip, read-only enforcement, lifecycle.

:func:`~repro.scale.snapshot.save_csr_snapshot` /
:func:`~repro.scale.snapshot.load_csr_snapshot` are the million-node loading
path: one flat file, mapped read-only, with the graph's CSR arrays viewed in
place.  These tests pin the format round trip (including non-contiguous
vertex ids), the :class:`~repro.graphs.csr.SharedCSRGraph`-style conventions
of the mapped view (read-only errors, idempotent detach, one-line lifecycle
errors, no pickling), and the equivalence of LCA answers and probe counts
between a mapped snapshot and the owned CSR graph it was saved from.
"""

from __future__ import annotations

import pickle

import pytest

from repro import graphs
from repro.core.errors import GraphError
from repro.core.registry import create
from repro.exec import MappedGraphRef, materialize_parallel
from repro.scale import (
    MappedCSRGraph,
    MappedCSRHandle,
    load_csr_snapshot,
    save_csr_snapshot,
)


@pytest.fixture
def snapshot_pair(tmp_path):
    """(owned CSR graph, path of its saved snapshot)."""
    graph = graphs.gnp_graph(50, 0.15, seed=8).to_backend("csr")
    path = tmp_path / "g.csr"
    save_csr_snapshot(graph, path)
    return graph, path


# --------------------------------------------------------------------------- #
# Round trip
# --------------------------------------------------------------------------- #
def test_round_trip_structure(snapshot_pair):
    graph, path = snapshot_pair
    with load_csr_snapshot(path) as mapped:
        assert isinstance(mapped, MappedCSRGraph)
        assert mapped.backend == "csr-mapped"
        assert mapped.num_vertices == graph.num_vertices
        assert mapped.num_edges == graph.num_edges
        for v in graph.vertices():
            assert list(mapped.neighbors(v)) == list(graph.neighbors(v))
            assert mapped.degree(v) == graph.degree(v)
        assert sorted(mapped.edges()) == sorted(graph.edges())


def test_round_trip_non_contiguous_ids(tmp_path):
    base = graphs.Graph.from_edges(
        [(10, 20), (20, 31), (10, 31), (31, 47)], vertices=[10, 20, 31, 47]
    ).to_backend("csr")
    path = tmp_path / "ids.csr"
    save_csr_snapshot(base, path)
    with load_csr_snapshot(path) as mapped:
        assert sorted(mapped.vertices()) == [10, 20, 31, 47]
        assert sorted(mapped.edges()) == sorted(base.edges())


def test_save_returns_attachable_handle(snapshot_pair, tmp_path):
    graph, _ = snapshot_pair
    handle = save_csr_snapshot(graph, tmp_path / "again.csr")
    assert isinstance(handle, MappedCSRHandle)
    assert handle.num_vertices == graph.num_vertices
    with handle.attach() as mapped:
        assert mapped.num_edges == graph.num_edges
    # Handles are tiny and picklable: the process-executor currency.
    clone = pickle.loads(pickle.dumps(handle))
    with clone.attach() as mapped:
        assert sorted(mapped.edges()) == sorted(graph.edges())


# --------------------------------------------------------------------------- #
# Read-only enforcement and lifecycle (SharedCSRGraph conventions)
# --------------------------------------------------------------------------- #
def test_mapped_graph_is_read_only(snapshot_pair):
    _, path = snapshot_pair
    with load_csr_snapshot(path) as mapped:
        with pytest.raises(GraphError, match="read-only"):
            mapped.add_edge(0, 1)
        with pytest.raises(GraphError, match="read-only"):
            mapped.remove_edge(0, 1)


def test_double_detach_is_idempotent(snapshot_pair):
    _, path = snapshot_pair
    mapped = load_csr_snapshot(path)
    mapped.detach()
    mapped.detach()  # second detach is a no-op, not an error


def test_missing_file_is_one_line_runtime_error(tmp_path):
    path = tmp_path / "never-saved.csr"
    with pytest.raises(RuntimeError) as excinfo:
        load_csr_snapshot(path)
    message = str(excinfo.value)
    assert "never saved, or removed since" in message
    assert "\n" not in message


def test_truncated_snapshot_is_named_error(snapshot_pair):
    _, path = snapshot_pair
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(GraphError, match="too small for the declared CSR shape"):
        load_csr_snapshot(path)


def test_corrupt_magic_is_named_error(snapshot_pair, tmp_path):
    _, path = snapshot_pair
    data = bytearray(path.read_bytes())
    data[:8] = b"notacsr!"
    bad = tmp_path / "bad.csr"
    bad.write_bytes(bytes(data))
    with pytest.raises(GraphError, match="snapshot"):
        load_csr_snapshot(bad)


def test_mapped_graph_refuses_pickling(snapshot_pair):
    _, path = snapshot_pair
    with load_csr_snapshot(path) as mapped:
        with pytest.raises(TypeError, match="MappedCSRHandle"):
            pickle.dumps(mapped)


# --------------------------------------------------------------------------- #
# Equivalence: a mapped snapshot answers exactly like the graph it froze
# --------------------------------------------------------------------------- #
def test_lca_equivalence_mapped_vs_owned(snapshot_pair):
    graph, path = snapshot_pair
    with load_csr_snapshot(path) as mapped:
        owned_lca = create("spanner3", graph, seed=13)
        mapped_lca = create("spanner3", mapped, seed=13)
        mat_o = owned_lca.materialize(mode="batched")
        mat_m = mapped_lca.materialize(mode="batched")
        assert mat_m.edges == mat_o.edges
        assert mat_m.probe_stats.query_totals == mat_o.probe_stats.query_totals
        assert (
            mapped_lca.probe_counter.snapshot().as_dict()
            == owned_lca.probe_counter.snapshot().as_dict()
        )


def test_process_executor_uses_mapped_handle(snapshot_pair):
    """Process workers re-map the snapshot file instead of a shm export."""
    graph, path = snapshot_pair
    with load_csr_snapshot(path) as mapped:
        assert isinstance(MappedGraphRef(mapped.mapped_handle).resolve(), MappedCSRGraph)
        serial = create("spanner3", graph, seed=4).materialize(mode="batched")
        parallel = materialize_parallel(
            create("spanner3", mapped, seed=4), executor="process", workers=2
        )
        assert parallel.edges == serial.edges
        assert parallel.probe_stats.query_totals == serial.probe_stats.query_totals


def test_build_view_aliases_mapped_buffers(snapshot_pair):
    """The numpy kernel substrate wraps mapped buffers without copying."""
    np = pytest.importorskip("numpy")
    from repro.kernels.view import build_view

    _, path = snapshot_pair
    with load_csr_snapshot(path) as mapped:
        view = build_view(np, mapped)
        assert view is not None
        assert not view.nbr_id.flags.owndata  # aliases the mmap, no copy
        assert not view.nbr_id.flags.writeable
