"""Property-based tests (hypothesis) for core invariants.

Random small graphs are generated from random edge lists; the key contracts
checked on every generated instance are:

* the 3-spanner LCA always returns a subgraph with stretch ≤ 3 that matches
  its global reference construction,
* the 5-spanner LCA always returns a subgraph with stretch ≤ 5,
* the Baswana–Sen baseline always satisfies its (2k−1) guarantee,
* the bucket partition and the k-wise hash family satisfy their structural
  invariants for arbitrary inputs.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import measure_stretch, preserves_connectivity
from repro.baselines import baswana_sen_spanner
from repro.graphs import Graph
from repro.rand import KWiseHash
from repro.spanner3 import ThreeSpannerLCA, build_reference_spanner
from repro.spanner5 import FiveSpannerLCA, partition_into_buckets


@st.composite
def small_graphs(draw, max_vertices=22, min_edges=1):
    n = draw(st.integers(min_value=3, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=min_edges, max_size=3 * n, unique=True)
    )
    return Graph.from_edges(edges, vertices=range(n))


relaxed = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@relaxed
@given(graph=small_graphs(), seed=st.integers(min_value=0, max_value=10**6))
def test_three_spanner_invariants_on_random_graphs(graph, seed):
    lca = ThreeSpannerLCA(graph, seed=seed)
    materialized = lca.materialize()
    # subgraph + stretch
    report = measure_stretch(graph, materialized.edges, limit=4)
    assert report.is_finite
    assert report.max_stretch <= 3
    # connectivity of every component is preserved
    assert preserves_connectivity(graph, materialized.edges)
    # the local answers agree with the global construction
    assert materialized.edges == build_reference_spanner(lca)


@relaxed
@given(graph=small_graphs(max_vertices=18), seed=st.integers(min_value=0, max_value=10**6))
def test_five_spanner_invariants_on_random_graphs(graph, seed):
    lca = FiveSpannerLCA(graph, seed=seed)
    materialized = lca.materialize()
    report = measure_stretch(graph, materialized.edges, limit=6)
    assert report.is_finite
    assert report.max_stretch <= 5
    assert preserves_connectivity(graph, materialized.edges)


@relaxed
@given(
    graph=small_graphs(max_vertices=20),
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=4),
)
def test_baswana_sen_invariants_on_random_graphs(graph, seed, k):
    spanner = baswana_sen_spanner(graph, stretch_parameter=k, seed=seed)
    report = measure_stretch(graph, spanner, limit=2 * k)
    assert report.is_finite
    assert report.max_stretch <= 2 * k - 1
    assert preserves_connectivity(graph, spanner)


@settings(max_examples=100, deadline=None)
@given(
    members=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60, unique=True),
    bucket_size=st.integers(min_value=1, max_value=10),
)
def test_bucket_partition_properties(members, bucket_size):
    buckets = partition_into_buckets(members, bucket_size)
    # partition covers exactly the members
    flattened = [v for bucket in buckets for v in bucket]
    assert sorted(flattened) == sorted(members)
    # all buckets except possibly the last have exactly bucket_size members
    for bucket in buckets[:-1]:
        assert len(bucket) == bucket_size
    assert 1 <= len(buckets[-1]) <= bucket_size
    # buckets are sorted and globally ordered (consistent partition)
    assert flattened == sorted(members)


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    xs=st.lists(st.integers(min_value=0, max_value=2**60), min_size=1, max_size=50),
    probability=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_kwise_hash_properties(seed, xs, probability):
    h = KWiseHash(seed, independence=8)
    for x in xs:
        assert h.value(x) == h.value(x)
        assert 0.0 <= h.uniform(x) < 1.0
        coin = h.bernoulli(x, probability)
        assert isinstance(coin, bool)
        if probability == 0.0:
            assert coin is False
