"""The churn workload and the engine's write path.

Writes are never shed, act as scheduling barriers, route to the owning
shard, and leave every shard's memo state consistent through epoch-based
lazy invalidation — so a churn run is deterministic across executors and
its served answers match a per-request replay against from-scratch oracles
on the evolving graph.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.registry import create
from repro.service import (
    ChurnWorkload,
    ServiceConfig,
    ServiceEngine,
    TraceOp,
    LatencyStats,
    make_workload,
    read_trace,
    read_trace_ops,
    write_trace,
)
from repro.service.workload import TraceWorkload


def _spanner3(graph):
    return create("spanner3", graph, seed=7)


@pytest.fixture
def graph():
    return graphs.gnp_graph(70, 0.12, seed=6)


def _run_churn(graph, executor="serial", max_inflight=1, **workload_kwargs):
    options = {"num_requests": 400, "seed": 11, "write_ratio": 0.2}
    options.update(workload_kwargs)
    workload = make_workload("churn", graph, **options)
    config = ServiceConfig(
        num_shards=3,
        batch_size=16,
        executor=executor,
        max_inflight=max_inflight,
    )
    engine = ServiceEngine(graph, _spanner3, config)
    report = engine.run(workload)
    return engine, report, workload


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def test_churn_workload_is_deterministic_in_its_seed(graph):
    def stream(g):
        workload = ChurnWorkload(g, num_requests=300, seed=3, write_ratio=0.3)
        return list(workload)

    a = stream(graphs.Graph(graph.as_adjacency()))
    b = stream(graphs.Graph(graph.as_adjacency()))
    assert a == b
    assert any(isinstance(item, TraceOp) and item.is_mutation for item in a)


def test_churn_workload_mutations_replay_validly_onto_the_graph(graph):
    """Every emitted mutation is valid when applied in stream order."""
    mirror = graphs.Graph(graph.as_adjacency())
    workload = ChurnWorkload(mirror, num_requests=500, seed=5, write_ratio=0.4)
    applied = 0
    for request in workload:
        if isinstance(request, TraceOp) and request.is_mutation:
            mirror.apply_mutation(request.op, request.u, request.v)  # must not raise
            applied += 1
        else:
            u, v = request
            assert mirror.has_edge(u, v), "read of a non-current edge"
    assert applied == workload.mutations_emitted > 0


def test_churn_write_ratio_validation(graph):
    with pytest.raises(ValueError, match="write_ratio"):
        ChurnWorkload(graph, num_requests=10, write_ratio=1.5)
    zero = ChurnWorkload(graph, num_requests=50, seed=1, write_ratio=0.0)
    assert all(not isinstance(item, TraceOp) for item in zero)


# --------------------------------------------------------------------------- #
# Engine write path
# --------------------------------------------------------------------------- #
def test_engine_applies_writes_and_keeps_the_accounting_invariants(graph):
    engine, report, workload = _run_churn(graph)
    assert report.mutations == workload.mutations_emitted > 0
    assert report.offered == 400
    assert report.offered == report.admitted + report.rejected + report.mutations
    assert report.served == report.admitted == len(engine.records)
    assert graph.epoch == report.mutations
    assert report.extras["graph_epoch"] == graph.epoch
    assert sum(shard.mutations for shard in report.shard_reports) == report.mutations


def test_churn_runs_identically_across_executors_and_pipelining(graph):
    """Scheduling knobs change wall-clock only: the record stream, the final
    graph, and all admission counters are identical."""
    outcomes = []
    for executor, inflight in (("serial", 1), ("thread", 1), ("thread", 3)):
        g = graphs.Graph(graph.as_adjacency())
        engine, report, _ = _run_churn(g, executor=executor, max_inflight=inflight)
        outcomes.append(
            (
                [(r.u, r.v, r.in_spanner, r.probe_total) for r in engine.records],
                g.as_adjacency(),
                (report.offered, report.admitted, report.rejected, report.mutations),
            )
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_served_answers_match_fresh_oracles_on_the_evolving_graph(graph):
    """Replay the exact request stream against a mirror graph, answering
    every read with a brand-new cold LCA on a from-scratch copy — the
    engine's epoch-invalidated shards must agree answer by answer."""
    engine, _, _ = _run_churn(graph, num_requests=250)
    # Rebuild the stream: records carry reads; re-generate writes from the
    # deterministic workload on a fresh mirror.
    mirror = graphs.gnp_graph(70, 0.12, seed=6)
    workload = ChurnWorkload(mirror, num_requests=250, seed=11, write_ratio=0.2)
    records = iter(engine.records)
    for request in workload:
        if isinstance(request, TraceOp) and request.is_mutation:
            mirror.apply_mutation(request.op, request.u, request.v)
            continue
        record = next(records)
        u, v = request
        assert (record.u, record.v) == (u, v)
        rebuilt = graphs.Graph(mirror.as_adjacency())
        outcome = _spanner3(rebuilt).query_with_stats(u, v)
        assert outcome.in_spanner == record.in_spanner
        assert outcome.probe_total == record.probe_total


def test_reads_of_pending_writes_are_admitted_against_future_state(graph):
    """A read queued behind an 'add' of the same edge must serve, and a read
    queued behind a 'remove' must be rejected as invalid."""
    edges = list(graph.edges())
    (u1, v1) = edges[0]
    non_edge = None
    vertices = graph.vertices()
    for a in vertices:
        for b in vertices:
            if a != b and not graph.has_edge(a, b):
                non_edge = (a, b)
                break
        if non_edge:
            break
    stream = [
        TraceOp("add", *non_edge),
        non_edge,                     # valid only through the pending add
        TraceOp("remove", u1, v1),
        (u1, v1),                     # invalid through the pending remove
    ]
    workload = TraceWorkload(graph, edges=stream)
    config = ServiceConfig(num_shards=2, batch_size=64)
    engine = ServiceEngine(graph, _spanner3, config)
    report = engine.run(workload)
    assert report.mutations == 2
    assert report.served == 1
    assert report.rejected == 1
    assert report.extras["invalid_requests"] == 1
    assert engine.records[0].u == non_edge[0]


# --------------------------------------------------------------------------- #
# Trace round trip (lossless mutate records)
# --------------------------------------------------------------------------- #
def test_mixed_trace_round_trips_losslessly(tmp_path, graph):
    workload = ChurnWorkload(
        graphs.Graph(graph.as_adjacency()), num_requests=200, seed=2, write_ratio=0.3
    )
    stream = list(workload)
    path = tmp_path / "churn.jsonl"
    assert write_trace(path, stream) == len(stream)
    replayed = read_trace_ops(path)
    normalized = [
        item if isinstance(item, TraceOp) else TraceOp("query", *item)
        for item in stream
    ]
    assert replayed == normalized
    # And a TraceWorkload replays the identical request stream.
    replay_workload = TraceWorkload(graph, path=str(path))
    replay_stream = list(replay_workload)
    assert [
        item if isinstance(item, TraceOp) else TraceOp("query", *item)
        for item in replay_stream
    ] == normalized


def test_query_only_trace_readers_refuse_mixed_traces(tmp_path):
    path = tmp_path / "mixed.jsonl"
    write_trace(path, [(0, 1), TraceOp("add", 1, 2)])
    with pytest.raises(ValueError, match="mutation records"):
        read_trace(path)


def test_query_only_trace_format_is_unchanged(tmp_path):
    path = tmp_path / "plain.jsonl"
    write_trace(path, [(3, 17), (5, 8)])
    assert path.read_text() == '{"u": 3, "v": 17}\n{"u": 5, "v": 8}\n'
    assert read_trace(path) == [(3, 17), (5, 8)]


def test_replayed_churn_trace_reproduces_the_original_run(tmp_path, graph):
    g1 = graphs.Graph(graph.as_adjacency())
    engine1, report1, workload = _run_churn(g1, num_requests=200)
    # Record the exact stream (the workload is deterministic, so regenerate).
    mirror = graphs.Graph(graph.as_adjacency())
    stream = list(
        ChurnWorkload(mirror, num_requests=200, seed=11, write_ratio=0.2)
    )
    path = tmp_path / "replay.jsonl"
    write_trace(path, stream)

    g2 = graphs.Graph(graph.as_adjacency())
    config = ServiceConfig(num_shards=3, batch_size=16)
    engine2 = ServiceEngine(g2, _spanner3, config)
    report2 = engine2.run(TraceWorkload(g2, path=str(path)))
    assert [(r.u, r.v, r.in_spanner, r.probe_total) for r in engine1.records] == [
        (r.u, r.v, r.in_spanner, r.probe_total) for r in engine2.records
    ]
    assert report2.mutations == report1.mutations
    assert g1.as_adjacency() == g2.as_adjacency()


# --------------------------------------------------------------------------- #
# Satellite: LatencyStats sorts once per summary
# --------------------------------------------------------------------------- #
def test_latency_stats_single_sort_output_is_pinned():
    """The cached-sort fast path returns bit-identical output to the old
    sort-per-call implementation, including across add/query interleavings."""
    import random as _random

    rng = _random.Random(31)
    stats = LatencyStats()
    reference_samples = []
    for round_index in range(5):
        for _ in range(200):
            sample = rng.random() * 0.01
            stats.add(sample)
            reference_samples.append(sample)
        from repro.core.probes import nearest_rank_percentile

        for q in (0.0, 37.5, 50.0, 90.0, 95.0, 99.0, 100.0):
            assert stats.percentile_s(q) == nearest_rank_percentile(
                sorted(reference_samples), q
            ), (round_index, q)
        expected = {
            "count": len(reference_samples),
            "mean_ms": round(
                sum(reference_samples) / len(reference_samples) * 1e3, 4
            ),
            "max_ms": round(max(reference_samples) * 1e3, 4),
        }
        ordered = sorted(reference_samples)
        for q in (50.0, 90.0, 95.0, 99.0):
            expected[f"p{q:g}_ms"] = round(
                nearest_rank_percentile(ordered, q) * 1e3, 4
            )
        assert stats.as_dict() == expected
    # Repeated queries with no intervening add reuse the cached view.
    assert stats._sorted_samples() is stats._sorted_samples()


def test_latency_stats_detects_direct_sample_appends():
    stats = LatencyStats()
    stats.add(3.0)
    assert stats.percentile_s(50) == 3.0
    stats.samples_s.append(1.0)  # bypasses add()
    assert stats.percentile_s(0) == 1.0


def test_interleaved_writes_on_one_edge_admit_against_the_last_queued_write(graph):
    """Applying an earlier write must not erase the admission marker of a
    later still-queued write on the same edge (regression: a read admitted
    between add(e) and a queued remove(e) used to serve after the remove)."""
    (u1, v1) = next(iter(graph.edges()))
    non_edge = None
    for a in graph.vertices():
        for b in graph.vertices():
            if a != b and not graph.has_edge(a, b):
                non_edge = (a, b)
                break
        if non_edge:
            break
    stream = [
        TraceOp("add", *non_edge),
        non_edge,                      # executes between add and remove: valid
        TraceOp("remove", *non_edge),
        non_edge,                      # executes after the remove: must reject
        TraceOp("add", *non_edge),
        non_edge,                      # valid again through the re-add
    ]
    # batch_size=1 with a full-burst ingest queues everything before any
    # write applies, which is exactly the aliasing scenario.
    config = ServiceConfig(
        num_shards=2, batch_size=1, arrival_burst=len(stream)
    )
    engine = ServiceEngine(graph, _spanner3, config)
    report = engine.run(TraceWorkload(graph, edges=stream))
    assert report.mutations == 3
    assert report.served == 2
    assert report.rejected == 1
    assert report.extras["invalid_requests"] == 1
    assert graph.has_edge(*non_edge)


def test_churn_workload_survives_draining_all_edges():
    """A read drawn while the mirror is empty forces an insertion instead of
    crashing (regression: ValueError from randrange(0))."""
    tiny = graphs.Graph({0: [1], 1: [0], 2: []})
    workload = ChurnWorkload(tiny, num_requests=60, seed=1, write_ratio=0.9)
    mirror = graphs.Graph(tiny.as_adjacency())
    drained = False
    for request in workload:
        if isinstance(request, TraceOp) and request.is_mutation:
            mirror.apply_mutation(request.op, request.u, request.v)
            drained = drained or mirror.num_edges == 0
        else:
            assert mirror.has_edge(*request)
    assert drained, "seed never drained the mirror; pick one that does"
