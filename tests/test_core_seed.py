"""Tests for the Seed abstraction."""

from __future__ import annotations

import pytest

from repro.core.errors import SeedError
from repro.core.seed import Seed


def test_seed_from_int():
    assert Seed.of(5).value == 5
    assert Seed(-3).value == 3  # negatives normalized


def test_seed_from_string_is_deterministic():
    a = Seed.of("experiment-1")
    b = Seed.of("experiment-1")
    c = Seed.of("experiment-2")
    assert a == b
    assert a != c


def test_seed_of_seed_is_identity():
    seed = Seed(7)
    assert Seed.of(seed) is seed


def test_derive_is_deterministic_and_label_sensitive():
    root = Seed(99)
    assert root.derive("centers") == root.derive("centers")
    assert root.derive("centers") != root.derive("ranks")
    assert root.derive("centers") != root


def test_derive_indexed_distinct_per_index():
    root = Seed(1)
    children = {root.derive_indexed("level", i).value for i in range(10)}
    assert len(children) == 10


def test_different_roots_give_different_children():
    assert Seed(1).derive("x") != Seed(2).derive("x")


def test_invalid_material_rejected():
    with pytest.raises(SeedError):
        Seed.of(3.14)  # type: ignore[arg-type]
    with pytest.raises(SeedError):
        Seed.of(True)  # type: ignore[arg-type]


def test_int_and_repr():
    seed = Seed(42)
    assert int(seed) == 42
    assert "42" in repr(seed)
