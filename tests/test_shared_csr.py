"""Shared-memory CSR export/attach: zero-copy, observationally identical.

``CSRGraph.to_shared`` copies the flat CSR arrays into one shared-memory
segment; ``SharedCSRHandle.attach`` maps them back as ``memoryview``s with
no per-worker copy.  These tests pin the contract: the attached view exposes
exactly the same probe-visible graph (orderings, degrees, adjacency
indices), handles are tiny and picklable, the attached view itself refuses
to pickle, and the segment lifecycle (owner unlinks, workers detach) works.
"""

from __future__ import annotations

import pickle

import pytest

from repro import graphs
from repro.core.errors import GraphError
from repro.core.registry import create
from repro.graphs import CSRGraph, SharedCSRGraph, attach_shared_graph
from repro.graphs.csr import SharedCSRHandle


@pytest.fixture
def csr_graph():
    return graphs.gnp_graph(60, 0.2, seed=3).to_backend("csr")


def test_attached_view_is_observationally_identical(csr_graph):
    with csr_graph.to_shared() as export:
        attached = attach_shared_graph(export.handle)
        try:
            assert attached.num_vertices == csr_graph.num_vertices
            assert attached.num_edges == csr_graph.num_edges
            assert attached.vertices() == csr_graph.vertices()
            assert list(attached.edges()) == list(csr_graph.edges())
            for v in csr_graph.vertices():
                assert attached.degree(v) == csr_graph.degree(v)
                assert attached.neighbors(v) == csr_graph.neighbors(v)
                assert dict(attached.adjacency_row(v)) == dict(
                    csr_graph.adjacency_row(v)
                )
            assert attached.max_degree() == csr_graph.max_degree()
            assert attached.min_degree() == csr_graph.min_degree()
        finally:
            attached.detach()


def test_materialization_on_attached_graph_is_bit_identical(csr_graph):
    baseline = create("spanner3", csr_graph, seed=5).materialize(mode="batched")
    with csr_graph.to_shared() as export:
        with export.handle.attach() as attached:
            mirrored = create("spanner3", attached, seed=5).materialize(
                mode="batched"
            )
            assert mirrored.edges == baseline.edges
            assert (
                mirrored.probe_stats.query_totals
                == baseline.probe_stats.query_totals
            )


def test_handle_is_tiny_and_picklable(csr_graph):
    with csr_graph.to_shared() as export:
        payload = pickle.dumps(export.handle)
        assert len(payload) < 512  # O(1), not O(m)
        clone = pickle.loads(payload)
        assert clone == export.handle
        attached = clone.attach()
        try:
            assert list(attached.edges()) == list(csr_graph.edges())
        finally:
            attached.detach()


def test_attached_view_refuses_to_pickle(csr_graph):
    with csr_graph.to_shared() as export:
        attached = export.handle.attach()
        try:
            with pytest.raises(TypeError, match="SharedCSRHandle"):
                pickle.dumps(attached)
        finally:
            attached.detach()


def test_lifecycle_unlink_then_attach_fails(csr_graph):
    export = csr_graph.to_shared()
    handle = export.handle
    attached = handle.attach()  # existing attachment survives the unlink
    export.close()
    export.close()  # idempotent
    try:
        assert list(attached.edges()) == list(csr_graph.edges())
    finally:
        attached.detach()
    attached.detach()  # idempotent
    with pytest.raises(RuntimeError, match=handle.shm_name):
        handle.attach()


def test_attach_to_missing_segment_names_the_segment():
    handle = SharedCSRHandle(
        shm_name="repro_never_created", num_vertices=2, num_entries=2
    )
    with pytest.raises(RuntimeError, match="repro_never_created"):
        handle.attach()


def test_detach_after_failed_attach_is_a_noop(csr_graph):
    # A size-mismatched segment makes __init__ raise before _shm is bound;
    # __exit__/detach on the half-built view must not raise.
    export = csr_graph.to_shared()
    try:
        lying = SharedCSRHandle(
            shm_name=export.name,
            num_vertices=export.handle.num_vertices + 1024,
            num_entries=export.handle.num_entries + 1024,
        )
        view = SharedCSRGraph.__new__(SharedCSRGraph)
        with pytest.raises(GraphError, match="too small"):
            view.__init__(lying)
        view.detach()
        view.detach()
    finally:
        export.close()


def test_dict_backend_graphs_export_through_csr_conversion():
    dict_graph = graphs.gnp_graph(40, 0.2, seed=7)
    with dict_graph.to_backend("csr").to_shared() as export:
        with export.handle.attach() as attached:
            assert list(attached.edges()) == list(dict_graph.edges())
            for v in dict_graph.vertices():
                assert attached.neighbors(v) == dict_graph.neighbors(v)


def test_non_contiguous_vertex_ids_round_trip():
    ids = [10_000 + 7 * i for i in range(30)]
    edges = [(ids[i], ids[(i + 1) % len(ids)]) for i in range(len(ids))]
    host = CSRGraph.from_graph(graphs.Graph.from_edges(edges))
    with host.to_shared() as export:
        with export.handle.attach() as attached:
            assert attached.vertices() == host.vertices()
            assert list(attached.edges()) == list(host.edges())
            assert attached.adjacency_index(ids[0], ids[1]) == (
                host.adjacency_index(ids[0], ids[1])
            )


def test_derived_subgraphs_own_their_storage(csr_graph):
    with csr_graph.to_shared() as export:
        with export.handle.attach() as attached:
            some = list(attached.vertices())[:12]
            induced = attached.induced_subgraph(some)
            assert type(induced) is CSRGraph
            assert not isinstance(induced, SharedCSRGraph)
            spanning = attached.subgraph_with_edges(list(attached.edges())[:5])
            assert type(spanning) is CSRGraph
        # Derived graphs stay valid after the view detaches.
        assert induced.num_vertices == 12
        assert spanning.num_edges == 5


def test_ids_beyond_64_bits_are_rejected_with_a_clear_error():
    huge = 2 ** 70
    host = CSRGraph.from_graph(graphs.Graph.from_edges([(huge, huge + 1)]))
    with pytest.raises(GraphError, match="64 bits"):
        host.to_shared()


def test_truncated_segment_is_rejected():
    graph = graphs.gnp_graph(30, 0.2, seed=1).to_backend("csr")
    with graph.to_shared() as export:
        bogus = SharedCSRHandle(
            shm_name=export.handle.shm_name,
            num_vertices=export.handle.num_vertices * 1000,
            num_entries=export.handle.num_entries * 1000,
        )
        with pytest.raises(GraphError, match="too small"):
            bogus.attach()


# --------------------------------------------------------------------------- #
# Failure-path hygiene (regression: shared segment leak on worker failure)
# --------------------------------------------------------------------------- #
def _failing_chunk(plan):
    raise RuntimeError("injected chunk failure")


def test_failed_parallel_run_does_not_leak_the_shared_segment(monkeypatch):
    """A worker raising mid-``materialize(executor="process")`` must still
    close *and unlink* the shared-memory export — the coordinator's
    plan/scatter section runs under try/finally.  Before that guard, the
    segment outlived the exception until interpreter exit (and survived it
    entirely on hosts without resource-tracker cleanup)."""
    from multiprocessing import shared_memory

    import repro.exec.parallel as parallel_module
    import repro.exec.plan as plan_module

    exported = {}
    original_to_shared = CSRGraph.to_shared

    def capturing_to_shared(self):
        export = original_to_shared(self)
        exported["name"] = export.name
        return export

    monkeypatch.setattr(CSRGraph, "to_shared", capturing_to_shared)
    # Patch both the worker-side module attribute (resolved by pickle-by-name
    # in forked children) and the coordinator's imported reference.
    monkeypatch.setattr(plan_module, "execute_chunk", _failing_chunk)
    monkeypatch.setattr(parallel_module, "execute_chunk", _failing_chunk)

    graph = graphs.gnp_graph(40, 0.2, seed=5).to_backend("csr")
    lca = create("spanner3", graph, seed=3)
    with pytest.raises(RuntimeError, match="injected chunk failure"):
        lca.materialize(executor="process", workers=2)

    name = exported["name"]
    with pytest.raises(FileNotFoundError):
        segment = shared_memory.SharedMemory(name=name)
        segment.close()  # pragma: no cover - only on leak


def test_failed_serial_run_still_clears_the_worker_slot(monkeypatch):
    """The serial backend shares the coordinator thread; a failing chunk must
    not leave the worker slot (graph + rebuilt LCA) alive."""
    import repro.exec.parallel as parallel_module
    import repro.exec.plan as plan_module
    from repro.exec.plan import _WORKER_TLS

    monkeypatch.setattr(plan_module, "execute_chunk", _failing_chunk)
    monkeypatch.setattr(parallel_module, "execute_chunk", _failing_chunk)

    graph = graphs.gnp_graph(30, 0.25, seed=4)
    lca = create("spanner3", graph, seed=2)
    with pytest.raises(RuntimeError, match="injected chunk failure"):
        lca.materialize(executor="serial", workers=2)
    assert getattr(_WORKER_TLS, "slot", None) is None
