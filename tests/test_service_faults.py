"""Fault-tolerant serving: failover equivalence, write barriers, chaos runs.

The headline contract under test: because every LCA answer is a pure
function of ``(graph, seed, query)`` and probe accounting is cold-schedule
(independent of cache warmth), a replica promoted mid-workload serves
**bit-identical** answers and probe totals to the fault-free run — failover
is invisible to correctness, visible only in the fault counters and the
latency tail.  Writes are never lost: a write whose shard is fully down
blocks behind the recovery barrier until the injector's scheduled recovery
releases it.

Each engine gets a *fresh* graph: mutating workloads change the graph in
place, so sharing one graph across runs would compare different inputs.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.registry import create
from repro.faults import FaultEvent, FaultPlan
from repro.reports import TickClock
from repro.service import ServiceConfig, ServiceEngine, TraceOp, make_workload


def fresh_graph():
    return graphs.gnp_graph(80, 0.15, seed=3)


def _factory(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def run_engine(config, *, workload_kind="uniform", requests=300, **workload_options):
    graph = fresh_graph()
    workload = make_workload(
        workload_kind, graph, num_requests=requests, seed=11, **workload_options
    )
    engine = ServiceEngine(graph, _factory, config)
    report = engine.run(workload, clock=TickClock())
    return graph, engine, report


def answer_log(engine):
    """The correctness-relevant projection of the request log."""
    return [
        (r.seq, r.u, r.v, r.in_spanner, r.probe_total) for r in engine.records
    ]


def assert_ledger(report):
    assert report.admitted + report.rejected + report.mutations == report.offered
    assert report.served == report.admitted


# --------------------------------------------------------------------------- #
# Fault-free paths are unchanged
# --------------------------------------------------------------------------- #
def test_replication_is_invisible_without_faults():
    _, plain, base = run_engine(ServiceConfig(num_shards=2, batch_size=8))
    _, replicated, rep = run_engine(
        ServiceConfig(num_shards=2, batch_size=8, replication=3)
    )
    assert answer_log(plain) == answer_log(replicated)
    assert [r.latency_s for r in plain.records] == [
        r.latency_s for r in replicated.records
    ]
    assert not base.faults and not rep.faults
    assert base.availability == rep.availability == 1.0
    assert rep.as_dict()["replication"] == 3


def test_empty_fault_plan_runs_the_fault_machinery_harmlessly():
    _, plain, _ = run_engine(ServiceConfig(num_shards=2, batch_size=8))
    _, faulted, report = run_engine(
        ServiceConfig(num_shards=2, batch_size=8, fault_plan=FaultPlan())
    )
    assert answer_log(plain) == answer_log(faulted)
    assert report.faults["crashes"] == 0
    assert report.availability == 1.0


# --------------------------------------------------------------------------- #
# Failover
# --------------------------------------------------------------------------- #
def test_failover_serves_bit_identical_answers_and_probes():
    _, baseline, _ = run_engine(ServiceConfig(num_shards=2, batch_size=8))
    # Kill every primary mid-workload, for most of the run.
    plan = FaultPlan(
        events=(
            FaultEvent(at=2, kind="crash", shard=0, replica=0, duration=40),
            FaultEvent(at=3, kind="crash", shard=1, replica=0, duration=40),
        )
    )
    _, failed_over, report = run_engine(
        ServiceConfig(num_shards=2, batch_size=8, replication=2, fault_plan=plan)
    )
    assert report.faults["failovers"] == 2
    assert report.faults["degraded_answers"] == 0
    assert answer_log(baseline) == answer_log(failed_over)
    assert report.availability == 1.0
    assert_ledger(report)


def test_failover_is_sticky_after_the_old_primary_rejoins():
    plan = FaultPlan(
        events=(FaultEvent(at=1, kind="crash", shard=0, replica=0, duration=2),)
    )
    _, baseline, _ = run_engine(ServiceConfig(num_shards=1, batch_size=4))
    _, engine, report = run_engine(
        ServiceConfig(num_shards=1, batch_size=4, replication=2, fault_plan=plan)
    )
    # One failover, one recovery — and no flap back to replica 0.
    assert report.faults["failovers"] == 1
    assert report.faults["recoveries"] == 1
    assert answer_log(baseline) == answer_log(engine)


# --------------------------------------------------------------------------- #
# Degradation (all replicas down)
# --------------------------------------------------------------------------- #
def _loss_plan(duration=4):
    return FaultPlan(
        events=(FaultEvent(at=1, kind="shard_loss", shard=0, duration=duration),)
    )


def test_degraded_answer_mode_flags_requests_explicitly():
    _, engine, report = run_engine(
        ServiceConfig(num_shards=1, batch_size=8, fault_plan=_loss_plan())
    )
    degraded = [r for r in engine.records if r.degraded]
    assert degraded and report.faults["degraded_answers"] == len(degraded)
    assert all(not r.in_spanner and r.probe_total == 0 for r in degraded)
    assert report.availability < 1.0
    assert report.as_dict()["availability"] == round(report.availability, 4)
    assert_ledger(report)


def test_degraded_shed_mode_uses_a_distinct_reason_code():
    _, _, report = run_engine(
        ServiceConfig(
            num_shards=1, batch_size=8, fault_plan=_loss_plan(), degraded_mode="shed"
        )
    )
    reasons = report.extras["shed_reasons"]
    assert reasons["degraded"] > 0
    assert reasons["overload"] == 0
    assert report.faults["degraded_sheds"] == reasons["degraded"]
    assert report.faults["degraded_answers"] == 0
    assert sum(reasons.values()) == report.rejected
    assert_ledger(report)


def test_overload_and_degraded_sheds_are_told_apart():
    # Pure overload, no faults: every shed is reason-coded "overload".
    _, _, overloaded = run_engine(
        ServiceConfig(num_shards=2, batch_size=4, arrival_burst=32, max_queue_depth=8),
        requests=400,
    )
    reasons = overloaded.extras["shed_reasons"]
    assert reasons["overload"] > 0 and reasons["degraded"] == 0
    assert sum(reasons.values()) == overloaded.rejected


# --------------------------------------------------------------------------- #
# The write path under faults
# --------------------------------------------------------------------------- #
def count_writes(requests=300, **options):
    graph = fresh_graph()
    workload = make_workload(
        "churn", graph, num_requests=requests, seed=11, **options
    )
    return sum(
        1
        for item in workload
        if isinstance(item, TraceOp) and item.is_mutation
    )


def test_shard_loss_blocks_writes_but_never_drops_them():
    writes = count_writes(write_ratio=0.2)
    plan = FaultPlan(
        events=(
            FaultEvent(at=1, kind="shard_loss", shard=0, duration=6),
            FaultEvent(at=9, kind="shard_loss", shard=1, duration=6),
        )
    )
    faulted_graph, _, report = run_engine(
        ServiceConfig(num_shards=2, batch_size=8, fault_plan=plan),
        workload_kind="churn",
        write_ratio=0.2,
    )
    baseline_graph, _, baseline = run_engine(
        ServiceConfig(num_shards=2, batch_size=8),
        workload_kind="churn",
        write_ratio=0.2,
    )
    # Zero lost writes: every offered mutation applied, in both runs, and
    # the final graphs are identical edge for edge.
    assert report.mutations == baseline.mutations == writes
    assert sorted(faulted_graph.edges()) == sorted(baseline_graph.edges())
    assert report.faults["blocked_write_cycles"] >= 1
    assert_ledger(report)


def test_blocked_write_barrier_terminates_via_fast_forward():
    # A long outage with the whole stream already ingested: the engine must
    # fast-forward to the recovery instead of spinning (and must not drop
    # the write).  A tiny request count keeps everything queued behind it.
    graph = fresh_graph()
    (u, v) = next(iter(graph.edges()))
    target = next(
        w for w in sorted(graph.vertices()) if w != u and not graph.has_edge(u, w)
    )
    stream = [
        TraceOp("add", u, target),
        (u, v),
    ]
    from repro.service import TraceWorkload

    workload = TraceWorkload(graph, edges=stream)
    plan = FaultPlan(
        events=(FaultEvent(at=0, kind="shard_loss", shard=0, duration=5000),)
    )
    config = ServiceConfig(num_shards=1, batch_size=4, fault_plan=plan)
    report = ServiceEngine(graph, _factory, config).run(workload, clock=TickClock())
    assert report.mutations == 1
    assert graph.has_edge(u, target)
    assert report.faults["blocked_write_cycles"] >= 1


# --------------------------------------------------------------------------- #
# Chaos: the full storm, bit-reproducible
# --------------------------------------------------------------------------- #
def chaos_config():
    plan = FaultPlan.generate(
        17,
        num_shards=3,
        replication=2,
        horizon=24,
        crashes=4,
        shard_losses=1,
        slow=3,
        flaky=2,
        duration=4,
        delay=3,
        count=2,
    )
    return ServiceConfig(
        num_shards=3, batch_size=8, replication=2, fault_plan=plan
    )


def test_chaos_storm_is_deterministic():
    first = run_engine(chaos_config(), workload_kind="churn", write_ratio=0.1)
    second = run_engine(chaos_config(), workload_kind="churn", write_ratio=0.1)
    assert first[2].as_dict() == second[2].as_dict()
    assert answer_log(first[1]) == answer_log(second[1])
    assert first[2].faults["crashes"] > 0
    assert_ledger(first[2])


def test_retry_counters_reflect_injected_flakes_and_slowness():
    plan = FaultPlan(
        events=(
            FaultEvent(at=1, kind="flaky", shard=0, count=1),
            FaultEvent(at=1, kind="slow", shard=0, delay=3, count=1),
            FaultEvent(at=2, kind="slow", shard=0, delay=500, count=1),
        )
    )
    _, baseline, _ = run_engine(ServiceConfig(num_shards=1, batch_size=8))
    _, engine, report = run_engine(
        ServiceConfig(num_shards=1, batch_size=8, fault_plan=plan, timeout_ticks=64)
    )
    assert report.faults["transient_errors"] == 1
    assert report.faults["slow_batches"] == 2
    assert report.faults["timeouts"] == 1  # the 500-tick delay
    assert report.faults["retries"] >= 2  # one per flake, one per timeout
    # Neither flakes, delays nor timeouts change any answer or probe count.
    assert answer_log(baseline) == answer_log(engine)
    assert_ledger(report)


def test_exhausted_retries_degrade_instead_of_crashing():
    # Three flakes against a 2-retry budget: the batch fails permanently.
    plan = FaultPlan(events=(FaultEvent(at=1, kind="flaky", shard=0, count=30),))
    _, engine, report = run_engine(
        ServiceConfig(num_shards=1, batch_size=8, fault_plan=plan, max_retries=2)
    )
    assert report.faults["degraded_answers"] > 0
    assert any(r.degraded for r in engine.records)
    assert_ledger(report)


# --------------------------------------------------------------------------- #
# Admission edge cases (fault-free)
# --------------------------------------------------------------------------- #
def test_minimum_capacity_queue_still_books_every_request():
    _, _, report = run_engine(
        ServiceConfig(num_shards=1, batch_size=4, arrival_burst=8, max_queue_depth=1),
        requests=200,
    )
    assert report.rejected > 0
    assert report.max_queue_depth_seen <= 1
    assert report.extras["shed_reasons"]["overload"] == report.rejected
    assert_ledger(report)


def test_zero_capacity_queue_is_rejected_at_config_time():
    with pytest.raises(ValueError, match="max_queue_depth"):
        ServiceConfig(max_queue_depth=0)


def test_single_inflight_slot_with_pending_writes_drains_cleanly():
    writes = count_writes(write_ratio=0.3, requests=200)
    _, _, report = run_engine(
        ServiceConfig(num_shards=2, batch_size=4, max_inflight=1),
        workload_kind="churn",
        write_ratio=0.3,
        requests=200,
    )
    assert report.mutations == writes
    assert_ledger(report)
