"""Tests for the BFS variant and the D^k_L exploration (Figure 6)."""

from __future__ import annotations

from repro.core.oracle import AdjacencyListOracle
from repro.graphs import Graph, cycle_graph, grid_graph, path_graph
from repro.spannerk.bfs import explore, explore_global


def no_center(_v):
    return False


def center_set(vertices):
    chosen = set(vertices)
    return lambda v: v in chosen


def test_exploration_discovers_in_distance_order():
    graph = path_graph(10)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=4, limit=100, is_center=no_center)
    assert result.order[0] == 0
    distances = [result.distance[v] for v in result.order]
    assert distances == sorted(distances)
    assert max(distances) <= 4
    assert set(result.order) == {0, 1, 2, 3, 4}


def test_exploration_limit_truncates():
    graph = grid_graph(6, 6)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=10, limit=7, is_center=no_center)
    assert len(result.order) == 7
    assert result.truncated


def test_ties_broken_by_increasing_id():
    # star: all neighbors at distance 1 are enqueued in increasing ID order
    graph = Graph.from_edges([(0, 5), (0, 3), (0, 9), (0, 1)])
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=2, limit=100, is_center=no_center)
    assert result.order == [0, 1, 3, 5, 9]


def test_first_center_is_first_in_discovery_order():
    graph = path_graph(10)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=9, limit=100, is_center=center_set({4, 7}))
    assert result.first_center == 4
    # the source itself counts if it is a center
    result2 = explore(oracle, 4, radius=9, limit=100, is_center=center_set({4, 7}))
    assert result2.first_center == 4


def test_no_center_within_radius():
    graph = path_graph(10)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=2, limit=100, is_center=center_set({8}))
    assert result.first_center is None


def test_parent_pointers_form_shortest_paths():
    graph = grid_graph(5, 5)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=8, limit=1000, is_center=no_center)
    for vertex in result.order:
        path = result.path_to(vertex)
        assert path[0] == 0 and path[-1] == vertex
        assert len(path) - 1 == result.distance[vertex]
        # consecutive path vertices are adjacent
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)


def test_path_to_center():
    graph = cycle_graph(12)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=6, limit=100, is_center=center_set({3}))
    path = result.path_to_center()
    assert path[0] == 0 and path[-1] == 3
    assert len(path) == 4
    assert explore(oracle, 0, radius=6, limit=100, is_center=no_center).path_to_center() is None


def test_path_to_unknown_vertex_is_none():
    graph = path_graph(5)
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=1, limit=100, is_center=no_center)
    assert result.path_to(4) is None


def test_probe_cost_bounded_by_expansions():
    graph = grid_graph(8, 8)
    oracle = AdjacencyListOracle(graph)
    limit = 9
    explore(oracle, 0, radius=10, limit=limit, is_center=no_center)
    # at most `limit` vertices are expanded, each costing deg+1 probes (Δ=4)
    assert oracle.counter.total <= limit * (4 + 1) + 1


def test_global_exploration_matches_oracle_version():
    graph = grid_graph(5, 5)
    oracle = AdjacencyListOracle(graph)
    with_oracle = explore(oracle, 7, radius=3, limit=10, is_center=center_set({12}))
    without = explore_global(graph, 7, radius=3, limit=10, is_center=center_set({12}))
    assert with_oracle.order == without.order
    assert with_oracle.first_center == without.first_center
    assert with_oracle.parent == without.parent


def test_lexicographically_first_shortest_path_property():
    """The BFS-tree path is the lexicographically-first shortest path."""
    # Two shortest paths from 0 to 4: 0-1-4 and 0-2-4; lexicographic rule picks 0-1-4.
    graph = Graph.from_edges([(0, 1), (0, 2), (1, 4), (2, 4), (4, 5)])
    oracle = AdjacencyListOracle(graph)
    result = explore(oracle, 0, radius=3, limit=100, is_center=center_set({5}))
    assert result.path_to(4) == [0, 1, 4]
    assert result.path_to_center() == [0, 1, 4, 5]
