"""Tests for the lower-bound instance distributions and the experiment."""

from __future__ import annotations

import pytest

from repro.core.errors import ParameterError
from repro.graphs import same_component
from repro.lowerbound import (
    DesignatedEdge,
    advantage_curve,
    default_designated_edge,
    run_distinguishing_experiment,
    sample_minus_instance,
    sample_plus_instance,
)

N, D = 26, 3  # n ≡ 2 (mod 4), d odd — the paper's regime


def test_plus_instance_is_d_regular_and_contains_designated_edge():
    designated = default_designated_edge(D)
    instance = sample_plus_instance(N, D, designated, seed=1)
    graph = instance.graph
    assert all(graph.degree(v) == D for v in graph.vertices())
    assert graph.has_edge(designated.x, designated.y)
    assert graph.neighbor_at(designated.x, designated.a) == designated.y
    assert graph.neighbor_at(designated.y, designated.b) == designated.x
    assert instance.family == "plus"


def test_minus_instance_designated_edge_is_a_bridge_between_halves():
    designated = default_designated_edge(D)
    instance = sample_minus_instance(N, D, designated, seed=2)
    graph = instance.graph
    assert all(graph.degree(v) == D for v in graph.vertices())
    assert graph.has_edge(designated.x, designated.y)
    # removing the designated edge separates the two halves
    remaining = [e for e in graph.edges() if set(e) != {designated.x, designated.y}]
    pruned = graph.subgraph_with_edges(remaining)
    assert not same_component(pruned, designated.x, designated.y)
    # sides are recorded and the only crossing edge is the designated one
    sides = instance.sides
    for (u, v) in graph.edges():
        if {u, v} == {designated.x, designated.y}:
            continue
        assert sides[u] == sides[v]


def test_plus_instance_usually_stays_connected_without_designated_edge():
    designated = default_designated_edge(D)
    connected = 0
    for seed in range(5):
        instance = sample_plus_instance(N, D, designated, seed=seed)
        remaining = [
            e for e in instance.graph.edges() if set(e) != {designated.x, designated.y}
        ]
        pruned = instance.graph.subgraph_with_edges(remaining)
        if same_component(pruned, designated.x, designated.y):
            connected += 1
    assert connected >= 4  # w.h.p. behaviour of random 3-regular graphs


def test_instances_are_deterministic_in_seed():
    designated = default_designated_edge(D)
    a = sample_plus_instance(N, D, designated, seed=7).graph
    b = sample_plus_instance(N, D, designated, seed=7).graph
    assert set(a.edges()) == set(b.edges())


def test_parameter_validation():
    designated = default_designated_edge(D)
    with pytest.raises(ParameterError):
        sample_plus_instance(3, D, designated, seed=1)
    with pytest.raises(ParameterError):
        sample_plus_instance(N, N + 1, designated, seed=1)
    with pytest.raises(ParameterError):
        sample_plus_instance(N, D, DesignatedEdge(0, 5, 1, 0), seed=1)
    with pytest.raises(ParameterError):
        sample_minus_instance(N + 1, D, designated, seed=1)
    with pytest.raises(ParameterError):
        sample_minus_instance(24, D, designated, seed=1)  # 24 ≡ 0 (mod 4)
    with pytest.raises(ParameterError):
        default_designated_edge(0)


def test_bfs_distinguisher_with_large_budget_is_always_right():
    result = run_distinguishing_experiment(
        num_vertices=N, degree=D, probe_budget=10_000, trials=8, seed=3
    )
    assert result.success_rate == 1.0
    assert result.advantage == 1.0


def test_bfs_distinguisher_with_tiny_budget_is_clueless():
    result = run_distinguishing_experiment(
        num_vertices=N, degree=D, probe_budget=2, trials=8, seed=3
    )
    # with essentially no probes every answer is "minus": half are right
    assert result.success_rate == pytest.approx(0.5)
    assert result.advantage == pytest.approx(0.0)


def test_advantage_curve_is_monotone_in_budget_at_the_extremes():
    curve = advantage_curve(N, D, probe_budgets=[2, 10_000], trials=6, seed=5)
    assert curve[0].advantage <= curve[-1].advantage
    assert curve[-1].theory_threshold == pytest.approx(min(N ** 0.5, N / D))
