"""Tests for probe counting, budgets and statistics."""

from __future__ import annotations

import pytest

from repro.core.errors import ProbeBudgetExceededError
from repro.core.probes import (
    ADJACENCY,
    DEGREE,
    NEIGHBOR,
    ProbeCounter,
    ProbeSnapshot,
    ProbeStatistics,
)


def test_counter_records_each_kind():
    counter = ProbeCounter()
    counter.record(NEIGHBOR)
    counter.record(NEIGHBOR)
    counter.record(DEGREE)
    counter.record(ADJACENCY, amount=3)
    assert counter.neighbor == 2
    assert counter.degree == 1
    assert counter.adjacency == 3
    assert counter.total == 6


def test_counter_rejects_unknown_kind():
    counter = ProbeCounter()
    with pytest.raises(ValueError):
        counter.record("telepathy")


def test_budget_enforcement():
    counter = ProbeCounter(budget=2)
    counter.record(NEIGHBOR)
    counter.record(DEGREE)
    with pytest.raises(ProbeBudgetExceededError):
        counter.record(ADJACENCY)


def test_snapshot_subtraction():
    counter = ProbeCounter()
    counter.record(NEIGHBOR)
    before = counter.snapshot()
    counter.record(NEIGHBOR)
    counter.record(ADJACENCY)
    delta = counter.snapshot() - before
    assert delta.neighbor == 1
    assert delta.adjacency == 1
    assert delta.degree == 0
    assert delta.total == 2


def test_measure_context_manager():
    counter = ProbeCounter()
    counter.record(DEGREE)
    with counter.measure() as measurement:
        counter.record(NEIGHBOR)
        counter.record(NEIGHBOR)
    assert measurement.total == 2
    assert measurement.used.neighbor == 2


def test_measure_unfinished_raises():
    counter = ProbeCounter()
    with counter.measure() as measurement:
        with pytest.raises(RuntimeError):
            _ = measurement.used
    # after the block it is finished
    assert measurement.total == 0


def test_reset_keeps_budget():
    counter = ProbeCounter(budget=5)
    counter.record(NEIGHBOR, amount=4)
    counter.reset()
    assert counter.total == 0
    counter.record(NEIGHBOR, amount=5)
    with pytest.raises(ProbeBudgetExceededError):
        counter.record(NEIGHBOR)


def test_snapshot_as_dict():
    snapshot = ProbeSnapshot(neighbor=1, degree=2, adjacency=3)
    data = snapshot.as_dict()
    assert data["total"] == 6
    assert data[NEIGHBOR] == 1


def test_statistics_aggregation():
    stats = ProbeStatistics()
    for value in [5, 1, 9, 3]:
        stats.add(value)
    assert stats.queries == 4
    assert stats.max == 9
    assert stats.mean == pytest.approx(4.5)
    assert stats.total == 18
    assert stats.percentile(0) == 1
    assert stats.percentile(100) == 9


def test_statistics_empty():
    stats = ProbeStatistics()
    assert stats.max == 0
    assert stats.mean == 0.0
    assert stats.percentile(50) == 0


def test_statistics_percentile_bounds():
    stats = ProbeStatistics()
    stats.add(1)
    with pytest.raises(ValueError):
        stats.percentile(150)


def test_statistics_percentile_uses_floor_based_nearest_rank():
    """Ranks exactly half-way between two positions must round *up*.

    ``round()`` uses banker's rounding: ``round(2.5) == 2``, silently picking
    the rank below the midpoint for even tie ranks.  With 6 values the 50th
    percentile sits at rank ``0.5 * 5 = 2.5`` and must select index 3.
    """
    stats = ProbeStatistics()
    for value in [1, 2, 3, 4, 5, 6]:
        stats.add(value)
    assert stats.percentile(50) == 4  # round() would give 3
    # Quartiles of 11 values land on exact ranks and are unaffected.
    stats = ProbeStatistics()
    for value in range(11):
        stats.add(value)
    assert stats.percentile(25) == 3  # rank 2.5 rounds up
    assert stats.percentile(50) == 5
    assert stats.percentile(75) == 8  # rank 7.5 rounds up
    assert stats.percentile(10) == 1
