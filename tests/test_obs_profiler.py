"""Probe-attribution profiler (repro.obs.profiler) + kernel/cache hooks."""

from __future__ import annotations

from repro.core.probes import ProbeCounter
from repro.core.registry import create
from repro.graphs import bounded_degree_expanderish, gnp_graph
from repro.obs import CACHE_OUTCOMES, PROBE_PHASES, ProbeProfiler
from repro.spannerk import KSquaredSpannerLCA


def burn(graph, counter, vertex, probes):
    """Spend exactly ``probes`` neighbor probes on the counter."""
    for _ in range(probes):
        counter.record("neighbor")


# ---------------------------------------------------------------------------
# exclusive (flame-style) phase attribution
# ---------------------------------------------------------------------------


def test_nested_phases_attribute_self_time_only():
    counter = ProbeCounter()
    profiler = ProbeProfiler()
    with profiler.phase("voronoi", counter):
        counter.record("neighbor")
        counter.record("neighbor")
        with profiler.phase("bfs", counter):
            counter.record("neighbor")
            counter.record("degree")
        counter.record("adjacency")
    phases = profiler.as_dict()["phases"]
    assert phases["bfs"]["total"] == 2
    assert phases["voronoi"]["total"] == 3  # 2 neighbor + 1 adjacency, not bfs's
    assert phases["voronoi"]["adjacency"] == 1
    # Flame invariant: exclusive times sum to the counter total.
    assert phases["bfs"]["total"] + phases["voronoi"]["total"] == counter.snapshot().total


def test_begin_end_phase_safe_on_every_exit_path():
    counter = ProbeCounter()
    profiler = ProbeProfiler()
    frame = profiler.begin_phase("bfs", counter)
    counter.record("neighbor")
    try:
        raise RuntimeError("early exit")
    except RuntimeError:
        pass
    finally:
        profiler.end_phase(frame)
    assert profiler.as_dict()["phases"]["bfs"]["total"] == 1
    assert profiler.phase_calls["bfs"] == 1


def test_outcome_classification_and_invalidations():
    profiler = ProbeProfiler()
    profiler.record_miss(10)
    profiler.record_hit(10)
    profiler.note_invalidation()
    profiler.record_miss(12, invalidated=True)
    payload = profiler.as_dict()
    assert payload["outcomes"]["cold"] == {"calls": 1, "probes": 10}
    assert payload["outcomes"]["memo-hit"] == {"calls": 1, "probes": 10}
    assert payload["outcomes"]["epoch-invalidated"] == {"calls": 1, "probes": 12}
    assert payload["invalidations"] == 1
    assert set(payload["outcomes"]) == set(CACHE_OUTCOMES)


def test_merge_folds_phases_and_outcomes():
    left, right = ProbeProfiler(), ProbeProfiler()
    counter = ProbeCounter()
    with left.phase("bfs", counter):
        counter.record("neighbor")
    with right.phase("bfs", counter):
        counter.record("neighbor")
        counter.record("neighbor")
    with right.phase("neighbor-scan", counter):
        counter.record("adjacency")
    right.record_hit(5)
    right.note_invalidation()
    left.merge(right)
    phases = left.as_dict()["phases"]
    assert phases["bfs"]["total"] == 3
    assert phases["bfs"]["calls"] == 2
    assert phases["neighbor-scan"]["total"] == 1
    assert left.outcome_calls["memo-hit"] == 1
    assert left.invalidations == 1


def test_phase_rows_residual_and_share():
    counter = ProbeCounter()
    profiler = ProbeProfiler()
    with profiler.phase("bfs", counter):
        burn(None, counter, None, 3)
    rows = profiler.phase_rows(total_probes=4)
    by_phase = {row["phase"]: row for row in rows}
    assert by_phase["bfs"]["share"] == 0.75
    assert by_phase["other"]["probes"] == 1
    assert by_phase["other"]["share"] == 0.25


# ---------------------------------------------------------------------------
# kernel hooks: a real LCA populates real phases
# ---------------------------------------------------------------------------


def test_spannerk_queries_populate_bfs_and_voronoi():
    graph = bounded_degree_expanderish(60, d=6, seed=7)
    lca = KSquaredSpannerLCA(graph, seed=3)
    profiler = ProbeProfiler()
    lca.attach_profiler(profiler)
    try:
        for u, v in list(graph.edges())[:12]:
            lca.query(u, v)
    finally:
        lca.attach_profiler(None)
    phases = profiler.as_dict()["phases"]
    assert "bfs" in phases and phases["bfs"]["total"] > 0
    assert set(phases) <= set(PROBE_PHASES)


def test_spanner3_service_path_populates_scan_and_outcomes():
    graph = gnp_graph(60, 0.5, seed=11).to_backend("csr")
    lca = create("spanner3", graph, seed=5, hitting_constant=1.0)
    profiler = ProbeProfiler()
    lca.attach_profiler(profiler)
    edges = list(graph.edges())[:30]
    try:
        # query_batch memoizes whole answers; the repeat replays the memo.
        lca.query_batch(edges)
        lca.query_batch(edges)
    finally:
        lca.attach_profiler(None)
    payload = profiler.as_dict()
    assert payload["phases"].get("neighbor-scan", {}).get("total", 0) > 0
    assert payload["outcomes"]["cold"]["calls"] > 0
    assert payload["outcomes"]["memo-hit"]["calls"] > 0


def test_attached_profiler_never_changes_answers_or_probes():
    graph = gnp_graph(60, 0.3, seed=11).to_backend("csr")
    plain = create("spanner3", graph, seed=5, hitting_constant=1.0)
    observed = create("spanner3", graph, seed=5, hitting_constant=1.0)
    observed.attach_profiler(ProbeProfiler())
    edges = list(graph.edges())[:40]
    plain_batch = plain.query_batch(edges)
    observed_batch = observed.query_batch(edges)
    assert plain_batch.answers == observed_batch.answers
    assert plain_batch.probe_totals == observed_batch.probe_totals
