"""Tests for spanner verification utilities."""

from __future__ import annotations

import pytest

from repro.analysis import (
    density_ratio,
    measure_stretch,
    preserves_connectivity,
    size_against_bound,
    spanner_is_connected,
    verify_spanner,
)
from repro.core.errors import GraphError
from repro.graphs import Graph, cycle_graph, gnp_graph, path_graph


def test_full_graph_has_stretch_one():
    graph = gnp_graph(40, 0.2, seed=1)
    report = measure_stretch(graph, graph.edges())
    assert report.max_stretch == 1
    assert report.is_finite
    assert report.checked_edges == graph.num_edges
    assert report.satisfies(1)


def test_cycle_minus_edge_has_stretch_n_minus_one():
    graph = cycle_graph(10)
    removed = (0, 9) if graph.has_edge(0, 9) else (9, 0)
    spanner = [e for e in graph.edges() if set(e) != set(removed)]
    report = measure_stretch(graph, spanner)
    assert report.max_stretch == 9
    assert report.worst_edge is not None
    assert not report.satisfies(5)
    assert report.satisfies(9)


def test_limit_treats_long_paths_as_disconnected():
    graph = cycle_graph(10)
    spanner = [e for e in graph.edges() if set(e) != {0, 9}]
    report = measure_stretch(graph, spanner, limit=3)
    assert report.disconnected_edges == 1
    assert not report.is_finite
    assert not report.satisfies(100)


def test_empty_spanner_on_edgeless_pairs():
    graph = Graph.from_edges([(0, 1)])
    report = measure_stretch(graph, [])
    assert report.disconnected_edges == 1


def test_subgraph_check_rejects_foreign_edges():
    graph = path_graph(5)
    with pytest.raises(GraphError):
        measure_stretch(graph, [(0, 4)])


def test_sample_edges_restricts_checks():
    graph = cycle_graph(20)
    report = measure_stretch(graph, graph.edges(), sample_edges=[(0, 1), (5, 6)])
    assert report.checked_edges == 2


def test_verify_spanner_uses_bound_plus_one_limit():
    graph = cycle_graph(12)
    spanner = [e for e in graph.edges() if set(e) != {0, 11}]
    ok_report = verify_spanner(graph, graph.edges(), stretch_bound=1)
    assert ok_report.satisfies(1)
    bad_report = verify_spanner(graph, spanner, stretch_bound=3)
    assert not bad_report.satisfies(3)


def test_preserves_connectivity_and_spanner_is_connected():
    graph = gnp_graph(50, 0.15, seed=2)
    assert preserves_connectivity(graph, graph.edges())
    tree_like = [e for i, e in enumerate(sorted(graph.edges())) if i % 2 == 0]
    # dropping half the edges may disconnect; just check the predicate runs
    result = preserves_connectivity(graph, tree_like)
    assert isinstance(result, bool)
    assert spanner_is_connected(graph, graph.edges()) or not spanner_is_connected(
        graph, graph.edges()
    )


def test_density_ratio_and_bound_ratio():
    graph = cycle_graph(10)
    assert density_ratio(graph, graph.edges()) == pytest.approx(1.0)
    assert density_ratio(graph, list(graph.edges())[:5]) == pytest.approx(0.5)
    assert density_ratio(Graph({}), []) == 0.0
    assert size_against_bound(100, 200.0) == pytest.approx(0.5)
    assert size_against_bound(100, 0.0) == float("inf")


def test_stretch_report_on_empty_edge_set_graph():
    graph = Graph({0: [], 1: []})
    report = measure_stretch(graph, [])
    assert report.max_stretch == 0
    assert report.checked_edges == 0
