"""Unit tests for the 5-spanner building blocks (params, classify, buckets, reps)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ParameterError
from repro.core.oracle import AdjacencyListOracle
from repro.graphs import Graph, gnp_graph, planted_hub_graph
from repro.spanner3.centers import PrefixCenterSystem
from repro.spanner5 import (
    CROWDED,
    DESERTED,
    OUTSIDE,
    DesertedCrowdedClassifier,
    FiveSpannerParams,
    RepresentativeSystem,
)
from repro.spanner5.buckets import (
    DegreeBoundedCenterSystem,
    bucket_containing,
    partition_into_buckets,
)


# --------------------------------------------------------------------------- #
# Parameters
# --------------------------------------------------------------------------- #
def test_params_general_graph_case_r3():
    params = FiveSpannerParams.for_graph(10_000, stretch_parameter=3)
    assert params.med_threshold == math.ceil(10_000 ** (1 / 3))
    assert params.super_threshold == math.ceil(10_000 ** (5 / 6))
    assert params.low_threshold == params.med_threshold  # Δ_low = Δ_med for r=3


def test_params_r_validation():
    with pytest.raises(ParameterError):
        FiveSpannerParams.for_graph(100, stretch_parameter=1)
    with pytest.raises(ParameterError):
        FiveSpannerParams.for_graph(0)


def test_params_edge_classification():
    params = FiveSpannerParams.for_graph(10_000, stretch_parameter=3)
    low, med, sup = params.low_threshold, params.med_threshold, params.super_threshold
    assert params.classify_edge(low, sup) == "low"
    assert params.classify_edge(med + 1, sup + 5) == "super"
    assert params.classify_edge(med + 1, sup - 1) == "medium"
    assert params.in_medium_band(med) and params.in_medium_band(sup)
    assert not params.in_medium_band(sup + 1)
    assert params.is_super_degree(sup + 1)


def test_params_targets():
    params = FiveSpannerParams.for_graph(10_000, stretch_parameter=3)
    assert params.expected_edge_bound() == pytest.approx(10_000 ** (4 / 3))
    assert params.expected_probe_bound() == pytest.approx(10_000 ** (5 / 6))


# --------------------------------------------------------------------------- #
# Deserted / crowded classification
# --------------------------------------------------------------------------- #
def build_classifier(num_vertices=1000, med=4, sup=8):
    params = FiveSpannerParams(
        num_vertices=num_vertices,
        stretch_parameter=3,
        low_threshold=med,
        med_threshold=med,
        super_threshold=sup,
        bucket_center_probability=1.0,
        super_center_probability=1.0,
        representative_samples=6,
        independence=8,
    )
    return params, DesertedCrowdedClassifier(params)


def test_classifier_outside_band():
    params, classifier = build_classifier()
    graph = Graph.from_edges([(0, 1), (0, 2)])  # degrees below Δ_med
    oracle = AdjacencyListOracle(graph)
    assert classifier.classify(oracle, 0) == OUTSIDE


def test_classifier_deserted_vs_crowded():
    params, classifier = build_classifier(med=4, sup=8)
    # vertex 0: degree 5, its first 4 neighbors all have small degree → deserted
    deserted_edges = [(0, i) for i in range(1, 6)]
    graph_d = Graph.from_edges(deserted_edges)
    assert classifier.classify(AdjacencyListOracle(graph_d), 0) == DESERTED

    # vertex 0: degree 5 but its neighbors are hubs of degree > 8 → crowded
    crowded_edges = [(0, i) for i in range(1, 6)]
    for hub in range(1, 6):
        crowded_edges += [(hub, 100 + hub * 20 + j) for j in range(9)]
    graph_c = Graph.from_edges(crowded_edges)
    assert classifier.classify(AdjacencyListOracle(graph_c), 0) == CROWDED


def test_classifier_global_matches_oracle():
    params, classifier = build_classifier(med=3, sup=10)
    graph = planted_hub_graph(80, num_hubs=3, hub_degree=30, seed=2)
    oracle = AdjacencyListOracle(graph)
    for v in graph.vertices():
        assert classifier.classify(oracle, v) == classifier.classify_global(graph, v)


# --------------------------------------------------------------------------- #
# Buckets
# --------------------------------------------------------------------------- #
def test_partition_into_buckets_sizes_and_order():
    members = [9, 1, 5, 3, 7, 2, 8]
    buckets = partition_into_buckets(members, bucket_size=3)
    assert [len(b) for b in buckets] == [3, 3, 1]
    flattened = [v for bucket in buckets for v in bucket]
    assert flattened == sorted(members)


def test_partition_is_order_insensitive():
    members = [4, 2, 9, 7]
    assert partition_into_buckets(members, 2) == partition_into_buckets(
        list(reversed(members)), 2
    )


def test_bucket_containing_returns_members_bucket():
    members = list(range(10))
    bucket = bucket_containing(members, bucket_size=4, vertex=5)
    assert 5 in bucket
    assert bucket == [4, 5, 6, 7]
    assert bucket_containing(members, 4, vertex=99) == []


def test_degree_bounded_center_system():
    graph = planted_hub_graph(60, num_hubs=2, hub_degree=30, seed=3)
    system = DegreeBoundedCenterSystem(
        seed=5, probability=1.0, prefix=4, degree_bound=10, independence=8
    )
    oracle = AdjacencyListOracle(graph)
    hubs = [v for v in graph.vertices() if graph.degree(v) > 10]
    assert hubs
    for hub in hubs:
        assert not system.is_center(oracle, hub)  # degree bound excludes hubs
    centers = system.center_set(oracle, hubs[0])
    for c in centers:
        assert graph.degree(c) <= 10
    # cluster members all contain the center within their prefix
    if centers:
        members = system.cluster_members(oracle, centers[0])
        assert centers[0] in members
        for member in members:
            if member == centers[0]:
                continue
            index = graph.adjacency_index(member, centers[0])
            assert index is not None and index < 4


def test_degree_bounded_global_matches_oracle():
    graph = gnp_graph(50, 0.2, seed=9)
    system = DegreeBoundedCenterSystem(
        seed=5, probability=0.6, prefix=3, degree_bound=8, independence=8
    )
    oracle = AdjacencyListOracle(graph)
    for v in graph.vertices():
        assert system.is_center(oracle, v) == system.is_center_global(graph, v)
        assert system.center_set(oracle, v) == system.center_set_global(graph, v)


# --------------------------------------------------------------------------- #
# Representatives
# --------------------------------------------------------------------------- #
def make_representative_system(params):
    super_centers = PrefixCenterSystem(
        seed=11,
        probability=1.0,
        prefix=params.super_threshold,
        independence=8,
    )
    return RepresentativeSystem(seed=13, params=params, super_centers=super_centers)


def test_representatives_are_super_degree_neighbors():
    params = FiveSpannerParams(
        num_vertices=1000,
        stretch_parameter=3,
        low_threshold=4,
        med_threshold=4,
        super_threshold=8,
        bucket_center_probability=1.0,
        super_center_probability=1.0,
        representative_samples=8,
        independence=8,
    )
    system = make_representative_system(params)
    # vertex 0 has 4 hub neighbors (degree > 8) and 1 small neighbor
    edges = [(0, i) for i in range(1, 6)]
    for hub in range(1, 5):
        edges += [(hub, 200 + hub * 30 + j) for j in range(10)]
    graph = Graph.from_edges(edges)
    oracle = AdjacencyListOracle(graph)
    reps = system.representatives(oracle, 0)
    assert reps  # with 8 samples over 4 positions some hub is hit
    for rep in reps:
        assert graph.degree(rep) > params.super_threshold
    # RS(0) maps centers to witnessing representatives
    reachable = system.reachable_centers(oracle, 0)
    for center, witness in reachable.items():
        assert witness in reps
        assert system.covers_center(oracle, 0, center)


def test_representatives_deterministic_and_global_agrees():
    params = FiveSpannerParams.for_graph(200, stretch_parameter=3)
    system = make_representative_system(params)
    graph = planted_hub_graph(120, num_hubs=4, hub_degree=70, seed=9)
    oracle = AdjacencyListOracle(graph)
    for v in list(graph.vertices())[:50]:
        first = system.representatives(oracle, v)
        second = system.representatives(oracle, v)
        assert first == second
        assert first == system.representatives_global(graph, v)
