"""Concurrent serving equivalence + deterministic clocks.

The futures-based engine (per-shard pinned workers, bounded in-flight
batches) may only change wall-clock numbers.  For open-loop workloads the
served stream, every answer, every per-request probe total and the
per-shard telemetry must be identical across ``executor`` backends,
``workers`` caps and ``max_inflight`` depths; and every recorded timestamp
must come from the injected clock, so latency tests are fully
deterministic.
"""

from __future__ import annotations

import pytest

from repro import graphs
from repro.core.registry import create
from repro.service import ServiceConfig, ServiceEngine, make_workload


@pytest.fixture
def graph():
    return graphs.gnp_graph(60, 0.2, seed=3)


def _factory(graph):
    return create("spanner3", graph, seed=5, hitting_constant=1.0)


def _run(graph, config, kind="zipf", requests=240, seed=9, clock=None):
    workload = make_workload(kind, graph, num_requests=requests, seed=seed)
    engine = ServiceEngine(graph, _factory, config)
    if clock is None:
        report = engine.run(workload)
    else:
        report = engine.run(workload, clock=clock)
    return engine, report


def _stream(engine):
    return [(r.seq, r.u, r.v, r.in_spanner, r.probe_total) for r in engine.records]


#: Concurrency axes: executors, worker caps below the shard count, and
#: pipelining depths.  All must be invisible to the served stream.
PARALLEL_CONFIGS = [
    dict(executor="thread"),
    dict(executor="thread", workers=2),
    dict(executor="thread", max_inflight=3),
    dict(executor="serial", max_inflight=2),
    dict(executor="thread", workers=1, max_inflight=4),
]


@pytest.mark.parametrize("kind", ["uniform", "zipf"])
def test_concurrent_serving_is_stream_identical_to_serial(graph, kind):
    baseline_engine, baseline = _run(
        graph, ServiceConfig(num_shards=3, batch_size=8), kind=kind
    )
    reference = _stream(baseline_engine)
    for overrides in PARALLEL_CONFIGS:
        engine, report = _run(
            graph, ServiceConfig(num_shards=3, batch_size=8, **overrides), kind=kind
        )
        assert _stream(engine) == reference, overrides
        assert report.served == baseline.served
        assert [s.requests for s in report.shard_reports] == [
            s.requests for s in baseline.shard_reports
        ], overrides
        assert [s.probes.total for s in report.shard_reports] == [
            s.probes.total for s in baseline.shard_reports
        ], overrides


def test_adaptive_feedback_stream_matches_serial_without_pipelining(graph):
    """With max_inflight=1 the adaptive workload observes answers at the
    same points as the classic engine, so even the *stream* is identical."""
    baseline_engine, _ = _run(
        graph, ServiceConfig(num_shards=2, batch_size=4), kind="adaptive"
    )
    threaded_engine, _ = _run(
        graph,
        ServiceConfig(num_shards=2, batch_size=4, executor="thread"),
        kind="adaptive",
    )
    assert _stream(threaded_engine) == _stream(baseline_engine)


def test_unbatched_path_is_stream_identical_under_threads(graph):
    baseline_engine, _ = _run(
        graph, ServiceConfig(num_shards=3, batch_size=8, coalesce=False)
    )
    threaded_engine, _ = _run(
        graph,
        ServiceConfig(num_shards=3, batch_size=8, coalesce=False, executor="thread"),
    )
    assert _stream(threaded_engine) == _stream(baseline_engine)


def test_admission_control_is_executor_independent(graph):
    """The executor must not change queue dynamics: with the same
    ``max_inflight`` the exact same requests are admitted and shed.
    (``max_inflight`` itself legitimately changes occupancy — a deeper
    pipeline drains the queue faster — so it is compared separately
    against its own accounting invariants.)"""
    overload = dict(num_shards=2, batch_size=4, arrival_burst=32, max_queue_depth=8)
    _, serial = _run(graph, ServiceConfig(**overload), kind="uniform", requests=400)
    _, threaded = _run(
        graph,
        ServiceConfig(executor="thread", **overload),
        kind="uniform",
        requests=400,
    )
    assert serial.rejected > 0
    assert (threaded.offered, threaded.admitted, threaded.rejected) == (
        serial.offered,
        serial.admitted,
        serial.rejected,
    )
    assert threaded.max_queue_depth_seen == serial.max_queue_depth_seen

    _, piped = _run(
        graph,
        ServiceConfig(executor="thread", max_inflight=2, **overload),
        kind="uniform",
        requests=400,
    )
    assert piped.offered == serial.offered
    assert piped.admitted + piped.rejected == piped.offered
    assert piped.served == piped.admitted
    assert piped.max_queue_depth_seen <= overload["max_queue_depth"]


# --------------------------------------------------------------------------- #
# Clock injection: every timestamp flows through the provided clock
# --------------------------------------------------------------------------- #
def _tick_clock():
    ticks = iter(range(1_000_000))
    return lambda: next(ticks)


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_injected_clock_yields_deterministic_latencies(graph, executor):
    config = lambda: ServiceConfig(num_shards=2, batch_size=4, executor=executor)
    _, first = _run(graph, config(), requests=60, clock=_tick_clock())
    _, second = _run(graph, config(), requests=60, clock=_tick_clock())
    assert first.latency.samples_s == second.latency.samples_s
    # Tick-clock stamps are integers; any wall-clock leak would show up as
    # a fractional difference.
    assert all(
        sample > 0 and float(sample).is_integer()
        for sample in first.latency.samples_s
    ), "a timestamp bypassed the injected clock"
    assert float(first.duration_s).is_integer()


def test_unbatched_requests_get_individual_completion_stamps(graph):
    """coalesce=False is the per-request baseline: each request in a batch
    must carry its own completion time (strictly increasing within the
    batch under a tick clock), not one shared batch stamp."""
    config = ServiceConfig(num_shards=1, batch_size=4, coalesce=False)
    engine, report = _run(graph, config, requests=12, clock=_tick_clock())
    assert report.served == 12
    # Under a tick clock both arrival and per-request completion stamps
    # advance one tick per request, so within a batch latencies are
    # non-decreasing; a single shared batch stamp would make them strictly
    # decrease (later arrivals, same completion).
    for first, second in zip(engine.records, engine.records[1:]):
        same_batch = (second.seq - 1) // config.batch_size == (
            first.seq - 1
        ) // config.batch_size
        if same_batch:
            assert second.latency_s >= first.latency_s


def test_no_code_path_reads_the_wall_clock_when_a_clock_is_injected(
    graph, monkeypatch
):
    """Audit-by-construction: break time.perf_counter for the engine module;
    a run with an injected clock must never touch it."""
    import repro.service.engine as engine_module

    def _forbidden():  # pragma: no cover - failing is the point
        raise AssertionError("engine read time.perf_counter despite injected clock")

    monkeypatch.setattr(engine_module.time, "perf_counter", _forbidden)
    _, report = _run(
        graph,
        ServiceConfig(num_shards=2, batch_size=4, executor="thread", max_inflight=2),
        requests=40,
        clock=_tick_clock(),
    )
    assert report.served == 40


def test_metrics_module_has_no_wall_clock_dependency():
    import inspect

    import repro.service.metrics as metrics_module

    source = inspect.getsource(metrics_module)
    assert "perf_counter" not in source
    assert "time.time" not in source


def test_config_validation_covers_the_new_knobs():
    with pytest.raises(ValueError, match="service executor"):
        ServiceConfig(executor="process")
    with pytest.raises(ValueError):
        ServiceConfig(max_inflight=0)
    with pytest.raises(ValueError):
        ServiceConfig(workers=0)
