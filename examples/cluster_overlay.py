#!/usr/bin/env python3
"""Building a bounded-stretch overlay for a clustered data-center topology.

Scenario: a system of dense server racks (cliques) with a sparse mesh of
inter-rack links wants a *sparse overlay* — each link asks locally "should I
be part of the overlay?" — while guaranteeing that any two directly connected
servers stay within a small constant number of overlay hops.

The 5-spanner LCA answers exactly that question.  The script materializes the
overlay (to verify it), compares it to the global greedy spanner and to the
O(k²) construction, and reports size, worst stretch and probe cost.

Run:  python examples/cluster_overlay.py [racks] [rack_size] [seed]
"""

from __future__ import annotations

import sys

from repro import FiveSpannerLCA, KSquaredSpannerLCA, evaluate_lca, format_table, graphs
from repro.analysis import measure_stretch
from repro.baselines import greedy_spanner
from repro.spannerk import KSquaredParams


def main(argv: list[str]) -> int:
    racks = int(argv[1]) if len(argv) > 1 else 14
    rack_size = int(argv[2]) if len(argv) > 2 else 10
    seed = int(argv[3]) if len(argv) > 3 else 3

    n = racks * rack_size
    print(f"Building {racks} racks of {rack_size} servers each (n={n}) ...")
    graph = graphs.dense_cluster_graph(n, racks, inter_probability=0.04, seed=seed)
    print(f"  {graph}; max degree {graph.max_degree()}")

    rows = []

    overlay_lca = FiveSpannerLCA(graph, seed=seed, hitting_constant=1.0)
    report5 = evaluate_lca(overlay_lca)
    rows.append(
        {
            "overlay": "5-spanner LCA",
            "links kept": report5.num_spanner_edges,
            "of": graph.num_edges,
            "worst stretch": report5.stretch.max_stretch,
            "stretch budget": 5,
            "max probes/query": report5.probe_max,
        }
    )

    k2_params = KSquaredParams(
        num_vertices=n,
        stretch_parameter=2,
        exploration_budget=max(4, round(n ** (1 / 3))),
        center_probability=0.4,
        mark_probability=0.2,
        rank_quota=max(4, 2 * int(n ** 0.5)),
        independence=12,
    )
    k2_lca = KSquaredSpannerLCA(graph, seed=seed, params=k2_params, shared_cache=True)
    report_k2 = evaluate_lca(k2_lca)
    rows.append(
        {
            "overlay": "O(k^2)-spanner LCA (k=2)",
            "links kept": report_k2.num_spanner_edges,
            "of": graph.num_edges,
            "worst stretch": report_k2.stretch.max_stretch,
            "stretch budget": k2_lca.stretch_bound(),
            "max probes/query": report_k2.probe_max,
        }
    )

    greedy = greedy_spanner(graph, stretch_parameter=3)
    greedy_stretch = measure_stretch(graph, greedy, limit=6).max_stretch
    rows.append(
        {
            "overlay": "global greedy 5-spanner (reads everything)",
            "links kept": len(greedy),
            "of": graph.num_edges,
            "worst stretch": greedy_stretch,
            "stretch budget": 5,
            "max probes/query": None,
        }
    )

    print()
    print(format_table(rows, title="Overlay candidates"))

    ok = report5.stretch_ok and report5.connectivity_preserved
    print(
        "\n5-spanner overlay preserves rack-to-rack connectivity:"
        f" {report5.connectivity_preserved}; stretch within budget: {report5.stretch_ok}"
    )
    print(
        "The LCA overlays cost probes per link decision; the greedy overlay"
        " needs the entire topology in one place."
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
