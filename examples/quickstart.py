#!/usr/bin/env python3
"""Quickstart: answer "is this edge in a 3-spanner?" without building one.

The script builds a moderately dense random graph, wraps it in the 3-spanner
LCA of Theorem 1.1 and answers a handful of edge queries, printing the probe
cost of each answer.  It then materializes the full spanner (something a real
deployment would never do — it exists here to *verify* the local answers) and
checks the stretch-3 guarantee.

Run:  python examples/quickstart.py [n] [density] [seed]
"""

from __future__ import annotations

import sys

from repro import ThreeSpannerLCA, evaluate_lca, format_table, graphs


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 300
    density = float(argv[2]) if len(argv) > 2 else 0.15
    seed = int(argv[3]) if len(argv) > 3 else 7

    print(f"Building G(n={n}, p={density}) ...")
    graph = graphs.gnp_graph(n, density, seed=seed)
    print(f"  {graph}  (max degree {graph.max_degree()})")

    lca = ThreeSpannerLCA(graph, seed=seed, hitting_constant=1.0)
    print(
        "\nThe LCA answers per-edge queries against one fixed 3-spanner of G\n"
        f"(thresholds: sqrt(n)={lca.params.low_threshold}, "
        f"n^(3/4)={lca.params.super_threshold}).\n"
    )

    rows = []
    for (u, v) in list(graph.edges())[:8]:
        outcome = lca.query_with_stats(u, v)
        rows.append(
            {
                "edge": f"({u}, {v})",
                "deg(u)/deg(v)": f"{graph.degree(u)}/{graph.degree(v)}",
                "in spanner?": outcome.in_spanner,
                "probes used": outcome.probe_total,
            }
        )
    print(format_table(rows, title="Sample queries"))

    print("\nMaterializing the full spanner for verification ...")
    report = evaluate_lca(lca)
    print(
        format_table(
            [report.as_row()], title="Verification (subgraph, stretch, probes)"
        )
    )
    if not report.stretch_ok:
        print("ERROR: stretch bound violated")
        return 1
    kept = report.num_spanner_edges
    print(
        f"\nThe spanner keeps {kept} of {graph.num_edges} edges "
        f"({100 * kept / graph.num_edges:.1f}%) with worst stretch "
        f"{report.stretch.max_stretch} <= 3."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
