#!/usr/bin/env python3
"""The "illusion of a precomputed spanner" on a degree-skewed social graph.

Scenario (the paper's motivation): the graph is too large to sparsify
up-front, but a routing / visualization layer wants to know, edge by edge,
whether a link belongs to a sparse backbone with bounded stretch.  The LCA
answers each query from scratch using a few hundred probes, so the backbone
never has to be stored anywhere.

The script builds a power-law graph (hubs + long tail), answers a batch of
edge queries with each of the paper's constructions and reports:

* the fraction of queried edges kept by each construction,
* the per-query probe statistics (the real currency of the LCA model),
* how the probe cost compares to the trivial alternative of reading the
  endpoints' full neighborhoods.

Run:  python examples/social_network_queries.py [n] [queries] [seed]
"""

from __future__ import annotations

import random
import sys

from repro import FiveSpannerLCA, ThreeSpannerLCA, format_table, graphs
from repro.baselines import SparseSpanningSubgraphLCA


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 800
    num_queries = int(argv[2]) if len(argv) > 2 else 150
    seed = int(argv[3]) if len(argv) > 3 else 11

    print(f"Building a power-law 'social' graph on {n} vertices ...")
    graph = graphs.power_law_graph(n, exponent=2.3, min_degree=3, seed=seed)
    degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
    print(
        f"  {graph}; top degrees {degrees[:5]}, median degree {degrees[len(degrees)//2]}"
    )

    rng = random.Random(seed)
    queries = rng.sample(list(graph.edges()), min(num_queries, graph.num_edges))

    constructions = [
        ("3-spanner LCA (stretch 3)", ThreeSpannerLCA(graph, seed=seed, hitting_constant=1.0)),
        ("5-spanner LCA (stretch 5)", FiveSpannerLCA(graph, seed=seed, hitting_constant=1.0)),
        ("sparse-spanning LCA (prior work)", SparseSpanningSubgraphLCA(graph, seed=seed, radius=2)),
    ]

    rows = []
    for label, lca in constructions:
        kept = 0
        for (u, v) in queries:
            kept += int(lca.query(u, v))
        stats = lca.probe_stats
        # reading both endpoints' neighborhoods is the naive alternative
        naive = max(graph.degree(u) + graph.degree(v) for (u, v) in queries)
        rows.append(
            {
                "construction": label,
                "kept fraction": round(kept / len(queries), 3),
                "mean probes/query": round(stats.mean, 1),
                "max probes/query": stats.max,
                "p95 probes/query": stats.percentile(95),
                "naive neighborhood read": naive,
            }
        )

    print()
    print(format_table(rows, title=f"{len(queries)} edge queries, no global computation"))
    print(
        "\nEvery answer above is consistent with one fixed spanner per"
        " construction; querying the same edge again (or from the other"
        " endpoint) returns the same answer."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
