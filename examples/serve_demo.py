#!/usr/bin/env python3
"""Serve spanner queries online: shards, batching, workloads, traces.

The script stands up the online query service on a random graph and walks
through the serving story end to end:

1. a **zipf** workload (hot-vertex-heavy, like real query logs) served by a
   4-shard pool with batch coalescing — the production configuration;
2. the same stream through the unbatched single-shard baseline — same
   answers, same per-request probe totals, a fraction of the throughput;
3. an **adaptive** workload whose requests follow earlier answers (clients
   walking the spanner), recorded to a JSONL trace;
4. a bit-exact **trace replay** of that recording — the regression workhorse.

Run:  python examples/serve_demo.py [n] [density] [requests]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import ServiceConfig, ServiceEngine, format_table, graphs, make_workload
from repro.core.registry import create
from repro.service import write_trace


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 300
    density = float(argv[2]) if len(argv) > 2 else 0.08
    requests = int(argv[3]) if len(argv) > 3 else 2000
    seed = 7

    print(f"Building G(n={n}, p={density}) ...")
    graph = graphs.gnp_graph(n, density, seed=seed).to_backend("csr")
    print(f"  {graph}")

    def factory(g):
        return create("spanner3", g, seed=seed)

    rows = []

    # 1. Production-shaped: 4 hash-routed shards, coalesced batches.
    workload = make_workload("zipf", graph, num_requests=requests, seed=1)
    engine = ServiceEngine(
        graph, factory, ServiceConfig(num_shards=4, batch_size=32)
    )
    report = engine.run(workload)
    rows.append(report.as_row())

    # 2. Baseline: one shard, no coalescing — identical answers, slower.
    workload = make_workload("zipf", graph, num_requests=requests, seed=1)
    baseline_engine = ServiceEngine(
        graph, factory, ServiceConfig(num_shards=1, batch_size=1, coalesce=False)
    )
    baseline = baseline_engine.run(workload)
    rows.append(baseline.as_row())
    mismatches = sum(
        1
        for a, b in zip(engine.records, baseline_engine.records)
        if (a.u, a.v, a.in_spanner, a.probe_total)
        != (b.u, b.v, b.in_spanner, b.probe_total)
    )
    print(
        f"\nsharded+coalesced vs single-oracle baseline: "
        f"{mismatches} mismatches across {len(engine.records)} requests "
        f"(answers and probe totals are bit-identical)"
    )

    # 3. Adaptive workload, recorded to a trace.
    workload = make_workload("adaptive", graph, num_requests=requests // 2, seed=2)
    engine = ServiceEngine(graph, factory, ServiceConfig(num_shards=2, batch_size=16))
    report = engine.run(workload)
    rows.append(report.as_row())
    trace_path = Path(tempfile.gettempdir()) / "serve_demo_trace.jsonl"
    write_trace(trace_path, [(r.u, r.v) for r in engine.records])
    adaptive_records = list(engine.records)

    # 4. Bit-exact replay of the recorded stream.
    workload = make_workload("trace", graph, path=str(trace_path))
    engine = ServiceEngine(graph, factory, ServiceConfig(num_shards=3, batch_size=64))
    report = engine.run(workload)
    rows.append(report.as_row())
    replay_ok = all(
        (a.u, a.v, a.in_spanner, a.probe_total)
        == (b.u, b.v, b.in_spanner, b.probe_total)
        for a, b in zip(adaptive_records, engine.records)
    )
    print(f"trace replay ({trace_path}): bit-identical = {replay_ok}")

    print()
    print(format_table(rows, title="Service runs"))
    return 0 if replay_ok and mismatches == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
