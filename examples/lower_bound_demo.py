#!/usr/bin/env python3
"""Why sub-√n probes cannot work: the Theorem 1.3 experiment.

Two distributions over 3-regular graphs share a designated edge (x, y):
in D⁺ the edge is redundant (its endpoints stay connected without it), in
D⁻ it is the only bridge between two halves.  Any spanner LCA that wants to
drop a constant fraction of edges has to tell the two cases apart — and the
theorem says it cannot with o(min{√n, n²/m}) probes.

The script samples instances from both families and lets a probe-limited
breadth-first distinguisher guess the family, sweeping the probe budget
through the theoretical threshold so the phase transition is visible.

Run:  python examples/lower_bound_demo.py [n] [trials] [seed]
"""

from __future__ import annotations

import sys

from repro import format_table
from repro.lowerbound import advantage_curve

DEGREE = 3


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 202
    trials = int(argv[2]) if len(argv) > 2 else 12
    seed = int(argv[3]) if len(argv) > 3 else 1

    if n % 4 != 2:
        print("n must be ≡ 2 (mod 4) for the two-halves construction; adjusting.")
        n += 2 - (n % 4) if n % 4 < 2 else 4 - (n % 4) + 2

    threshold = min(n ** 0.5, n / DEGREE)
    budgets = [2, 8, int(threshold // 4), int(threshold), int(4 * threshold), 10 * n]
    print(
        f"n={n}, d={DEGREE}: Theorem 1.3 threshold min(sqrt(n), n/d) ≈ {threshold:.0f}\n"
        f"Running {trials} trials per probe budget ..."
    )

    curve = advantage_curve(n, DEGREE, probe_budgets=budgets, trials=trials, seed=seed)
    rows = [
        {
            "probe budget": point.probe_budget,
            "budget / threshold": round(point.probe_budget / threshold, 2),
            "success rate": round(point.success_rate, 2),
            "advantage over guessing": round(point.advantage, 2),
        }
        for point in curve
    ]
    print()
    print(format_table(rows, title="Distinguishing D+ from D- under a probe budget"))
    print(
        "\nBelow the threshold the distinguisher is no better than guessing —"
        " an LCA in that regime must keep the designated edge, and hence Ω(m)"
        " edges overall (Theorem 1.3)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
