#!/usr/bin/env python3
"""Scaling study: how spanner size and probe cost grow with the graph.

A compact, runnable version of the benchmark sweeps: for a sequence of graph
sizes the script samples edge queries against the 3-spanner LCA, estimates
the spanner size from the YES-rate, measures the per-query probe counts and
fits the log-log growth exponents, printing them next to the paper's
Õ(n^{3/2}) / Õ(n^{3/4}) targets.

Run:  python examples/probe_budget_study.py [max_n] [density] [seed]
"""

from __future__ import annotations

import sys

from repro import format_table, graphs
from repro.analysis import exponent_row, run_sweep
from repro.spanner3 import ThreeSpannerLCA


def main(argv: list[str]) -> int:
    max_n = int(argv[1]) if len(argv) > 1 else 1600
    density = float(argv[2]) if len(argv) > 2 else 0.12
    seed = int(argv[3]) if len(argv) > 3 else 17

    sizes = []
    n = max(100, max_n // 8)
    while n <= max_n:
        sizes.append(n)
        n *= 2
    print(f"Sweeping sizes {sizes} at density {density} (sampled queries) ...")

    sweep = run_sweep(
        "3-spanner LCA",
        lca_factory=lambda g, s: ThreeSpannerLCA(g, seed=s, hitting_constant=1.0),
        graph_factory=lambda size, s: graphs.gnp_graph(size, density, seed=s),
        sizes=sizes,
        seed=seed,
        materialize=False,
        probe_queries=120,
    )

    print()
    print(format_table(sweep.rows(), title="Measured growth"))
    print()
    print(
        format_table(
            [exponent_row(sweep, target_size_exponent=1.5, target_probe_exponent=0.75)],
            title="Fitted log-log exponents vs the paper's targets",
        )
    )
    print(
        "\nNote: at laptop scale the polylog factors hidden in Õ(·) are"
        " comparable to the polynomial terms, so fitted exponents sit above"
        " the asymptotic targets; the point is that both stay clearly below"
        " the trivial m ~ n² / probe ~ n lines."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
