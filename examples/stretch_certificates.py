#!/usr/bin/env python3
"""Per-edge stretch certificates: better-than-worst-case guarantees.

The paper's discussion (Section 1.3) points out that the folklore
stretch/size trade-off is only tight for edges whose endpoints have moderate
degree; once an endpoint is high degree the constructions guarantee a much
smaller stretch for that edge.  This example issues a certificate for every
edge of a degree-skewed graph under the 3-spanner LCA, summarizes how many
edges enjoy stretch 1 (kept) versus 3 (rerouted), and verifies each
certificate against the materialized spanner.

Run:  python examples/stretch_certificates.py [n] [density] [seed]
"""

from __future__ import annotations

import sys

from repro import ThreeSpannerLCA, format_table, graphs
from repro.analysis import certify_edges, measure_stretch, summarize_certificates


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 250
    density = float(argv[2]) if len(argv) > 2 else 0.3
    seed = int(argv[3]) if len(argv) > 3 else 3

    # A dense random graph: most edges have two high-degree endpoints, so the
    # LCA actually drops a sizeable fraction of them (certificate "3"), while
    # the edges touching low-degree vertices are certified at stretch 1.
    graph = graphs.gnp_graph(n, density, seed=seed)
    print(f"Graph: {graph} with max degree {graph.max_degree()}")

    lca = ThreeSpannerLCA(graph, seed=seed, hitting_constant=1.0)
    certificates = certify_edges(lca, graph.edges())
    summary = summarize_certificates(certificates)

    rows = [
        {"per-edge guarantee": guarantee, "# edges": count}
        for guarantee, count in sorted(summary["by_guarantee"].items())
    ]
    print()
    print(format_table(rows, title="Certificates issued"))
    rule_rows = [
        {"rule": rule, "# edges": count}
        for rule, count in sorted(summary["by_rule"].items())
    ]
    print()
    print(format_table(rule_rows, title="Responsible rules"))

    print("\nVerifying every certificate against the materialized spanner ...")
    materialized = lca.materialize()
    violations = 0
    for certificate in certificates:
        report = measure_stretch(
            graph,
            materialized.edges,
            limit=certificate.guarantee,
            sample_edges=[certificate.edge],
        )
        if report.max_stretch is None or report.max_stretch > certificate.guarantee:
            violations += 1
    print(f"  certificates checked: {len(certificates)}, violations: {violations}")
    if violations:
        return 1
    kept = summary["kept"]
    print(
        f"\n{kept} of {summary['total']} edges are certified at stretch 1 (kept);"
        " the remaining edges are certified at stretch 3 — strictly better than"
        " the worst case whenever their endpoints are low degree."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
