"""Epoch-stamped numpy images of a graph's adjacency (the kernel substrate).

A :class:`CSRView` freezes one mutation epoch of a graph into flat int64
arrays — exactly the CSR layout, plus the derived per-entry tables the
kernels index into (entry source, in-row offset, reverse-entry permutation).
Views are read-only copies: mutating the graph never corrupts a view, and
the epoch stamp lets the kernel engine drop a stale view on the next call.

Building a view performs **zero probes**: it reads the adjacency structure
directly, the same way :meth:`repro.graphs.graph.Graph.edges` does.  All
probe charging stays in the kernels, which replicate the scalar schedule.
"""

from __future__ import annotations

from typing import Optional

from ..graphs.csr import CSRGraph


class CSRView:
    """Immutable numpy adjacency image of one graph epoch.

    Vertices are addressed by *position* (row index); ``ids``/``pos`` map
    between positions and vertex ids.  For every CSR entry ``e`` (one
    directed arc), ``entry_src[e]`` is the source position, ``entry_j[e]``
    the offset of ``e`` inside its row, ``nbr_id``/``nbr_pos`` the target.
    ``rev_entry`` (lazy) maps each entry to its reverse arc's entry index.
    """

    __slots__ = (
        "np",
        "n",
        "nnz",
        "ids",
        "pos",
        "deg",
        "indptr",
        "nbr_id",
        "nbr_pos",
        "entry_src",
        "entry_j",
        "_rev_entry",
        "_rev_pos",
        "_adj_keys",
    )

    def __init__(self, np_module, ids, pos, deg, indptr, nbr_id, nbr_pos,
                 entry_src, entry_j):
        self.np = np_module
        self.n = len(ids)
        self.nnz = len(nbr_id)
        self.ids = ids
        self.pos = pos
        self.deg = deg
        self.indptr = indptr
        self.nbr_id = nbr_id
        self.nbr_pos = nbr_pos
        self.entry_src = entry_src
        self.entry_j = entry_j
        self._rev_entry = None
        self._rev_pos = None
        self._adj_keys = None

    @property
    def rev_entry(self):
        """Entry index of each entry's reverse arc (lazy double lexsort).

        Sorting entries by ``(src, nbr)`` and by ``(nbr, src)`` yields the
        same rank for an arc and its reverse (arcs are distinct, the graph is
        simple), so matching the two orders position-by-position pairs every
        arc with its reverse in two O(nnz log nnz) sorts.
        """
        if self._rev_entry is None:
            np = self.np
            by_src = np.lexsort((self.nbr_pos, self.entry_src))
            by_nbr = np.lexsort((self.entry_src, self.nbr_pos))
            rev = np.empty(self.nnz, dtype=np.int64)
            rev[by_src] = by_nbr
            self._rev_entry = rev
        return self._rev_entry

    @property
    def adj_keys(self):
        """Sorted ``src_pos * n + nbr_pos`` arc keys (lazy edge-existence set).

        A batched membership test for arbitrary vertex-position pairs is one
        ``searchsorted`` against this array (positions are < n, so the packed
        key fits int64 for any graph this library can hold).
        """
        if self._adj_keys is None:
            np = self.np
            keys = self.entry_src * self.n + self.nbr_pos
            self._adj_keys = np.sort(keys)
        return self._adj_keys

    def arcs_exist(self, src_pos, nbr_pos):
        """Vectorized edge-existence test on position pairs (bool array)."""
        np = self.np
        keys = src_pos * self.n + nbr_pos
        idx = np.searchsorted(self.adj_keys, keys)
        idx = np.minimum(idx, max(self.nnz - 1, 0))
        if not self.nnz:
            return np.zeros(len(keys), dtype=bool)
        return self.adj_keys[idx] == keys

    @property
    def rev_pos(self):
        """In-row offset of each entry's reverse arc (= adjacency index)."""
        if self._rev_pos is None:
            self._rev_pos = self.rev_entry - self.indptr[self.nbr_pos]
        return self._rev_pos


def build_view(np_module, graph) -> Optional[CSRView]:
    """Build a :class:`CSRView` of ``graph`` at its current epoch.

    Compacted CSR graphs (including shared-memory exports) are converted
    array-at-once from their flat buffers; every other backend (dict
    adjacency, CSR with pending delta overlays) goes through the generic
    ``vertices()``/``neighbors()`` walk.  Returns ``None`` when vertex ids
    do not fit int64 — callers then fall back to the scalar path.
    """
    np = np_module
    ids_list = list(graph.vertices())
    n = len(ids_list)
    try:
        ids = np.array(ids_list, dtype=np.int64)
        flat = (
            isinstance(graph, CSRGraph)
            and graph.delta_count == 0
            and not isinstance(graph._indices, list)
        )
        if flat:
            if isinstance(graph._indices, memoryview):
                # Read-only storage (mmap snapshots, shared-memory
                # attachments): alias the buffers instead of copying —
                # safe because these graphs refuse mutation, so the view
                # can never drift from the arrays it wraps.
                indptr = np.frombuffer(graph._indptr, dtype=np.int64)
                nbr_id = np.frombuffer(graph._indices, dtype=np.int64)
            else:
                indptr = np.array(graph._indptr, dtype=np.int64)
                nbr_id = np.array(graph._indices, dtype=np.int64)
        else:
            rows = [graph.neighbors(v) for v in ids_list]
            counts = np.array([len(row) for row in rows], dtype=np.int64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            total = int(indptr[-1]) if n else 0
            nbr_id = np.fromiter(
                (w for row in rows for w in row), dtype=np.int64, count=total
            )
    except OverflowError:
        return None
    pos = {vertex: index for index, vertex in enumerate(ids_list)}
    deg = indptr[1:] - indptr[:-1]
    nnz = int(indptr[-1]) if n else 0
    if nnz:
        order = np.argsort(ids, kind="stable")
        nbr_pos = order[np.searchsorted(ids[order], nbr_id)]
        entry_src = np.repeat(np.arange(n, dtype=np.int64), deg)
        entry_j = np.arange(nnz, dtype=np.int64) - indptr[entry_src]
    else:
        nbr_pos = np.zeros(0, dtype=np.int64)
        entry_src = np.zeros(0, dtype=np.int64)
        entry_j = np.zeros(0, dtype=np.int64)
    return CSRView(np, ids, pos, deg, indptr, nbr_id, nbr_pos, entry_src, entry_j)
