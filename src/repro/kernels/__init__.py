"""Optional vectorized probe kernels over the CSR adjacency arrays.

The scalar query engines walk adjacency one vertex at a time in pure Python.
This package reimplements the hot probe loops — frontier-at-once BFS levels,
batched Voronoi cell assignment, and the spanner3/spanner5 neighbor-prefix
scans — as numpy array operations directly over flat ``indptr``/``indices``
arrays, while charging the probe ledger *exactly* like the scalar code:
spanner edges, per-query probe totals, and per-kind probe counts are
bit-identical (pinned by the kernel-equivalence tests).

Selection is by name:

``"python"``
    The scalar reference path (no kernel object; always available).
``"numpy"``
    The vectorized path; requires numpy and raises
    :class:`KernelUnavailableError` with a one-line message otherwise.
``"auto"`` (default)
    ``"numpy"`` when numpy imports, ``"python"`` otherwise.

The ``REPRO_KERNEL`` environment variable overrides the ``"auto"`` choice
process-wide (the CI equivalence job runs the full suite under both values).
"""

from __future__ import annotations

import os
from typing import Optional

#: Valid kernel selections, in the order the CLI advertises them.
KERNELS = ("auto", "python", "numpy")

#: Environment variable consulted when the selection is ``None``/``"auto"``.
ENV_KERNEL = "REPRO_KERNEL"


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel cannot be loaded (numpy missing)."""


def _numpy_or_none():
    """Import numpy if present; tests monkeypatch this to simulate absence."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def check_kernel(name: str) -> str:
    """Validate a kernel name, returning it (raises ``ValueError`` otherwise)."""
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choices: {KERNELS}")
    return name


def resolve_kernel(name: Optional[str] = None):
    """Resolve a kernel selection to an engine instance.

    Returns ``None`` for the scalar path ("python") or a fresh
    :class:`~repro.kernels.engine.NumpyKernel` for the vectorized path.
    ``None``/``"auto"`` consult ``REPRO_KERNEL`` and fall back to
    auto-detection; an explicit (or environment-forced) ``"numpy"`` without
    numpy installed raises :class:`KernelUnavailableError` so mis-provisioned
    runs fail loudly instead of silently measuring the wrong engine.
    """
    if name in (None, "auto"):
        env = os.environ.get(ENV_KERNEL)
        if env:
            if env not in KERNELS:
                raise KernelUnavailableError(
                    f"{ENV_KERNEL}={env!r} is not a valid kernel; choices: {KERNELS}"
                )
            name = env
        else:
            name = "auto"
        if name == "auto":
            np_module = _numpy_or_none()
            if np_module is None:
                return None
            from .engine import NumpyKernel

            return NumpyKernel(np_module)
    check_kernel(name)
    if name == "python":
        return None
    np_module = _numpy_or_none()
    if np_module is None:
        raise KernelUnavailableError(
            "kernel='numpy' requires numpy, which is not installed; "
            "install the optional extra: pip install repro-spanner-lca[fast]"
        )
    from .engine import NumpyKernel

    return NumpyKernel(np_module)
