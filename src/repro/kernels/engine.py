"""The numpy kernel engine: epoch-cached views plus per-algorithm kernels.

A :class:`NumpyKernel` is created per LCA (by
:func:`repro.kernels.resolve_kernel`) and attached to that LCA's cached
oracle as ``oracle.kernel``.  Call sites in the scalar code branch on the
attribute: when a kernel is present *and* can build a view of the current
graph epoch, the vectorized path answers with the exact scalar probe
schedule; otherwise the scalar loop runs unchanged.  The engine holds one
epoch-stamped :class:`~repro.kernels.view.CSRView` slot plus scan-table
caches keyed by center system, so repeated queries against an unchanged
graph reuse every precomputed table.
"""

from __future__ import annotations

from typing import Optional

from . import bfs as _bfs
from . import spanner3 as _spanner3
from . import spanner5 as _spanner5
from .view import build_view


class NumpyKernel:
    """Vectorized probe kernels bound to one LCA (one view slot + tables)."""

    name = "numpy"

    #: Minimum ``sources × limit`` workload before :meth:`explore_many`
    #: beats the scalar deque loop; hot call sites check it up front to
    #: skip the call entirely for tiny explorations.
    min_explore_work = _bfs._MIN_BATCH_WORK

    def __init__(self, np_module) -> None:
        self.np = np_module
        self._view_slot = None
        self._prefix_tables = {}
        self._scan_tables = {}

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def view(self, graph):
        """The CSRView of ``graph`` at its current epoch (``None`` if unbuildable)."""
        slot = self._view_slot
        epoch = graph.epoch
        if slot is not None and slot[0] is graph and slot[1] == epoch:
            return slot[2]
        built = build_view(self.np, graph)
        self._view_slot = (graph, epoch, built)
        return built

    # ------------------------------------------------------------------ #
    # spanner3 scan kernels
    # ------------------------------------------------------------------ #
    def prefix_tables(self, view, system) -> "_spanner3.PrefixTables":
        """Election bitmap + prefix-center rows for ``system`` over ``view``."""
        key = id(system)
        entry = self._prefix_tables.get(key)
        if entry is not None and entry[0] is system and entry[1] is view:
            return entry[2]
        tables = _spanner3.build_prefix_tables(self.np, view, system)
        self._prefix_tables[key] = (system, view, tables)
        return tables

    def scan_tables(self, view, system, block: Optional[int]) -> "_spanner3.ScanTables":
        """Closed-form scan outcomes for ``system`` (per block variant)."""
        key = (id(system), block)
        entry = self._scan_tables.get(key)
        if entry is not None and entry[0] is system and entry[1] is view:
            return entry[2]
        prefix = self.prefix_tables(view, system)
        tables = _spanner3.build_scan_tables(self.np, view, prefix, block)
        self._scan_tables[key] = (system, view, tables)
        return tables

    def scan_profile(self, oracle, system, w, x, index, block):
        """One ``_new_cluster_scan_fast`` answer from the precomputed tables."""
        return _spanner3.scan_profile(self, oracle, system, w, x, index, block)

    def materialize_spanner3(self, lca, oracle, result) -> bool:
        """Whole-graph batched spanner3 materialization (True when handled)."""
        return _spanner3.materialize_batched(lca, oracle, self, result)

    # ------------------------------------------------------------------ #
    # spannerk exploration kernel
    # ------------------------------------------------------------------ #
    def explore_many(self, oracle, sources, radius, limit, is_center):
        """Batched frontier-at-once D^k_L explorations (None = fallback)."""
        return _bfs.explore_many(self, oracle, sources, radius, limit, is_center)

    # ------------------------------------------------------------------ #
    # spanner5 bucket kernels
    # ------------------------------------------------------------------ #
    def cluster_row(self, oracle, center, prefix):
        """The cluster-members memo value for ``center`` (None = fallback)."""
        return _spanner5.cluster_row(self, oracle, center, prefix)

    def minimum_bucket_edge(self, oracle, bucket_a, bucket_b, med, degree):
        """Bucket pair scan; 1-tuple with the winning edge id (None = fallback)."""
        return _spanner5.minimum_bucket_edge(
            self, oracle, bucket_a, bucket_b, med, degree
        )
