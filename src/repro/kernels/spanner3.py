"""Vectorized spanner3 probe kernels: prefix-center tables and neighbor scans.

The spanner3 scanning rules (H_high and H_super, Section 2) repeatedly walk a
prefix of a vertex's neighbor row, subtracting prefix-center sets until a
query-specific window is exhausted.  This module precomputes, per graph epoch
and per center system, a closed form of every possible scan: for each CSR
entry ``e = (w → x)`` it derives whether the scan at ``(w, x)`` keeps the
edge, how many row steps it performs, and how many adjacency probes it
charges — so both the per-query scan and the whole-graph batched
materializer become O(1) table lookups with the exact scalar probe schedule.

Derivation (matching ``_new_cluster_scan_fast``): for every element ``s`` of
the prefix-center set S(x), its *first cover* ``fc`` is the smallest row
offset ``j`` in the scan group (whole row for H_high, the block of ``e`` for
H_super) with ``s ∈ S(row_w[j])``.  The scalar loop stops at
``E = index`` when some ``s`` stays uncovered (``fc == index``), else at
``E = max(fc) + 1``; it performs ``E - start`` row steps and
``Σ_s (min(fc+1, E) - start)`` adjacency probes, and keeps the edge iff some
element stayed uncovered (or the window was empty with S(x) nonempty).
"""

from __future__ import annotations

from typing import Optional


class PrefixTables:
    """Election bitmap + prefix-center rows for one center system × epoch."""

    __slots__ = ("elected", "pc_indptr", "pc_val")

    def __init__(self, elected, pc_indptr, pc_val):
        self.elected = elected
        self.pc_indptr = pc_indptr
        self.pc_val = pc_val


class ScanTables:
    """Closed-form scan outcome per CSR entry (one block variant)."""

    __slots__ = ("kept", "steps", "adj")

    def __init__(self, kept, steps, adj):
        self.kept = kept
        self.steps = steps
        self.adj = adj


def build_prefix_tables(np, view, system) -> PrefixTables:
    """Evaluate the (pure, probe-free) center election over a whole view."""
    elected = np.fromiter(
        (bool(system.sampler.is_center(vertex)) for vertex in view.ids.tolist()),
        dtype=bool,
        count=view.n,
    )
    prefix = system.prefix
    if view.nnz:
        mask = (view.entry_j < prefix) & elected[view.nbr_pos]
        sel = np.flatnonzero(mask)
        pc_val = view.nbr_pos[sel]
        counts = np.bincount(view.entry_src[sel], minlength=view.n)
    else:
        pc_val = np.zeros(0, dtype=np.int64)
        counts = np.zeros(view.n, dtype=np.int64)
    pc_indptr = np.zeros(view.n + 1, dtype=np.int64)
    np.cumsum(counts, out=pc_indptr[1:])
    return PrefixTables(elected, pc_indptr, pc_val)


def build_scan_tables(np, view, tables: PrefixTables, block: Optional[int]) -> ScanTables:
    """Materialize kept/steps/adjacency for every entry's scan at once."""
    nnz = view.nnz
    kept = np.zeros(nnz, dtype=bool)
    steps = np.zeros(nnz, dtype=np.int64)
    adj = np.zeros(nnz, dtype=np.int64)
    if not nnz:
        return ScanTables(kept, steps, adj)
    # One "element" per (entry e, center s ∈ S(x_e)) pair, laid out entry-major.
    sizes = tables.pc_indptr[view.nbr_pos + 1] - tables.pc_indptr[view.nbr_pos]
    offsets = np.zeros(nnz + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    total = int(offsets[-1])
    if not total:
        return ScanTables(kept, steps, adj)
    eid = np.repeat(np.arange(nnz, dtype=np.int64), sizes)
    inner = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], sizes)
    cpos = tables.pc_val[tables.pc_indptr[view.nbr_pos[eid]] + inner]
    src = view.entry_src[eid]
    j_el = view.entry_j[eid]
    # Group elements sharing (src, [block,] s): the group's minimum j is the
    # first cover.  lexsort is stable, elements were built in entry (hence j)
    # order, so the head of each group carries the minimum j.
    if block is None:
        order = np.lexsort((cpos, src))
        k1, k2 = src[order], cpos[order]
        head = np.empty(total, dtype=bool)
        head[0] = True
        head[1:] = (k1[1:] != k1[:-1]) | (k2[1:] != k2[:-1])
    else:
        blk = j_el // block
        order = np.lexsort((cpos, blk, src))
        k1, k2, k3 = src[order], blk[order], cpos[order]
        head = np.empty(total, dtype=bool)
        head[0] = True
        head[1:] = (
            (k1[1:] != k1[:-1]) | (k2[1:] != k2[:-1]) | (k3[1:] != k3[:-1])
        )
    head_idx = np.maximum.accumulate(
        np.where(head, np.arange(total, dtype=np.int64), 0)
    )
    fc_sorted = j_el[order][head_idx]
    fc = np.empty(total, dtype=np.int64)
    fc[order] = fc_sorted
    start_el = (
        np.zeros(total, dtype=np.int64) if block is None else (j_el // block) * block
    )
    # Aggregate per entry; reduceat only over entries with S(x) nonempty.
    nonempty = sizes > 0
    off_ne = offsets[:-1][nonempty]
    uncovered = fc == j_el
    any_unc = np.logical_or.reduceat(uncovered, off_ne)
    max_fc = np.maximum.reduceat(fc, off_ne)
    scan_end_ne = np.where(any_unc, view.entry_j[nonempty], max_fc + 1)
    scan_end = np.zeros(nnz, dtype=np.int64)
    scan_end[nonempty] = scan_end_ne
    contrib = np.minimum(fc + 1, scan_end[eid]) - start_el
    adj[nonempty] = np.add.reduceat(contrib, off_ne)
    start_ne = (
        np.zeros(len(off_ne), dtype=np.int64)
        if block is None
        else (view.entry_j[nonempty] // block) * block
    )
    steps[nonempty] = scan_end_ne - start_ne
    kept[nonempty] = any_unc
    return ScanTables(kept, steps, adj)


def scan_profile(kernel, oracle, system, w, x, index, block):
    """Answer one ``_new_cluster_scan_fast`` call from the precomputed tables.

    Charges the exact scalar schedule (degree 1 + neighbor ``scanned + steps``
    + adjacency ``adj``) inside a ``"neighbor-scan"`` profiler frame and
    registers the scalar path's read set with the memo tracker.  Returns the
    kept verdict, or ``None`` when the view is unavailable (scalar fallback).
    """
    view = kernel.view(oracle.graph)
    if view is None:
        return None
    pw = view.pos.get(w)
    px = view.pos.get(x)
    if pw is None or px is None:
        return None
    tables = kernel.scan_tables(view, system, block)
    entry = int(view.indptr[pw]) + int(index)
    kept = bool(tables.kept[entry])
    steps = int(tables.steps[entry])
    adj = int(tables.adj[entry])
    scanned = min(int(view.deg[px]), system.prefix)
    profiler = oracle.profiler
    if profiler is not None:
        frame = profiler.begin_phase("neighbor-scan", oracle.counter)
        oracle.charge(degree=1, neighbor=scanned + steps, adjacency=adj)
        profiler.end_phase(frame)
    else:
        oracle.charge(degree=1, neighbor=scanned + steps, adjacency=adj)
    cache = oracle.cache
    if cache.tracking:
        touched = [int(x)]
        if kept or steps > 0:
            # The scalar scan reads w's row exactly when S(x) is nonempty.
            start = 0 if block is None else (int(index) // block) * block
            lo = int(view.indptr[pw])
            touched.append(int(w))
            touched.extend(view.nbr_id[lo + start : lo + start + steps].tolist())
        cache.note_read(touched)
    return kept


def materialize_batched(lca, oracle, kernel, result) -> bool:
    """Array-at-once batched materializer for the full spanner3 edge set.

    Evaluates all four components (H_low, center edges, H_high, H_super) for
    every edge of the graph in one pass of array arithmetic, replicating the
    scalar short-circuit order so per-query probe totals, per-kind counts and
    the ``"neighbor-scan"`` phase attribution are bit-identical.  Returns
    ``True`` when handled; ``False`` falls back to the scalar engine.
    """
    from ..spanner3.components import (
        CenterEdgeComponent,
        HighDegreeComponent,
        LowDegreeComponent,
        SuperBlockComponent,
    )

    components = getattr(lca, "components", None)
    if not components or len(components) != 4:
        return False
    low, center_edges, high, super_block = components
    if not (
        isinstance(low, LowDegreeComponent)
        and isinstance(center_edges, CenterEdgeComponent)
        and isinstance(high, HighDegreeComponent)
        and isinstance(super_block, SuperBlockComponent)
    ):
        return False
    hi_sys = high.centers
    su_sys = super_block.centers
    if not (
        len(center_edges.systems) == 2
        and center_edges.systems[0] is hi_sys
        and center_edges.systems[1] is su_sys
    ):
        return False
    view = kernel.view(oracle.graph)
    if view is None:
        return False
    np = kernel.np
    i8 = np.int64
    params = high.params
    t_low = low.threshold
    block = super_block.threshold

    if view.nnz:
        e_fwd = np.flatnonzero(view.ids[view.entry_src] < view.nbr_id)
    else:
        e_fwd = np.zeros(0, dtype=i8)
    if not len(e_fwd):
        return True
    hi_pt = kernel.prefix_tables(view, hi_sys)
    su_pt = kernel.prefix_tables(view, su_sys)
    hi_scan = kernel.scan_tables(view, hi_sys, None)
    su_scan = kernel.scan_tables(view, su_sys, block)

    e_rev = view.rev_entry[e_fwd]
    up = view.entry_src[e_fwd]
    vp = view.nbr_pos[e_fwd]
    du = view.deg[up]
    dv = view.deg[vp]
    jf = view.entry_j[e_fwd]
    jr = view.entry_j[e_rev]

    # H_low: degree(u); degree(v) only when u is not low.
    low_u = du <= t_low
    c1 = low_u | (dv <= t_low)
    deg_c1 = 1 + (~low_u).astype(i8)

    # Center edges: four in_cluster_of probes with scalar short-circuiting.
    act2 = ~c1
    p_hi = hi_sys.prefix
    p_su = su_sys.prefix
    a1 = hi_pt.elected[vp]
    r1 = a1 & (jf < p_hi)
    a2 = hi_pt.elected[up]
    r2 = a2 & (jr < p_hi)
    a3 = su_pt.elected[vp]
    r3 = a3 & (jf < p_su)
    a4 = su_pt.elected[up]
    r4 = a4 & (jr < p_su)
    adj_c2 = a1.astype(i8) + (~r1) * (
        a2.astype(i8) + (~r2) * (a3.astype(i8) + (~r3) * a4.astype(i8))
    )
    c2 = r1 | r2 | r3 | r4

    # H_high: gate on is_high_degree(w), then the closed-form scan.
    act3 = act2 & ~c2
    gh_u = (du > params.low_threshold) & (du <= params.super_threshold)
    gh_v = (dv > params.low_threshold) & (dv <= params.super_threshold)
    ghu = gh_u.astype(i8)
    ghv = gh_v.astype(i8)
    scan_hi = np.minimum(view.deg, p_hi)
    d1 = gh_u & hi_scan.kept[e_fwd]
    n1 = (~d1).astype(i8)
    c3 = d1 | (gh_v & hi_scan.kept[e_rev])
    c3_deg = (1 + ghu) + n1 * (1 + ghv)
    c3_nei = ghu * (scan_hi[vp] + hi_scan.steps[e_fwd]) + n1 * ghv * (
        scan_hi[up] + hi_scan.steps[e_rev]
    )
    c3_adj = ghu * (1 + hi_scan.adj[e_fwd]) + n1 * ghv * (1 + hi_scan.adj[e_rev])

    # H_super: ungated adjacency + block scan in both directions.
    act4 = act3 & ~c3
    scan_su = np.minimum(view.deg, p_su)
    s1 = su_scan.kept[e_fwd]
    ns = (~s1).astype(i8)
    c4 = s1 | su_scan.kept[e_rev]
    c4_deg = 1 + ns
    c4_nei = (scan_su[vp] + su_scan.steps[e_fwd]) + ns * (
        scan_su[up] + su_scan.steps[e_rev]
    )
    c4_adj = (1 + su_scan.adj[e_fwd]) + ns * (1 + su_scan.adj[e_rev])

    a2m = act2.astype(i8)
    a3m = act3.astype(i8)
    a4m = act4.astype(i8)
    deg_arr = deg_c1 + a3m * c3_deg + a4m * c4_deg
    nei_arr = a3m * c3_nei + a4m * c4_nei
    adj_arr = a2m * adj_c2 + a3m * c3_adj + a4m * c4_adj
    answer = c1 | (act2 & c2) | (act3 & c3) | (act4 & c4)
    totals = (deg_arr + nei_arr + adj_arr).tolist()

    # Phase attribution: every scan invocation runs inside a "neighbor-scan"
    # frame; its in-frame charges are degree 1, the full neighbor cost, and
    # the scan's adjacency probes (the index probe stays outside).
    inv1 = act3 & gh_u
    inv2 = act3 & ~d1 & gh_v
    inv3 = act4
    inv4 = act4 & ~s1
    calls = int(inv1.sum() + inv2.sum() + inv3.sum() + inv4.sum())
    deg_total = int(deg_arr.sum())
    nei_total = int(nei_arr.sum())
    adj_total = int(adj_arr.sum())
    phase_adj = int(
        (inv1 * hi_scan.adj[e_fwd]).sum()
        + (inv2 * hi_scan.adj[e_rev]).sum()
        + (inv3 * su_scan.adj[e_fwd]).sum()
        + (inv4 * su_scan.adj[e_rev]).sum()
    )
    profiler = oracle.profiler
    if profiler is not None and calls:
        oracle.charge(degree=deg_total - calls, adjacency=adj_total - phase_adj)
        frame = profiler.begin_phase("neighbor-scan", oracle.counter, calls=calls)
        oracle.charge(degree=calls, neighbor=nei_total, adjacency=phase_adj)
        profiler.end_phase(frame)
    else:
        oracle.charge(degree=deg_total, neighbor=nei_total, adjacency=adj_total)

    kept_idx = np.flatnonzero(answer)
    kept_u = view.ids[up[kept_idx]].tolist()
    kept_v = view.nbr_id[e_fwd[kept_idx]].tolist()
    result.edges.update(zip(kept_u, kept_v))
    result.probe_stats.query_totals.extend(totals)
    lca.probe_stats.query_totals.extend(totals)
    return True
