"""Vectorized spanner5 kernels: cluster rows and bucket pair scans.

Two hot loops of the H_bckt rules (Section 3) vectorize cleanly:

* ``cluster_row`` — the members of a center's cluster are the neighbors that
  list the center within their first ``Δ_med`` row entries; the reverse-entry
  table of the view answers "where does the center sit in Γ(w)?" for a whole
  row at once, replacing one ``index_row`` dictionary probe per member.
* ``minimum_bucket_edge`` — the scalar rule walks the A × B bucket grid in
  canonical-edge-id order, probing adjacency only when a pair improves the
  running minimum.  The kernel ranks all pairs with one lexsort, simulates
  the running minimum with a prefix cummin over *existing* pairs (a pair that
  exists but does not improve the minimum never changes it, so unprobed
  existing pairs are invisible to the schedule), and charges the exact probe
  count in one bulk adjacency charge.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.ids import canonical_edge_id

#: Minimum ``|A| × |B|`` pair-grid size for the vectorized bucket scan.
#: Below it the scalar double loop is faster than array setup; falling back
#: is probe-exact, so the cutover is purely about speed.
_MIN_GRID = 64


def cluster_row(kernel, oracle, center: int, prefix: int) -> Optional[Tuple]:
    """Compute the ``cluster-members`` memo value for ``center`` array-at-once.

    Runs inside the memo's tracked compute: the row read goes through the
    cache (registering the center) and the member test registers every row
    vertex, exactly like the scalar ``index_row`` walk.  Returns the
    ``(members, degree)`` memo value, or ``None`` for scalar fallback.
    """
    view = kernel.view(oracle.graph)
    if view is None:
        return None
    position = view.pos.get(int(center))
    if position is None:
        return None
    lo = int(view.indptr[position])
    hi = int(view.indptr[position + 1])
    row_ids = view.nbr_id[lo:hi]
    in_cluster = view.rev_pos[lo:hi] < prefix
    members = (int(center),) + tuple(row_ids[in_cluster].tolist())
    cache = oracle.cache
    cache.neighbors(center)
    if cache.tracking:
        cache.note_read(row_ids.tolist())
    return (members, hi - lo)


def minimum_bucket_edge(
    kernel, oracle, bucket_a, bucket_b, med: int, degree
) -> Optional[Tuple]:
    """Vectorized ``_minimum_bucket_edge`` with the scalar probe schedule.

    ``degree`` is the component's per-query memoizing degree closure; calling
    it for every bucket member (in scalar evaluation order) reproduces the
    scalar degree charges and memo-tracker reads.  Returns a 1-tuple holding
    the minimum existing canonical edge id (or ``None``), or ``None`` itself
    when the view is unavailable (scalar fallback).
    """
    if len(bucket_a) * len(bucket_b) < _MIN_GRID:
        return None
    np = kernel.np
    view = kernel.view(oracle.graph)
    if view is None:
        return None
    passing_a = [a for a in bucket_a if degree(a) >= med]
    if not passing_a:
        return (None,)
    # The first passing a's inner loop evaluates degree(b) for every b.
    passing_b = [b for b in bucket_b if degree(b) >= med]
    if not passing_b:
        return (None,)
    a_arr = np.array(passing_a, dtype=np.int64)
    b_arr = np.array(passing_b, dtype=np.int64)
    try:
        a_pos = np.array([view.pos[int(a)] for a in passing_a], dtype=np.int64)
        b_pos = np.array([view.pos[int(b)] for b in passing_b], dtype=np.int64)
    except KeyError:
        return None
    # Pairs in scalar order (a-major, b in bucket order), minus a == b.
    pair_a = np.repeat(a_arr, len(b_arr))
    pair_b = np.tile(b_arr, len(a_arr))
    keep = pair_a != pair_b
    arr_a = pair_a[keep]
    arr_b = pair_b[keep]
    # Edge existence: one searchsorted over the view's sorted arc keys.
    exist = view.arcs_exist(
        np.repeat(a_pos, len(b_arr))[keep], np.tile(b_pos, len(a_arr))[keep]
    )
    count = len(arr_a)
    if not count:
        return (None,)
    low = np.minimum(arr_a, arr_b)
    high = np.maximum(arr_a, arr_b)
    order = np.lexsort((high, low))
    head = np.empty(count, dtype=bool)
    head[0] = True
    head[1:] = (low[order][1:] != low[order][:-1]) | (
        high[order][1:] != high[order][:-1]
    )
    rank = np.empty(count, dtype=np.int64)
    rank[order] = np.cumsum(head) - 1
    infinity = np.iinfo(np.int64).max
    candidate = np.where(exist, rank, infinity)
    running = np.empty(count, dtype=np.int64)
    running[0] = infinity
    if count > 1:
        running[1:] = np.minimum.accumulate(candidate)[:-1]
    probed = rank < running
    oracle.charge(adjacency=int(probed.sum()))
    if not exist.any():
        return (None,)
    winner = int(np.argmin(candidate))
    return (canonical_edge_id(int(arr_a[winner]), int(arr_b[winner])),)
