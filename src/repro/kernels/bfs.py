"""Frontier-at-once BFS kernel for the D^k_L explorations of Section 4.

The scalar exploration (:func:`repro.spannerk.bfs.explore`) dequeues one
vertex at a time and probes its full neighbor row.  This kernel expands a
whole BFS level — for *many sources at once* — with one CSR gather: neighbor
candidates of the entire frontier are collected via ``indptr`` slicing, then
deduplicated with a stable ``(pop, id)`` lexsort so discoveries land in the
exact scalar order (lexicographically-first shortest paths, Section 4.3.1).

Probe accounting replicates the scalar schedule precisely: every *expanded*
pop charges degree 1 plus its full row of neighbor probes; once the discovery
limit L is reached mid-level, the remaining pops of that level are never
expanded (and charge nothing), matching the scalar truncation point.  Each
source's probes are charged in one window wrapped in a ``"bfs"`` profiler
frame, exactly one frame per exploration, in caller order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..spannerk.bfs import Exploration

#: Cap on the ``sources × vertices`` visited bitmap; larger batches recurse
#: into chunks so memory stays bounded on big graphs.
_MAX_BITMAP_CELLS = 1 << 24

#: Minimum ``sources × limit`` workload for the vectorized path.  Tiny
#: explorations (narrow frontiers, small L) are faster through the scalar
#: deque loop than through per-level array setup; falling back is always
#: probe-exact, so this is purely a speed cutover.
_MIN_BATCH_WORK = 256


def explore_many(
    kernel,
    oracle,
    sources: Sequence[int],
    radius: int,
    limit: int,
    is_center: Callable[[int], bool],
) -> Optional[List[Exploration]]:
    """Run D^k_L explorations for a batch of sources, frontier-at-once.

    Returns one :class:`Exploration` per source (same order), or ``None``
    when the view is unavailable — callers fall back to the scalar loop.
    """
    if not sources:
        return []
    if len(sources) * max(limit, 1) < _MIN_BATCH_WORK:
        return None
    np = kernel.np
    view = kernel.view(oracle.graph)
    if view is None:
        return None
    n = view.n
    batch = len(sources)
    if batch * max(n, 1) > _MAX_BITMAP_CELLS and batch > 1:
        step = max(1, _MAX_BITMAP_CELLS // max(n, 1))
        out: List[Exploration] = []
        for i in range(0, batch, step):
            part = explore_many(
                kernel, oracle, sources[i : i + step], radius, limit, is_center
            )
            if part is None:
                return None
            out.extend(part)
        return out
    try:
        source_pos = [view.pos[int(s)] for s in sources]
    except KeyError:
        return None

    ids = view.ids
    deg = view.deg
    indptr = view.indptr
    nbr_id = view.nbr_id
    nbr_pos = view.nbr_pos
    visited = np.zeros((batch, n), dtype=bool)
    explorations: List[Exploration] = []
    probes_deg = [0] * batch
    probes_nei = [0] * batch
    touched: List[List[int]] = [[] for _ in range(batch)]
    active: List[int] = []
    for b, source in enumerate(sources):
        source = int(source)
        expl = Exploration(source=source, radius=radius, limit=limit)
        expl.order.append(source)
        expl.distance[source] = 0
        expl.parent[source] = None
        if is_center(source):
            expl.first_center = source
        explorations.append(expl)
        visited[b, source_pos[b]] = True
        if limit <= 1:
            # The scalar loop trips its top-of-loop limit check immediately.
            expl.truncated = True
        else:
            active.append(b)

    frontier = {b: np.array([source_pos[b]], dtype=np.int64) for b in active}
    for depth in range(radius):
        if not frontier:
            break
        blist = sorted(frontier)
        f_pos = np.concatenate([frontier[b] for b in blist])
        f_bid = np.concatenate(
            [np.full(len(frontier[b]), b, dtype=np.int64) for b in blist]
        )
        sizes = deg[f_pos]
        total = int(sizes.sum())
        if total:
            csz = np.zeros(len(f_pos) + 1, dtype=np.int64)
            np.cumsum(sizes, out=csz[1:])
            eid = np.repeat(np.arange(len(f_pos), dtype=np.int64), sizes)
            idx = (
                np.arange(total, dtype=np.int64)
                - np.repeat(csz[:-1], sizes)
                + np.repeat(indptr[f_pos], sizes)
            )
            cand_pos = nbr_pos[idx]
            cand_id = nbr_id[idx]
            # (pop, id) order = scalar discovery order within the level.
            order = np.lexsort((cand_id, eid))
            cand_pos = cand_pos[order]
            cand_eid = eid[order]
            cand_bid = f_bid[cand_eid]
            fresh = ~visited[cand_bid, cand_pos]
            cand_pos = cand_pos[fresh]
            cand_eid = cand_eid[fresh]
            cand_bid = cand_bid[fresh]
            key = cand_bid * n + cand_pos
            _, first = np.unique(key, return_index=True)
            first = np.sort(first)
            disc_pos = cand_pos[first]
            disc_eid = cand_eid[first]
            counts = np.bincount(disc_eid, minlength=len(f_pos))
        else:
            disc_pos = np.zeros(0, dtype=np.int64)
            disc_eid = np.zeros(0, dtype=np.int64)
            counts = np.zeros(len(f_pos), dtype=np.int64)

        next_frontier = {}
        row_lo = 0
        disc_lo = 0
        for b in blist:
            f_count = len(frontier[b])
            row_hi = row_lo + f_count
            own_counts = counts[row_lo:row_hi]
            disc_count = int(own_counts.sum())
            own_pos = disc_pos[disc_lo : disc_lo + disc_count]
            own_eid = disc_eid[disc_lo : disc_lo + disc_count]
            disc_lo += disc_count
            expl = explorations[b]
            base = len(expl.order)
            if disc_count:
                cum = base + np.cumsum(own_counts)
                if int(cum[-1]) >= limit:
                    # First pop whose discoveries reach L: it and everything
                    # before it expanded; later pops of the level never run.
                    expanded = int(np.argmax(cum >= limit)) + 1
                    accept = limit - base
                    expl.truncated = True
                else:
                    expanded = f_count
                    accept = disc_count
            else:
                expanded = f_count
                accept = 0
            probes_deg[b] += expanded
            probes_nei[b] += int(sizes[row_lo : row_lo + expanded].sum())
            touched[b].extend(ids[f_pos[row_lo : row_lo + expanded]].tolist())
            if accept:
                acc_pos = own_pos[:accept]
                visited[b, acc_pos] = True
                acc_ids = ids[acc_pos].tolist()
                parent_ids = ids[f_pos[own_eid[:accept]]].tolist()
                distance = depth + 1
                for vertex, parent in zip(acc_ids, parent_ids):
                    expl.order.append(vertex)
                    expl.distance[vertex] = distance
                    expl.parent[vertex] = parent
                    if expl.first_center is None and is_center(vertex):
                        expl.first_center = vertex
                if not expl.truncated:
                    next_frontier[b] = acc_pos
            row_lo = row_hi
        frontier = next_frontier

    profiler = oracle.profiler
    cache = getattr(oracle, "cache", None)
    for b in range(batch):
        if profiler is not None:
            frame = profiler.begin_phase("bfs", oracle.counter)
            oracle.charge(degree=probes_deg[b], neighbor=probes_nei[b])
            profiler.end_phase(frame)
        else:
            oracle.charge(degree=probes_deg[b], neighbor=probes_nei[b])
        if cache is not None and touched[b] and cache.tracking:
            cache.note_read(touched[b])
    return explorations
