"""Incremental CSR construction from edge-chunk streams.

The in-memory path (``Graph.from_edges`` → adjacency dict → ``CSRGraph``)
costs several Python objects per edge — tuples, list cells, dict slots —
which is what caps the benchmarks at n ≈ 900.  The builder here consumes a
re-iterable :class:`~repro.graphs.EdgeChunkStream` in two passes over flat
``array('q')`` chunks instead:

1. **count** — accumulate per-vertex degrees and prefix-sum them into
   ``indptr``;
2. **fill** — place each endpoint at its row cursor, reproducing exactly
   the append order ``from_edges`` would have produced.

An optional ``shuffle_seed`` then performs the same per-row
``random.Random(seed)`` shuffle ``from_edges`` applies (rows of length < 2
consume no randomness, in both paths), so for the *same edge sequence and
seed* the streamed arrays are bit-identical to the in-memory build — the
property pinned by ``tests/test_scale_stream.py``.

Peak memory is the three int64 arrays plus one chunk, O(n + m) *bytes*
rather than O(m) Python objects.
"""

from __future__ import annotations

import random
from array import array
from typing import Optional

from ..core.errors import GraphError, ParameterError
from ..graphs.csr import CSRGraph
from ..graphs.generators import (
    DEFAULT_CHUNK_EDGES,
    EdgeChunkStream,
    cluster_edge_chunks,
    gnp_edge_chunks,
    power_law_edge_chunks,
)

#: Builders for the chunk-emitting scenario families, keyed by the names
#: registered in :data:`repro.graphs.FAMILY_BUILDERS`.  ``density`` means
#: what it means for the in-memory sibling (edge probability for gnp,
#: inter-cluster probability for clustered, ignored by power-law).
_STREAM_EMITTERS = {
    "gnp-stream": lambda n, density, seed, chunk_edges: gnp_edge_chunks(
        n, density, seed=seed, chunk_edges=chunk_edges
    ),
    "power-law-stream": lambda n, density, seed, chunk_edges: power_law_edge_chunks(
        n, seed=seed, chunk_edges=chunk_edges
    ),
    "clustered-stream": lambda n, density, seed, chunk_edges: cluster_edge_chunks(
        n, max(2, n // 10), inter_probability=density, seed=seed, chunk_edges=chunk_edges
    ),
}


def stream_family(
    family: str,
    n: int,
    density: float = 0.1,
    seed: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> EdgeChunkStream:
    """Return the edge-chunk stream for a named ``*-stream`` family."""
    key = family.strip().lower()
    if key not in _STREAM_EMITTERS:
        raise ParameterError(
            f"unknown streaming family {family!r}; "
            f"choices: {sorted(_STREAM_EMITTERS)}"
        )
    return _STREAM_EMITTERS[key](n, density, seed, chunk_edges)


def build_stream_family(
    family: str,
    n: int,
    density: float = 0.1,
    seed: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> CSRGraph:
    """Build a ``*-stream`` family instance straight into CSR arrays.

    This is what :data:`repro.graphs.FAMILY_BUILDERS` routes the streaming
    family names to; the graph's neighbor orderings are shuffled with the
    family ``seed`` exactly as the in-memory builders shuffle theirs.
    """
    chunks = stream_family(family, n, density=density, seed=seed, chunk_edges=chunk_edges)
    return build_csr_from_chunks(chunks, shuffle_seed=seed)


def build_csr_from_chunks(
    chunks: EdgeChunkStream,
    shuffle_seed: Optional[int] = None,
    num_vertices: Optional[int] = None,
) -> CSRGraph:
    """Two-pass incremental CSR build over a re-iterable chunk stream.

    ``chunks`` yields flat ``array('q')`` buffers of ``[u, v, u, v, ...]``
    pairs and must yield the identical sequence on every iteration (the
    :class:`~repro.graphs.EdgeChunkStream` contract).  Vertex ids must lie
    in ``0..n-1``; self-loops, out-of-range ids and odd-length chunks raise
    :class:`~repro.core.errors.GraphError`.  Duplicate-freeness is the
    emitter's contract — the builder does not dedup (a dedup structure is
    exactly the O(m)-objects cost this path exists to avoid).

    With a ``shuffle_seed``, per-row shuffles replay ``from_edges``'s
    schedule bit for bit: one ``random.Random(shuffle_seed)`` over rows in
    id order.
    """
    n = chunks.num_vertices if num_vertices is None else int(num_vertices)
    if n < 0:
        raise ParameterError("num_vertices must be non-negative")

    counts = array("q", bytes(8 * n)) if n else array("q")
    total = 0
    for chunk in chunks:
        length = len(chunk)
        if length % 2:
            raise GraphError(
                f"edge chunk has odd length {length}; chunks are flat [u, v, ...] pairs"
            )
        for i in range(0, length, 2):
            u = chunk[i]
            v = chunk[i + 1]
            if u == v:
                raise GraphError(f"self-loop at vertex {u} in edge chunk")
            if u < 0 or u >= n or v < 0 or v >= n:
                raise GraphError(
                    f"edge ({u}, {v}) outside the declared vertex range 0..{n - 1}"
                )
            counts[u] += 1
            counts[v] += 1
        total += length

    indptr = array("q", bytes(8 * (n + 1)))
    offset = 0
    for p in range(n):
        indptr[p] = offset
        offset += counts[p]
    indptr[n] = offset

    indices = array("q", bytes(8 * total)) if total else array("q")
    cursor = counts  # reuse the degree array as the per-row fill cursor
    cursor[:] = indptr[:n]
    try:
        for chunk in chunks:
            for i in range(0, len(chunk), 2):
                u = chunk[i]
                v = chunk[i + 1]
                indices[cursor[u]] = v
                cursor[u] += 1
                indices[cursor[v]] = u
                cursor[v] += 1
    except IndexError:
        # The fill pass saw more entries than the count pass sized for.
        raise GraphError(
            "edge-chunk stream changed between passes; streams must be "
            "re-iterable and deterministic"
        ) from None
    for p in range(n):
        if cursor[p] != indptr[p + 1]:
            raise GraphError(
                "edge-chunk stream changed between passes; streams must be "
                "re-iterable and deterministic"
            )

    if shuffle_seed is not None:
        rng = random.Random(shuffle_seed)
        for p in range(n):
            start, stop = indptr[p], indptr[p + 1]
            if stop - start < 2:
                continue  # from_edges shuffles these too, consuming no randomness
            row = indices[start:stop].tolist()
            rng.shuffle(row)
            indices[start:stop] = array("q", row)

    return CSRGraph.from_arrays(indptr, indices)
