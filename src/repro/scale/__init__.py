"""Million-node scale plane: streaming CSR builds, mmap snapshots.

This package holds the pieces that let a 10^6-node, 10^7-entry graph be
generated, persisted and served without ever materializing a Python edge
list (ROADMAP: "Million-node graphs"):

* :mod:`repro.scale.stream` — a two-pass incremental CSR builder fed by
  re-iterable edge-chunk streams (:class:`repro.graphs.EdgeChunkStream`),
  plus the ``*-stream`` family front door used by ``FAMILY_BUILDERS``.
* :mod:`repro.scale.snapshot` — a raw-array on-disk CSR snapshot format
  with a read-only memory-mapped loader (:class:`MappedCSRGraph`) that
  plugs in wherever :class:`~repro.graphs.SharedCSRGraph` does, including
  the process executor.

The bounded-memory oracle mode that completes the scale story lives with
the rest of the memoization machinery in
:class:`repro.core.cache.BoundedOracleCache`, reachable via
``SpannerLCA.set_memo_cap``.  See ``docs/scale.md``.
"""

from .snapshot import (
    MappedCSRGraph,
    MappedCSRHandle,
    load_csr_snapshot,
    save_csr_snapshot,
)
from .stream import build_csr_from_chunks, build_stream_family, stream_family

__all__ = [
    "build_csr_from_chunks",
    "build_stream_family",
    "stream_family",
    "save_csr_snapshot",
    "load_csr_snapshot",
    "MappedCSRGraph",
    "MappedCSRHandle",
]
