"""Disk-backed CSR snapshots with a read-only memory-mapped loader.

The snapshot format is deliberately raw — a fixed header followed by the
three flat int64 arrays exactly as :class:`~repro.graphs.CSRGraph` holds
them in memory::

    [ header : 32 bytes ][ ids : n ][ indptr : n + 1 ][ indices : nnz ]

    header = magic ``b"reprocsr"`` (8) · format version (1) ·
             endianness flag (1: 0 = little, 1 = big) · padding (6) ·
             n (u64) · nnz (u64)

Arrays are written in the *native* byte order of the writing host (the
flag records which), so loading is a pure ``mmap`` — no parsing, no
byte-swapping, no per-element work beyond the O(n) id → position map.
:class:`MappedCSRGraph` mirrors the :class:`~repro.graphs.SharedCSRGraph`
conventions pinned in ``tests/test_shared_csr.py``: zero-copy
``memoryview`` rows, read-only mutation errors, idempotent detach,
one-line errors for missing or truncated files, and a picklable
:class:`MappedCSRHandle` instead of a picklable graph — which is how the
process executor ships a million-node graph to workers in a few dozen
bytes (:class:`repro.exec.plan.MappedGraphRef`).
"""

from __future__ import annotations

import mmap
import struct
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from ..core.errors import GraphError
from ..graphs.csr import CSRGraph
from ..graphs.graph import Graph, Vertex

PathLike = Union[str, Path]

#: Fixed-size snapshot header: magic, version, endian flag, pad, n, nnz.
_HEADER = struct.Struct("<8sBB6xQQ")
_MAGIC = b"reprocsr"
_VERSION = 1


def _endian_flag() -> int:
    return 0 if sys.byteorder == "little" else 1


def save_csr_snapshot(graph: Graph, path: PathLike) -> "MappedCSRHandle":
    """Write a graph's CSR arrays to ``path`` and return the load handle.

    Any backend is accepted; non-CSR graphs are converted first and CSR
    graphs with pending mutation deltas are compacted, so the snapshot
    always describes the current rows.  The write is a straight dump of
    the flat arrays — O(n + m) bytes, no per-edge Python objects.
    """
    csr = graph.to_backend("csr")
    csr.compact()
    if not isinstance(csr._indices, array):
        # The plain-list fallback only engages for ids beyond 64 bits,
        # which the fixed-width format cannot hold.
        raise GraphError(
            "graphs with vertex ids beyond 64 bits cannot be snapshotted"
        )
    path = Path(path)
    n = len(csr._ids)
    nnz = len(csr._indices)
    try:
        ids = array("q", csr._ids)
    except OverflowError:
        raise GraphError(
            "graphs with vertex ids beyond 64 bits cannot be snapshotted"
        ) from None
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, _VERSION, _endian_flag(), n, nnz))
        handle.write(ids.tobytes())
        handle.write(array("q", csr._indptr).tobytes())
        handle.write(csr._indices.tobytes())
    return MappedCSRHandle(path=str(path), num_vertices=n, num_entries=nnz)


def load_csr_snapshot(path: PathLike) -> "MappedCSRGraph":
    """Map a snapshot written by :func:`save_csr_snapshot` (read-only).

    A missing file raises a one-line :class:`RuntimeError` naming the path
    (mirroring the shared-memory attach conventions); a malformed or
    truncated file raises :class:`~repro.core.errors.GraphError`.
    """
    path = Path(path)
    if not path.exists():
        raise RuntimeError(
            f"CSR snapshot {str(path)!r} does not exist (never saved, or "
            "removed since)"
        )
    size = path.stat().st_size
    if size < _HEADER.size:
        raise GraphError(
            f"CSR snapshot {str(path)!r} is too small to hold a header "
            f"({size} bytes)"
        )
    with path.open("rb") as handle:
        magic, version, endian, n, nnz = _HEADER.unpack(handle.read(_HEADER.size))
    if magic != _MAGIC:
        raise GraphError(f"{str(path)!r} is not a CSR snapshot (bad magic)")
    if version != _VERSION:
        raise GraphError(
            f"CSR snapshot {str(path)!r} has unsupported format version {version}"
        )
    if endian != _endian_flag():
        raise GraphError(
            f"CSR snapshot {str(path)!r} was written on a "
            f"{'big' if endian else 'little'}-endian host and cannot be "
            "mapped on this one"
        )
    return MappedCSRHandle(path=str(path), num_vertices=n, num_entries=nnz).attach()


@dataclass(frozen=True)
class MappedCSRHandle:
    """Picklable descriptor of an on-disk CSR snapshot.

    The mmap sibling of :class:`~repro.graphs.SharedCSRHandle`: a few
    dozen bytes on the wire regardless of graph size, valid for as long as
    the snapshot file exists.  Workers call :meth:`attach` to map it.
    """

    path: str
    num_vertices: int
    num_entries: int

    @property
    def total_items(self) -> int:
        return 2 * self.num_vertices + 1 + self.num_entries

    def attach(self) -> "MappedCSRGraph":
        """Map the snapshot and return a zero-copy read-only graph view."""
        return MappedCSRGraph(self)


class MappedCSRGraph(CSRGraph):
    """Read-only CSR graph memory-mapped from a snapshot file.

    The adjacency arrays are ``memoryview``s over the page cache — loading
    a million-node graph touches O(n) Python objects (the id → position
    map) and zero per-edge objects; the kernel pages ``indices`` in on
    demand.  Probe-visible behavior (orderings, degrees, adjacency
    indices) is identical to the graph that was saved, so answers and
    probe accounting cannot depend on whether a graph is resident or
    mapped.  Mutations raise: rebuild and re-save instead.
    """

    __slots__ = ("_mmap", "_view", "_handle")

    backend = "csr-mapped"

    def __init__(self, handle: MappedCSRHandle) -> None:
        path = Path(handle.path)
        try:
            with path.open("rb") as stream:
                mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            raise RuntimeError(
                f"CSR snapshot {handle.path!r} does not exist (never saved, "
                "or removed since)"
            ) from None
        n = handle.num_vertices
        nnz = handle.num_entries
        needed = _HEADER.size + 8 * handle.total_items
        if len(mapped) < needed:
            # Checked on the raw byte length *before* the int64 cast — a
            # truncated file whose tail is not a multiple of 8 would make
            # the cast itself raise an unhelpful TypeError.
            mapped.close()
            raise GraphError(
                f"CSR snapshot {handle.path!r} is too small for the "
                f"declared CSR shape (n={n}, nnz={nnz})"
            )
        view = memoryview(mapped)[_HEADER.size : needed].cast("q")
        self._mmap = mapped
        self._view = view
        self._handle = handle
        self._ids = view[0:n]
        self._indptr = view[n : 2 * n + 1]
        self._indices = view[2 * n + 1 : 2 * n + 1 + nnz]
        self._pos = {v: p for p, v in enumerate(self._ids)}
        self._rows = {}
        self._views = {}
        self._num_edges = nnz // 2
        self._init_mutation_state()
        self._init_overlay()

    @property
    def mapped_handle(self) -> MappedCSRHandle:
        """The picklable handle this graph was attached from.

        The exec plane sniffs for this attribute
        (:func:`repro.exec.parallel.materialize_parallel`) to ship the
        handle to process workers instead of a shared-memory copy.
        """
        return self._handle

    @classmethod
    def _builder_class(cls) -> type:
        # Derived graphs (subgraphs) own their storage instead of aliasing
        # someone else's mapping.
        return CSRGraph

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        raise GraphError(
            "memory-mapped CSR snapshots are read-only views; mutate a "
            "mutable copy and re-save the snapshot instead"
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        raise GraphError(
            "memory-mapped CSR snapshots are read-only views; mutate a "
            "mutable copy and re-save the snapshot instead"
        )

    def detach(self) -> None:
        """Release the memoryviews and close this attachment's mapping.

        The graph is unusable afterwards; the snapshot file is untouched.
        Detaching twice (or detaching an attachment whose construction
        failed partway) is a no-op — the ``getattr`` default covers
        ``__init__`` raising before ``_mmap`` is bound, e.g. on a
        truncated file.
        """
        if getattr(self, "_mmap", None) is None:
            return
        for name in ("_ids", "_indptr", "_indices", "_view"):
            view = getattr(self, name, None)
            if isinstance(view, memoryview):
                view.release()
        self._ids = []
        self._pos = {}
        self._indptr = array("q", [0])
        self._indices = array("q")
        mapped, self._mmap = self._mmap, None
        try:
            mapped.close()
        except BufferError:
            # A zero-copy kernel view (``np.frombuffer`` over the mapping,
            # see :func:`repro.kernels.view.build_view`) is still alive.
            # Dropping our reference is enough: the mapping is released
            # when the last such view dies, and the graph object itself is
            # already unusable either way.
            pass

    def __enter__(self) -> "MappedCSRGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def __reduce__(self):
        raise TypeError(
            "MappedCSRGraph is a process-local view; pickle its "
            "MappedCSRHandle and attach on the other side instead"
        )
