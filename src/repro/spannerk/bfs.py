"""The BFS variant of Section 4.2 (Figure 6) and the D^k_L exploration.

The exploration starting at ``v`` dequeues one vertex at a time, probes *all*
its neighbors, and enqueues the undiscovered ones in increasing ID order.  As
proved in Section 4.3.1 this discovers vertices in the order of their
lexicographically-first shortest path from ``v``, which is what makes the
"first discovered center" rule produce connected Voronoi cells.

``explore`` truncates the search at ``limit`` discovered vertices and at
radius ``radius`` — the set of discovered vertices is then exactly the
paper's ``D^k_L(v)`` — and records, along the way, the BFS-tree parent of
every discovered vertex (giving the path π(v, ·)) and the first discovered
center (giving c(v)).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.oracle import AdjacencyListOracle


@dataclass
class Exploration:
    """Result of one D^k_L exploration from a source vertex."""

    source: int
    radius: int
    limit: int
    #: Discovered vertices in discovery order (the source is first).
    order: List[int] = field(default_factory=list)
    #: BFS-tree distance of every discovered vertex.
    distance: Dict[int, int] = field(default_factory=dict)
    #: BFS-tree parent of every discovered vertex (source maps to None).
    parent: Dict[int, Optional[int]] = field(default_factory=dict)
    #: First discovered center, or None if none was discovered.
    first_center: Optional[int] = None
    #: Whether the exploration stopped because the limit L was reached.
    truncated: bool = False

    @property
    def discovered(self) -> List[int]:
        return self.order

    def path_to(self, vertex: int) -> Optional[List[int]]:
        """The BFS-tree path from the source to ``vertex`` (π(source, vertex))."""
        if vertex not in self.parent:
            return None
        path = [vertex]
        while path[-1] != self.source:
            predecessor = self.parent[path[-1]]
            if predecessor is None:
                break
            path.append(predecessor)
        return list(reversed(path))

    def path_to_center(self) -> Optional[List[int]]:
        """π(source, c(source)) when a center was discovered."""
        if self.first_center is None:
            return None
        return self.path_to(self.first_center)


def explore(
    oracle: AdjacencyListOracle,
    source: int,
    radius: int,
    limit: int,
    is_center: Callable[[int], bool],
) -> Exploration:
    """Run the Figure 6 BFS variant from ``source``.

    Parameters
    ----------
    oracle:
        Probe oracle (all graph access is counted).
    source:
        Start vertex.
    radius:
        Maximum distance explored (the ``k`` of the construction).
    limit:
        Maximum number of discovered vertices (the ``L`` of the construction).
    is_center:
        Probe-free predicate telling whether a vertex elected itself a center.

    Probe cost: at most ``limit − 1`` vertices are expanded, each with one
    ``Degree`` probe and ``deg`` ``Neighbor`` probes, i.e. O(Δ·L) in total.
    """
    kern = getattr(oracle, "kernel", None)
    if kern is not None and limit >= kern.min_explore_work:
        batch = kern.explore_many(oracle, [source], radius, limit, is_center)
        if batch is not None:
            return batch[0]
    # Attribution only: when a profiler rides on the oracle, the whole
    # exploration's probe delta is charged to the "bfs" phase.
    profiler = getattr(oracle, "profiler", None)
    frame = profiler.begin_phase("bfs", oracle.counter) if profiler is not None else None
    result = Exploration(source=source, radius=radius, limit=limit)
    result.order.append(source)
    result.distance[source] = 0
    result.parent[source] = None
    if is_center(source):
        result.first_center = source

    queue = deque([source])
    while queue:
        if len(result.order) >= limit:
            result.truncated = True
            break
        u = queue.popleft()
        if result.distance[u] >= radius:
            break
        neighbors = oracle.all_neighbors(u)
        for w in sorted(neighbors):
            if w in result.distance:
                continue
            result.distance[w] = result.distance[u] + 1
            result.parent[w] = u
            result.order.append(w)
            queue.append(w)
            if result.first_center is None and is_center(w):
                result.first_center = w
            if len(result.order) >= limit:
                result.truncated = True
                break
        if result.truncated:
            break
    if frame is not None:
        profiler.end_phase(frame)
    return result


def explore_global(
    graph,
    source: int,
    radius: int,
    limit: int,
    is_center: Callable[[int], bool],
) -> Exploration:
    """Probe-free version of :func:`explore` for verification code."""

    class _GraphOracle:
        """Minimal stand-in exposing ``all_neighbors`` without probe counting."""

        @staticmethod
        def all_neighbors(vertex: int):
            return list(graph.neighbors(vertex))

    return explore(_GraphOracle(), source, radius, limit, is_center)
