"""Voronoi cells, Voronoi trees and their refinement into clusters.

This module implements the dense-side machinery of Section 4.3:

* sparse/dense classification via the D^k_L exploration (Definition 4.1,
  Claim 4.3),
* the Voronoi partition of dense vertices around their first-discovered
  centers, together with the depth-k Voronoi trees formed by the
  lexicographically-first shortest paths (Section 4.3.1),
* heavy/light vertices and the refinement of cells into clusters of size
  O(L) (Section 4.3.2, Figure 7),
* the cluster-neighborhood quantities c(∂A) and the minimum-ID connecting
  edges used by the H^B_dense rules (Section 4.3.4).

Everything is packaged in :class:`LocalView`, a per-query working context
that routes every graph access through the probe oracle and memoizes the
(deterministic) intermediate results so each sub-routine is computed at most
once per query.  A view may optionally be given a cache shared across
queries — answers are unchanged (they are deterministic), only the probe
accounting of later queries is reduced; the verification harness uses this to
materialize full spanners quickly while the probe-complexity experiments use
per-query views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.oracle import AdjacencyListOracle
from ..core.seed import Seed, SeedLike
from ..rand.sampler import CenterSampler, RankAssigner
from .bfs import Exploration, explore
from .params import KSquaredParams

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ClusterInfo:
    """A cluster of the Section 4.3.2 refinement."""

    #: All vertices of the cluster (between 1 and 2L of them).
    members: FrozenSet[int]
    #: Center of the Voronoi cell containing the cluster.
    cell_center: int
    #: Which refinement rule produced the cluster ('whole-cell', 'heavy-singleton', 'grouped').
    kind: str

    def __contains__(self, vertex: int) -> bool:
        return vertex in self.members


class KSquaredRandomness:
    """The three sources of randomness of the construction.

    * center election (probability Θ(log n / L)),
    * Voronoi-cell marking (probability 1/L),
    * random ranks of cell centers (k blocks of ⌈log n / k⌉ bits,
      Section 5.2).
    """

    def __init__(self, seed: SeedLike, params: KSquaredParams) -> None:
        seed = Seed.of(seed)
        self.params = params
        self.centers = CenterSampler(
            seed.derive("spannerk/centers"),
            params.center_probability,
            params.independence,
        )
        self.marks = CenterSampler(
            seed.derive("spannerk/marks"),
            params.mark_probability,
            params.independence,
        )
        self.ranks = RankAssigner.for_graph(
            seed.derive("spannerk/ranks"),
            params.num_vertices,
            params.stretch_parameter,
            params.independence,
        )

    def is_center(self, vertex: int) -> bool:
        return self.centers.is_center(vertex)

    def is_marked_cell(self, center: int) -> bool:
        return self.marks.is_center(center)

    def rank_key(self, center: int) -> Tuple[int, int]:
        """Total order on centers: block-concatenated rank, ties by ID."""
        return (self.ranks.rank(center), center)


class LocalView:
    """Per-query working context over the probe oracle.

    All methods are deterministic functions of ``(graph, seed, params)``; the
    internal cache only avoids recomputation.
    """

    def __init__(
        self,
        oracle: AdjacencyListOracle,
        params: KSquaredParams,
        randomness: KSquaredRandomness,
        cache: Optional[dict] = None,
    ) -> None:
        self.oracle = oracle
        self.params = params
        self.randomness = randomness
        if cache is not None:
            # Cross-query shared caches bypass the oracle's epoch-tracked
            # memo layer, so guard them coarsely: any graph mutation since
            # the cache was last used drops the whole thing (explorations
            # are multi-hop, so per-vertex invalidation would be unsound).
            epoch = oracle.graph.epoch
            if cache.get("__epoch__") != epoch:
                cache.clear()
                cache["__epoch__"] = epoch
        self._cache = cache if cache is not None else {}

    # ------------------------------------------------------------------ #
    # Exploration / sparse-dense classification
    # ------------------------------------------------------------------ #
    def exploration(self, vertex: int) -> Exploration:
        """The D^k_L exploration from ``vertex`` (cached)."""
        key = ("explore", vertex)
        if key not in self._cache:
            self._cache[key] = explore(
                self.oracle,
                vertex,
                radius=self.params.stretch_parameter,
                limit=self.params.exploration_budget,
                is_center=self.randomness.is_center,
            )
        return self._cache[key]

    def explore_batch(self, vertices) -> None:
        """Warm the exploration cache for many sources in one kernel batch.

        No-op without an attached kernel; with one, every not-yet-cached
        source is explored frontier-at-once in caller order.  Each source is
        charged its exact scalar probe schedule (in its own "bfs" frame), so
        later :meth:`exploration` calls hit the cache probe-free — identical
        totals to exploring the sources one by one.
        """
        kern = getattr(self.oracle, "kernel", None)
        if kern is None:
            return
        vertices = list(vertices)
        if len(vertices) * self.params.exploration_budget < kern.min_explore_work:
            return
        pending = []
        seen = set()
        for w in vertices:
            if w in seen:
                continue
            seen.add(w)
            if ("explore", w) not in self._cache:
                pending.append(w)
        if not pending:
            return
        batch = kern.explore_many(
            self.oracle,
            pending,
            self.params.stretch_parameter,
            self.params.exploration_budget,
            self.randomness.is_center,
        )
        if batch is None:
            return
        for w, result in zip(pending, batch):
            self._cache[("explore", w)] = result

    def is_dense(self, vertex: int) -> bool:
        """Dense = some center was discovered within the D^k_L exploration."""
        return self.exploration(vertex).first_center is not None

    def is_sparse(self, vertex: int) -> bool:
        return not self.is_dense(vertex)

    def center(self, vertex: int) -> Optional[int]:
        """c(vertex): the first-discovered center (None for sparse vertices)."""
        return self.exploration(vertex).first_center

    def voronoi_path(self, vertex: int) -> Optional[List[int]]:
        """π(vertex, c(vertex)) along the exploration's BFS tree."""
        return self.exploration(vertex).path_to_center()

    def parent(self, vertex: int) -> Optional[int]:
        """The Voronoi-tree parent of ``vertex`` (None for centers/sparse)."""
        path = self.voronoi_path(vertex)
        if path is None or len(path) < 2:
            return None
        return path[1]

    def is_tree_edge(self, u: int, v: int) -> bool:
        """Whether (u, v) is a Voronoi-tree edge (H^I_dense membership)."""
        if not (self.is_dense(u) and self.is_dense(v)):
            return False
        return self.parent(u) == v or self.parent(v) == u

    # ------------------------------------------------------------------ #
    # Voronoi-tree structure: children, subtree sizes, heavy/light
    # ------------------------------------------------------------------ #
    def children(self, vertex: int) -> List[int]:
        """Children of ``vertex`` in its Voronoi tree.

        A neighbor ``w`` is a child when it is dense, belongs to the same
        cell and its own path's second vertex is ``vertex``.  Costs one
        neighbor-list scan plus one exploration per neighbor (O(Δ²L) probes).
        """
        key = ("children", vertex)
        if key in self._cache:
            return self._cache[key]
        # Probe attribution: the child scan is Voronoi-tree machinery; the
        # explorations it triggers attribute their own windows to "bfs".
        profiler = getattr(self.oracle, "profiler", None)
        frame = (
            profiler.begin_phase("voronoi", self.oracle.counter)
            if profiler is not None
            else None
        )
        own_center = self.center(vertex)
        children: List[int] = []
        if own_center is not None:
            neighbors = self.oracle.all_neighbors(vertex)
            self.explore_batch(neighbors)
            for w in neighbors:
                if not self.is_dense(w):
                    continue
                if self.center(w) != own_center:
                    continue
                if self.parent(w) == vertex:
                    children.append(w)
        if frame is not None:
            profiler.end_phase(frame)
        self._cache[key] = children
        return children

    def subtree_vertices(self, vertex: int, cap: Optional[int] = None) -> List[int]:
        """Vertices of the subtree T(vertex), optionally stopping at ``cap``.

        With ``cap = L + 1`` this is the heavy/light test; without a cap it
        enumerates a (light) subtree, which has at most L vertices.
        """
        limit = cap if cap is not None else self.params.exploration_budget
        key = ("subtree", vertex, limit)
        if key in self._cache:
            return self._cache[key]
        collected: List[int] = []
        stack = [vertex]
        seen = set()
        while stack and len(collected) < limit:
            x = stack.pop()
            if x in seen:
                continue
            seen.add(x)
            collected.append(x)
            for child in self.children(x):
                if child not in seen:
                    stack.append(child)
        self._cache[key] = collected
        return collected

    def is_heavy(self, vertex: int) -> bool:
        """Heavy = the Voronoi subtree below ``vertex`` has more than L vertices."""
        budget = self.params.exploration_budget
        return len(self.subtree_vertices(vertex, cap=budget + 1)) > budget

    # ------------------------------------------------------------------ #
    # Cluster refinement (rules (a), (b), (c) of Section 4.3.2)
    # ------------------------------------------------------------------ #
    def cluster_info(self, vertex: int) -> Optional[ClusterInfo]:
        """The cluster containing a dense ``vertex`` (None for sparse ones)."""
        key = ("cluster", vertex)
        if key in self._cache:
            return self._cache[key]
        profiler = getattr(self.oracle, "profiler", None)
        if profiler is not None:
            with profiler.phase("voronoi", self.oracle.counter):
                info = self._compute_cluster(vertex)
        else:
            info = self._compute_cluster(vertex)
        self._cache[key] = info
        if info is not None:
            # Every member belongs to the same cluster; share the result.
            for member in info.members:
                self._cache.setdefault(("cluster", member), info)
        return info

    def _compute_cluster(self, vertex: int) -> Optional[ClusterInfo]:
        cell_center = self.center(vertex)
        if cell_center is None:
            return None
        # Rule (b): heavy vertices form singleton clusters.
        if self.is_heavy(vertex):
            return ClusterInfo(frozenset({vertex}), cell_center, "heavy-singleton")

        # Walk up the parent chain looking for the first heavy ancestor.
        budget = self.params.exploration_budget
        max_steps = 2 * self.params.stretch_parameter + 2
        chain = [vertex]
        heavy_ancestor: Optional[int] = None
        current = vertex
        for _ in range(max_steps):
            parent = self.parent(current)
            if parent is None or parent in chain:
                break
            if self.is_heavy(parent):
                heavy_ancestor = parent
                break
            chain.append(parent)
            current = parent
            if current == cell_center:
                break

        if heavy_ancestor is None:
            # Rule (a): the whole (light) cell is one cluster.
            members = self.subtree_vertices(cell_center, cap=budget)
            return ClusterInfo(frozenset(members), cell_center, "whole-cell")

        # Rule (c): group the light children of the heavy ancestor.
        child_towards_vertex = chain[-1] if chain else vertex
        light_children = [
            w for w in self.children(heavy_ancestor) if not self.is_heavy(w)
        ]
        ordered = self._order_by_adjacency(heavy_ancestor, light_children)
        groups: List[List[int]] = []
        current_group: List[int] = []
        current_size = 0
        for child in ordered:
            size = len(self.subtree_vertices(child, cap=budget))
            current_group.append(child)
            current_size += size
            if current_size >= budget:
                groups.append(current_group)
                current_group = []
                current_size = 0
        if current_group:
            groups.append(current_group)

        for group in groups:
            if child_towards_vertex in group:
                members: List[int] = []
                for child in group:
                    members.extend(self.subtree_vertices(child, cap=budget))
                return ClusterInfo(frozenset(members), cell_center, "grouped")

        # The child towards ``vertex`` is always light (it precedes the first
        # heavy ancestor), so it must appear in some group; this fallback only
        # guards against truncation anomalies and keeps the result well defined.
        return ClusterInfo(frozenset(chain), cell_center, "grouped")

    def _order_by_adjacency(self, parent: int, children: List[int]) -> List[int]:
        """Order children consistently by their index in Γ(parent)."""
        neighbor_list = self.oracle.all_neighbors(parent)
        positions = {w: i for i, w in enumerate(neighbor_list)}
        return sorted(children, key=lambda w: positions.get(w, len(positions)))

    # ------------------------------------------------------------------ #
    # Cluster neighborhoods (c(∂A)) and minimum-ID connecting edges
    # ------------------------------------------------------------------ #
    def incident_edges(self, cluster: ClusterInfo) -> List[Tuple[int, int, Optional[int]]]:
        """All edges leaving the cluster, as (member, neighbor, neighbor's cell).

        Sparse neighbors are reported with cell ``None``.  Costs a
        neighbor-list scan of every member plus one exploration per distinct
        outside neighbor.
        """
        key = ("incident", cluster.members)
        if key in self._cache:
            return self._cache[key]
        edges: List[Tuple[int, int, Optional[int]]] = []
        for member in sorted(cluster.members):
            row = self.oracle.all_neighbors(member)
            self.explore_batch(w for w in row if w not in cluster.members)
            for w in row:
                if w in cluster.members:
                    continue
                cell = self.center(w) if self.is_dense(w) else None
                edges.append((member, w, cell))
        self._cache[key] = edges
        return edges

    def adjacent_cells(self, cluster: ClusterInfo) -> Dict[int, Tuple[int, int]]:
        """c(∂A) with witnesses: adjacent cell center → minimum-ID edge.

        The minimum is over ordered pairs ``(member, outside-neighbor)`` with
        the member first, matching the paper's edge-ID convention for
        "connecting A to Vor(s)".  The cluster's own cell is excluded.
        """
        key = ("adjacent-cells", cluster.members)
        if key in self._cache:
            return self._cache[key]
        best: Dict[int, Tuple[int, int]] = {}
        for member, neighbor, cell in self.incident_edges(cluster):
            if cell is None or cell == cluster.cell_center:
                continue
            candidate = (member, neighbor)
            if cell not in best or candidate < best[cell]:
                best[cell] = candidate
        self._cache[key] = best
        return best

    def min_edge_to_cluster(
        self, cluster: ClusterInfo, other_members: FrozenSet[int]
    ) -> Optional[Tuple[int, int]]:
        """Minimum-ID edge in E(cluster, other cluster) (cluster side first)."""
        best: Optional[Tuple[int, int]] = None
        for member, neighbor, _cell in self.incident_edges(cluster):
            if neighbor not in other_members:
                continue
            candidate = (member, neighbor)
            if best is None or candidate < best:
                best = candidate
        return best

    def is_adjacent_to_marked_cell(self, cluster: ClusterInfo) -> bool:
        """Whether some cell adjacent to the cluster is marked."""
        return any(
            self.randomness.is_marked_cell(cell)
            for cell in self.adjacent_cells(cluster)
        )

    def rank_position(
        self, target_center: int, candidate_centers
    ) -> int:
        """How many candidate centers have strictly smaller rank than the target."""
        target_key = self.randomness.rank_key(target_center)
        return sum(
            1
            for center in candidate_centers
            if self.randomness.rank_key(center) < target_key
        )
