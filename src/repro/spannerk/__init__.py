"""LCA for O(k²)-spanners (Section 4 of the paper; Theorem 1.2)."""

from .bfs import Exploration, explore, explore_global
from .dense import DenseConnectorComponent, VoronoiTreeComponent
from .lca import KSquaredSpannerLCA
from .params import KSquaredParams
from .sparse import SparseSpannerComponent
from .voronoi import ClusterInfo, KSquaredRandomness, LocalView

__all__ = [
    "Exploration",
    "explore",
    "explore_global",
    "KSquaredSpannerLCA",
    "KSquaredParams",
    "KSquaredRandomness",
    "LocalView",
    "ClusterInfo",
    "SparseSpannerComponent",
    "VoronoiTreeComponent",
    "DenseConnectorComponent",
]
