"""The O(k²)-spanner LCA (Section 4, Theorem 1.2).

The spanner is ``H = H_sparse ∪ H^I_dense ∪ H^B_dense``:

* H_sparse — a (2k−1)-spanner of the sparse region, obtained by locally
  simulating the Baswana–Sen distributed algorithm,
* H^I_dense — the Voronoi trees spanning each Voronoi cell (diameter ≤ 2k),
* H^B_dense — the marked-cell / rank-quota connection rules between clusters.

With L = n^{1/3} and p = 1/L this gives Õ(n^{1+1/k}) edges, O(k²) stretch
w.h.p. and probe complexity Õ(Δ⁴n^{2/3}) (Theorem 1.2), using O(log² n)
random bits (Section 5.2).
"""

from __future__ import annotations

from typing import Optional

from ..core.lca import CombinedLCA
from ..core.registry import register
from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from .dense import DenseConnectorComponent, VoronoiTreeComponent
from .params import KSquaredParams
from .sparse import SparseSpannerComponent
from .voronoi import KSquaredRandomness


class KSquaredSpannerLCA(CombinedLCA):
    """LCA for O(k²)-spanners with Õ(n^{1+1/k}) edges (Theorem 1.2).

    Parameters
    ----------
    graph, seed:
        The input graph and the shared random seed.
    stretch_parameter:
        The ``k`` of the construction; the resulting stretch is O(k²).
    params:
        Optional explicit :class:`KSquaredParams` (tests use this to control
        L and the sampling probabilities at small n).
    shared_cache:
        When ``True`` the deterministic intermediate computations
        (explorations, clusters, ...) are cached across queries.  Answers are
        identical; only per-query probe accounting changes.  Used by the
        verification harness to materialize full spanners quickly — leave it
        off when measuring probe complexity.
    """

    name = "spannerk"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        stretch_parameter: int = 2,
        params: Optional[KSquaredParams] = None,
        hitting_constant: float = 2.0,
        shared_cache: bool = False,
    ) -> None:
        seed = Seed.of(seed)
        if params is None:
            params = KSquaredParams.for_graph(
                graph.num_vertices,
                stretch_parameter=stretch_parameter,
                hitting_constant=hitting_constant,
            )
        self.params = params
        self.shared_cache = bool(shared_cache)
        self.randomness = KSquaredRandomness(seed.derive("spannerk"), params)
        cache = {} if shared_cache else None

        self.sparse_component = SparseSpannerComponent(
            graph, seed, params=params, randomness=self.randomness, shared_cache=cache
        )
        self.tree_component = VoronoiTreeComponent(
            graph, seed, params=params, randomness=self.randomness, shared_cache=cache
        )
        self.connector_component = DenseConnectorComponent(
            graph, seed, params=params, randomness=self.randomness, shared_cache=cache
        )
        super().__init__(
            graph,
            seed,
            [self.sparse_component, self.tree_component, self.connector_component],
        )

    def stretch_bound(self) -> Optional[int]:
        """The nominal O(k²) stretch (a w.h.p. guarantee, reported for tables)."""
        return self.params.nominal_stretch()

    def executor_spec(self):
        """Parallel rebuild recipe: ``shared_cache`` changes per-query probe
        accounting (not answers), so worker rebuilds must preserve it."""
        spec = super().executor_spec()
        spec.kwargs["shared_cache"] = self.shared_cache
        return spec


@register("spannerk")
def _make_k_squared(graph: Graph, seed: SeedLike, **kwargs) -> KSquaredSpannerLCA:
    return KSquaredSpannerLCA(graph, seed, **kwargs)
