"""H_sparse: local simulation of a distributed (2k−1)-spanner (Section 4.2).

An edge belongs to E_sparse when at least one endpoint is sparse (its D^k_L
exploration finds no center).  For such an edge the k-neighborhoods of both
endpoints are small (Observation 4.2), so the LCA can gather them, restrict
to the subgraph G_sparse, and *exactly* replay the k-round Baswana–Sen
algorithm of Theorem 4.4 on the gathered ball: every vertex's decisions in
the distributed algorithm depend only on its k-neighborhood, so the local
replay returns the same verdict the global run would.

The query edge is kept iff one of its endpoints adds it in the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..baselines.distributed import ClusterSampler, simulate_baswana_sen
from ..core.lca import SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from .params import KSquaredParams
from .voronoi import KSquaredRandomness, LocalView


class SparseSpannerComponent(SpannerLCA):
    """LCA for H_sparse (Lemma 4.5): a (2k−1)-spanner of G_sparse."""

    name = "spannerk-sparse"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: KSquaredParams,
        randomness: KSquaredRandomness,
        shared_cache: Optional[dict] = None,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.randomness = randomness
        self._shared_cache = shared_cache
        self._sampler = ClusterSampler(
            self._derive_seed("spannerk/baswana-sen"),
            stretch_parameter=max(1, params.stretch_parameter),
            num_vertices_global=params.num_vertices,
            independence=params.independence,
        )

    def stretch_bound(self) -> Optional[int]:
        return max(1, 2 * self.params.stretch_parameter - 1)

    # ------------------------------------------------------------------ #
    # Ball gathering
    # ------------------------------------------------------------------ #
    def _gather_ball(
        self, oracle: AdjacencyListOracle, sources: List[int], radius: int
    ) -> Dict[int, List[int]]:
        """Adjacency of the radius-``radius`` ball around the sources.

        Vertices at distance < radius are fully expanded (their complete
        neighbor lists are recorded); vertices at distance exactly ``radius``
        are present but not expanded.  This is sufficient for the exactness
        argument: the simulation only needs complete adjacency for vertices
        within distance ``radius − 1`` of a query endpoint.
        """
        distance: Dict[int, int] = {}
        adjacency: Dict[int, List[int]] = {}
        frontier: List[int] = []
        for s in sources:
            if s not in distance:
                distance[s] = 0
                frontier.append(s)
        depth = 0
        while frontier and depth < radius:
            next_frontier: List[int] = []
            for x in frontier:
                neighbors = oracle.all_neighbors(x)
                adjacency[x] = neighbors
                for w in neighbors:
                    if w not in distance:
                        distance[w] = depth + 1
                        next_frontier.append(w)
            frontier = next_frontier
            depth += 1
        # Boundary vertices: present, with whatever adjacency is already known.
        for x in distance:
            adjacency.setdefault(x, [])
        return adjacency

    # ------------------------------------------------------------------ #
    # Decision rule
    # ------------------------------------------------------------------ #
    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        view = LocalView(
            oracle,
            self.params,
            self.randomness,
            cache=self._shared_cache,
        )
        u_sparse = view.is_sparse(u)
        v_sparse = view.is_sparse(v)
        if not (u_sparse or v_sparse):
            return False

        k = max(1, self.params.stretch_parameter)
        ball = self._gather_ball(oracle, [u, v], radius=k)

        # Sparse/dense labels for every ball vertex (each needs its own
        # exploration); an edge is in G_sparse iff some endpoint is sparse.
        labels: Dict[int, bool] = {x: view.is_sparse(x) for x in ball}

        sparse_adjacency: Dict[int, List[int]] = {}
        for x, neighbors in ball.items():
            kept: List[int] = []
            for w in neighbors:
                if w not in ball:
                    continue
                if labels[x] or labels.get(w, False):
                    kept.append(w)
            sparse_adjacency[x] = kept
        # Symmetrize: an edge known from one side only (the other endpoint was
        # a non-expanded boundary vertex) is added to both lists.
        for x, neighbors in list(sparse_adjacency.items()):
            for w in neighbors:
                if x not in sparse_adjacency.get(w, []):
                    sparse_adjacency.setdefault(w, []).append(x)

        run = simulate_baswana_sen(sparse_adjacency, self._sampler)
        return run.edge_in_spanner(u, v)
