"""Parameters of the O(k²)-spanner LCA (Section 4).

Throughout Section 4 the paper fixes

* ``L = Θ(n^{1/3})`` — the exploration budget of the BFS variant, the cluster
  size bound and (via ``1/L``) the Voronoi-cell marking probability,
* ``p_center = Θ(log n / L)`` — the center election probability, so the
  centers hit every k-neighborhood of size ≥ L,
* ``q = Θ(n^{1/k} log n)`` — how many low-rank Voronoi cells each cluster may
  connect to in rule (3) of H^B_dense (this is what brings the stretch down
  from the O(log n) of Lenzen–Levi to O(k)).

The stretch parameter ``k`` also controls the radius of the sparse/dense
classification and of the Voronoi cells, and the number of rank blocks used
by the bounded-independence rank function (Section 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ParameterError
from ..rand.kwise import recommended_independence
from ..rand.sampler import hitting_probability


@dataclass(frozen=True)
class KSquaredParams:
    """Concrete parameters of the O(k²)-spanner construction."""

    num_vertices: int
    #: The stretch parameter ``k`` (the spanner stretch is O(k²)).
    stretch_parameter: int
    #: Exploration / cluster-size budget ``L = Θ(n^{1/3})``.
    exploration_budget: int
    #: Center election probability ``Θ(log n / L)``.
    center_probability: float
    #: Voronoi-cell marking probability (``1/L`` in the paper).
    mark_probability: float
    #: Rank quota ``q = Θ(n^{1/k} log n)`` of rule (3).
    rank_quota: int
    #: Hash-family independence (Θ(log n), Section 5).
    independence: int

    @classmethod
    def for_graph(
        cls,
        num_vertices: int,
        stretch_parameter: int,
        hitting_constant: float = 2.0,
        quota_constant: float = 2.0,
        exploration_budget: int | None = None,
        independence: int | None = None,
    ) -> "KSquaredParams":
        """Derive the Section 4 parameters for an n-vertex graph.

        ``exploration_budget`` may be overridden (the paper's remark after
        Theorem 1.2 notes the L/p trade-off); the default is ``⌈n^{1/3}⌉``.
        """
        if num_vertices < 1:
            raise ParameterError("the graph must have at least one vertex")
        if stretch_parameter < 1:
            raise ParameterError("the stretch parameter k must be at least 1")
        n = int(num_vertices)
        k = int(stretch_parameter)
        budget = (
            max(2, int(math.ceil(n ** (1.0 / 3.0))))
            if exploration_budget is None
            else max(2, int(exploration_budget))
        )
        if independence is None:
            independence = recommended_independence(n)
        log_n = math.log(max(2, n))
        quota = max(1, int(math.ceil(quota_constant * log_n * n ** (1.0 / k))))
        return cls(
            num_vertices=n,
            stretch_parameter=k,
            exploration_budget=budget,
            center_probability=hitting_probability(budget, n, hitting_constant),
            mark_probability=min(1.0, 1.0 / budget),
            rank_quota=quota,
            independence=int(independence),
        )

    # ------------------------------------------------------------------ #
    # Theoretical targets
    # ------------------------------------------------------------------ #
    def expected_edge_bound(self) -> float:
        """Õ(n^{1+1/k}) — the target size (without log factors)."""
        return float(self.num_vertices) ** (1.0 + 1.0 / self.stretch_parameter)

    def expected_probe_bound(self, max_degree: int) -> float:
        """Õ(Δ⁴ n^{2/3}) — the probe target of Theorem 1.2."""
        return float(max_degree) ** 4 * float(self.num_vertices) ** (2.0 / 3.0)

    def nominal_stretch(self) -> int:
        """A concrete O(k²) stretch figure used for reporting.

        The analysis gives a supergraph path through O(k) Voronoi cells, each
        of diameter ≤ 2k, i.e. roughly ``(2k+1)(2k+1)``; we report
        ``4k² + 6k + 1`` as the nominal bound (the constant is not optimized
        in the paper either).
        """
        k = self.stretch_parameter
        return 4 * k * k + 6 * k + 1
