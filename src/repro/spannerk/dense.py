"""H_dense: Voronoi-tree edges and the inter-cell connection rules.

Two components make up the dense side of the O(k²)-spanner:

* :class:`VoronoiTreeComponent` — H^I_dense (Lemma 4.6): the edges of the
  lexicographically-first shortest paths from every dense vertex to its
  first-discovered center.  These form depth-≤k trees spanning the Voronoi
  cells, so every cell has diameter ≤ 2k inside the spanner.
* :class:`DenseConnectorComponent` — H^B_dense (Section 4.3.4, Figure 10):
  edges connecting clusters across cells, chosen by three rules driven by the
  marked cells and the random ranks.  Rule (3)'s rank quota ``q`` is what
  reduces the inductive connection argument from O(log n) steps (Lenzen–Levi)
  to O(k) steps, giving the O(k²) overall stretch.

Both components evaluate their rules in the two query directions, because the
global construction applies them once per ordered (cluster, cluster) pair.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.lca import SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from .params import KSquaredParams
from .voronoi import ClusterInfo, KSquaredRandomness, LocalView

Edge = Tuple[int, int]


class VoronoiTreeComponent(SpannerLCA):
    """H^I_dense: keep the Voronoi-tree edges (Lemma 4.6)."""

    name = "spannerk-voronoi-tree"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: KSquaredParams,
        randomness: KSquaredRandomness,
        shared_cache: Optional[dict] = None,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.randomness = randomness
        self._shared_cache = shared_cache

    def stretch_bound(self) -> Optional[int]:
        return 1

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        view = LocalView(oracle, self.params, self.randomness, cache=self._shared_cache)
        return view.is_tree_edge(u, v)


class DenseConnectorComponent(SpannerLCA):
    """H^B_dense: the three cluster-connection rules of Figure 10."""

    name = "spannerk-dense-connector"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: KSquaredParams,
        randomness: KSquaredRandomness,
        shared_cache: Optional[dict] = None,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.randomness = randomness
        self._shared_cache = shared_cache

    def stretch_bound(self) -> Optional[int]:
        return None  # O(k²) with high probability; not a deterministic bound.

    # ------------------------------------------------------------------ #
    # Decision rule
    # ------------------------------------------------------------------ #
    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        view = LocalView(oracle, self.params, self.randomness, cache=self._shared_cache)
        if not (view.is_dense(u) and view.is_dense(v)):
            return False
        center_u = view.center(u)
        center_v = view.center(v)
        if center_u == center_v:
            return False  # same Voronoi cell: H^I_dense takes care of it.
        cluster_u = view.cluster_info(u)
        cluster_v = view.cluster_info(v)
        if cluster_u is None or cluster_v is None:
            return False
        return self._rules(view, u, v, cluster_u, cluster_v) or self._rules(
            view, v, u, cluster_v, cluster_u
        )

    def _rules(
        self,
        view: LocalView,
        u: int,
        v: int,
        cluster_a: ClusterInfo,
        cluster_b: ClusterInfo,
    ) -> bool:
        """Evaluate rules (1)–(3) with A = cluster(u), B = cluster(v)."""
        # ---- Rule (1): marked clusters connect to every adjacent cluster.
        if view.randomness.is_marked_cell(cluster_a.cell_center):
            best = view.min_edge_to_cluster(cluster_a, cluster_b.members)
            if best == (u, v):
                return True

        adjacent_b = view.adjacent_cells(cluster_b)

        # ---- Rule (2): clusters with no marked neighboring cell connect to
        #      every adjacent Voronoi cell.
        marked_cells_near_b = [
            cell
            for cell in adjacent_b
            if view.randomness.is_marked_cell(cell)
        ]
        if not marked_cells_near_b:
            witness = adjacent_b.get(cluster_a.cell_center)
            if witness == (v, u):
                return True

        # ---- Rule (3): rank-based connection towards low-rank cells.
        adjacent_a = view.adjacent_cells(cluster_a)
        own_witness = adjacent_a.get(cluster_b.cell_center)
        if own_witness != (u, v):
            return False  # (u, v) is not A's chosen edge towards Vor(B).
        if not marked_cells_near_b:
            return False
        for marked_cell in sorted(marked_cells_near_b):
            member_b, outside = adjacent_b[marked_cell]
            cluster_c = view.cluster_info(outside)
            if cluster_c is None:
                continue
            # B participates in C(C) by construction: the minimum-ID edge from
            # B towards the marked cell lands on ``outside``, a member of C.
            adjacent_c = view.adjacent_cells(cluster_c)
            common = set(adjacent_a) & set(adjacent_c)
            if cluster_b.cell_center not in common:
                common.add(cluster_b.cell_center)
            lower_ranked = view.rank_position(cluster_b.cell_center, common)
            if lower_ranked < self.params.rank_quota:
                return True
        return False
