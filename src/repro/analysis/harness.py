"""End-to-end evaluation harness: materialize an LCA and verify/report it.

This is the bridge used by the tests, the examples and every benchmark: it
queries an LCA on every edge (or a sample), verifies the resulting global
object (subgraph / stretch / connectivity), and produces a structured report
with the quantities the paper's tables talk about — number of edges, stretch,
probe complexity — next to the theoretical targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.lca import MaterializedSpanner, SpannerLCA
from ..graphs.graph import Graph
from .verify import StretchReport, density_ratio, measure_stretch, preserves_connectivity

Edge = Tuple[int, int]


@dataclass
class EvaluationReport:
    """Everything measured about one LCA run on one graph."""

    algorithm: str
    num_vertices: int
    num_graph_edges: int
    num_spanner_edges: int
    stretch: StretchReport
    stretch_bound: Optional[int]
    probe_max: int
    probe_mean: float
    connectivity_preserved: bool
    density: float
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def stretch_ok(self) -> bool:
        """Whether the measured stretch respects the declared bound."""
        if self.stretch_bound is None:
            return self.stretch.is_finite
        return self.stretch.satisfies(self.stretch_bound)

    def as_row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n": self.num_vertices,
            "m": self.num_graph_edges,
            "|H|": self.num_spanner_edges,
            "stretch": self.stretch.max_stretch,
            "stretch bound": self.stretch_bound,
            "max probes": self.probe_max,
            "mean probes": round(self.probe_mean, 1),
            "density": round(self.density, 4),
            "connected": self.connectivity_preserved,
            **self.extras,
        }


def evaluate_lca(
    lca: SpannerLCA,
    stretch_limit: Optional[int] = None,
    sample_stretch_edges: Optional[int] = None,
    seed: int = 0,
    mode: str = "batched",
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    mutations: Optional[Iterable] = None,
    kernel: Optional[str] = None,
) -> EvaluationReport:
    """Materialize an LCA over every edge of its graph and verify the result.

    Parameters
    ----------
    lca:
        The spanner LCA to evaluate (already bound to a graph and seed).
    stretch_limit:
        BFS depth cap for stretch measurement; defaults to a small multiple
        of the declared bound (or unbounded when there is none).
    sample_stretch_edges:
        When given, only this many randomly chosen edges of ``G`` are checked
        for stretch (the spanner is still materialized over all edges).
    mode:
        Materialization engine ("cold", "cached" or "batched").  Defaults to
        the batched engine, which produces identical edges and identical
        per-query probe statistics while being several times faster; pass
        "cold" to time the reference per-query path.
    executor, workers:
        Optional parallel execution backend ("serial", "thread" or
        "process", see :mod:`repro.exec`) and worker count for the
        materialization.  Edges and probe statistics are identical to the
        in-process engines; only wall-clock time changes.  ``executor``
        implies the batched engine, so it requires the default ``mode``.
    mutations:
        Optional sequence of graph mutations (``(op, u, v)`` triples or
        :class:`~repro.service.trace.TraceOp` records) applied to the LCA's
        graph *before* materializing — the post-mutation spanner is what
        gets verified.  Epoch-based cache invalidation guarantees the
        result is bit-identical to evaluating a fresh LCA on the mutated
        edge set; the applied count lands in ``report.extras``.
    kernel:
        Optional probe-kernel selection ("auto", "python" or "numpy", see
        :mod:`repro.kernels`) forwarded to the LCA.  Edges and probe
        statistics are kernel-invariant; only wall-clock time changes.
    """
    graph = lca.graph
    if kernel is not None:
        lca.set_kernel(kernel)
    applied = lca.apply_mutations(mutations) if mutations is not None else 0
    if executor is not None:
        if mode != "batched":
            raise ValueError(
                "executor-based evaluation always runs the batched engine; "
                f"drop mode={mode!r} or drop executor="
            )
        materialized = lca.materialize(executor=executor, workers=workers)
    else:
        materialized = lca.materialize(mode=mode)
    report = evaluate_materialized(
        graph,
        materialized,
        stretch_limit=stretch_limit,
        sample_stretch_edges=sample_stretch_edges,
        seed=seed,
    )
    if mutations is not None:
        report.extras["mutations"] = applied
        report.extras["graph_epoch"] = graph.epoch
    return report


def evaluate_materialized(
    graph: Graph,
    materialized: MaterializedSpanner,
    stretch_limit: Optional[int] = None,
    sample_stretch_edges: Optional[int] = None,
    seed: int = 0,
) -> EvaluationReport:
    """Verify and summarize an already materialized spanner."""
    if stretch_limit is None and materialized.stretch_bound is not None:
        stretch_limit = 2 * materialized.stretch_bound + 2
    sample: Optional[List[Edge]] = None
    if sample_stretch_edges is not None:
        all_edges = list(graph.edges())
        rng = random.Random(seed)
        count = min(sample_stretch_edges, len(all_edges))
        sample = rng.sample(all_edges, count) if count else []
    stretch = measure_stretch(
        graph, materialized.edges, limit=stretch_limit, sample_edges=sample
    )
    return EvaluationReport(
        algorithm=materialized.algorithm,
        num_vertices=graph.num_vertices,
        num_graph_edges=graph.num_edges,
        num_spanner_edges=materialized.num_edges,
        stretch=stretch,
        stretch_bound=materialized.stretch_bound,
        probe_max=materialized.probe_stats.max,
        probe_mean=materialized.probe_stats.mean,
        connectivity_preserved=preserves_connectivity(graph, materialized.edges),
        density=density_ratio(graph, materialized.edges),
    )


def probe_complexity_sample(
    lca: SpannerLCA, num_queries: int, seed: int = 0
) -> Dict[str, float]:
    """Probe statistics over a random sample of edge queries.

    Used when materializing every edge would be too slow but a faithful
    per-query probe measurement is still wanted (e.g. Table 4/5 rows).
    """
    edges = list(lca.graph.edges())
    if not edges:
        return {"queries": 0, "max": 0, "mean": 0.0}
    rng = random.Random(seed)
    count = min(num_queries, len(edges))
    sample = rng.sample(edges, count)
    totals: List[int] = []
    for (u, v) in sample:
        outcome = lca.query_with_stats(u, v)
        totals.append(outcome.probe_total)
    return {
        "queries": len(totals),
        "max": max(totals),
        "mean": sum(totals) / len(totals),
    }


def check_consistency(
    lca: SpannerLCA, edges: Optional[Iterable[Edge]] = None, repeats: int = 2
) -> bool:
    """Check that repeated / reversed queries return identical answers.

    This exercises the Definition 1.4 consistency contract directly; it
    returns ``True`` when no discrepancy is found.
    """
    edge_list = list(lca.graph.edges() if edges is None else edges)
    for (u, v) in edge_list:
        first = lca.query(u, v)
        for _ in range(max(1, repeats - 1)):
            if lca.query(u, v) != first:
                return False
        if lca.query(v, u) != first:
            return False
    return True
