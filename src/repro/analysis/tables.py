"""Plain-text table formatting for the benchmark harnesses.

Benchmarks print the rows the paper's tables report (plus the measured
values) so a run of ``pytest benchmarks/ --benchmark-only -s`` regenerates a
textual version of every table.  No external dependency is used — the tables
are simple aligned monospace text.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col))))
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "-+-".join("-" * widths[col] for col in columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append(separator)
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def format_markdown_table(
    rows: Sequence[Dict[str, object]], title: str = "", level: int = 3
) -> str:
    """Render dict rows as a GitHub-flavored Markdown table.

    The Markdown twin of :func:`format_table`, used by the report generator
    (:mod:`repro.reports.render`).  Output is fully determined by the rows:
    column order is first-seen order, cells go through the same ``_fmt`` as
    the plain-text tables, and no timestamps or environment values are ever
    added here — byte-identical inputs give byte-identical Markdown.
    """
    if not rows:
        body = "(no rows)"
    else:
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        escape = lambda text: text.replace("|", "\\|")  # noqa: E731
        header = "| " + " | ".join(escape(str(col)) for col in columns) + " |"
        separator = "|" + "|".join(" --- " for _ in columns) + "|"
        lines = [header, separator]
        for row in rows:
            cells = [escape(_fmt(row.get(col))) for col in columns]
            lines.append("| " + " | ".join(cells) + " |")
        body = "\n".join(lines)
    if title:
        return f"{'#' * level} {title}\n\n{body}"
    return body


def format_comparison(
    rows: Iterable[Dict[str, object]],
    measured_key: str,
    target_key: str,
    title: str = "",
) -> str:
    """Table with an extra measured/target ratio column (shape comparison)."""
    augmented: List[Dict[str, object]] = []
    for row in rows:
        row = dict(row)
        measured = row.get(measured_key)
        target = row.get(target_key)
        if isinstance(measured, (int, float)) and isinstance(target, (int, float)) and target:
            row["ratio"] = round(float(measured) / float(target), 3)
        else:
            row["ratio"] = None
        augmented.append(row)
    return format_table(augmented, title=title)
