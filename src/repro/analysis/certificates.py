"""Per-edge stretch certificates.

Section 1.3 of the paper observes that the folklore (2k−1)-stretch-vs-size
trade-off is only tight for edges whose endpoints have degree ≈ n^{1/k}:
once an endpoint is high degree the constructions actually guarantee a much
better stretch for that particular edge (often 1 or 3).  This module makes
that observation operational: given one of the spanner LCAs and a query
edge it returns a *certificate* — the rule that takes care of the edge and
the per-edge stretch guarantee implied by that rule — using only degree
probes on top of the LCA answer.

The guarantees per rule are:

=====================  =========  ======================================
construction           rule        per-edge guarantee
=====================  =========  ======================================
3-spanner LCA          kept        1
3-spanner LCA          low/high/   3  (Theorem 1.1)
                       super
5-spanner LCA          kept        1
5-spanner LCA          low         1  (kept by E_low)
5-spanner LCA          super       3  (handled by the H_super 3-spanner)
5-spanner LCA          medium      5  (H_bckt / H_rep)
=====================  =========  ======================================

Certificates are sound: the test-suite verifies that the measured distance
in the materialized spanner never exceeds the certified guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..core.errors import ParameterError
from ..core.ids import canonical_edge
from ..core.lca import SpannerLCA
from ..spanner3.lca import ThreeSpannerLCA
from ..spanner5.lca import FiveSpannerLCA

Edge = Tuple[int, int]


@dataclass(frozen=True)
class EdgeCertificate:
    """The per-edge guarantee issued for one query."""

    edge: Edge
    in_spanner: bool
    #: The edge class responsible for the edge ('kept', 'low', 'high', ...).
    rule: str
    #: The stretch guaranteed for this specific edge.
    guarantee: int
    #: Degrees of the endpoints (the information the guarantee is based on).
    degree_u: int
    degree_v: int

    def as_row(self) -> dict:
        return {
            "edge": f"({self.edge[0]}, {self.edge[1]})",
            "deg(u)/deg(v)": f"{self.degree_u}/{self.degree_v}",
            "in spanner": self.in_spanner,
            "rule": self.rule,
            "per-edge stretch": self.guarantee,
        }


def certify_edge(lca: SpannerLCA, u: int, v: int) -> EdgeCertificate:
    """Issue a per-edge stretch certificate for a query edge.

    Supported constructions: :class:`ThreeSpannerLCA` and
    :class:`FiveSpannerLCA`.  The certificate costs two ``Degree`` probes
    plus one ordinary LCA query.
    """
    graph = lca.graph
    degree_u = graph.degree(u)
    degree_v = graph.degree(v)
    kept = lca.query(u, v)
    edge = canonical_edge(u, v)

    if isinstance(lca, ThreeSpannerLCA):
        if kept:
            return EdgeCertificate(edge, True, "kept", 1, degree_u, degree_v)
        rule = lca.params.classify_edge(degree_u, degree_v)
        return EdgeCertificate(edge, False, rule, 3, degree_u, degree_v)

    if isinstance(lca, FiveSpannerLCA):
        if kept:
            return EdgeCertificate(edge, True, "kept", 1, degree_u, degree_v)
        rule = lca.params.classify_edge(degree_u, degree_v)
        if rule == "low":
            # E_low edges are always kept, so an omitted edge cannot be 'low';
            # classify_edge can still return 'low' in degenerate parameter
            # regimes, in which case the global 5-guarantee applies.
            return EdgeCertificate(edge, False, "low", 5, degree_u, degree_v)
        guarantee = 3 if rule == "super" else 5
        return EdgeCertificate(edge, False, rule, guarantee, degree_u, degree_v)

    raise ParameterError(
        f"certificates are not defined for {type(lca).__name__}; "
        "use ThreeSpannerLCA or FiveSpannerLCA"
    )


def certify_edges(
    lca: SpannerLCA, edges: Iterable[Edge]
) -> List[EdgeCertificate]:
    """Certificates for a batch of edges."""
    return [certify_edge(lca, u, v) for (u, v) in edges]


def best_guarantee_by_degree(lca: SpannerLCA, degree_u: int, degree_v: int) -> int:
    """The stretch guarantee implied by endpoint degrees alone.

    This answers the question raised in the paper's discussion ("for a given
    budget, what is the best stretch that can be obtained for an edge
    (u, v)?") for the two constructions implemented here, without issuing a
    query: low-degree edges are kept (stretch 1), super-high-degree edges are
    covered by a 3-spanner sub-construction, everything else falls back to
    the construction's global bound.
    """
    if isinstance(lca, ThreeSpannerLCA):
        params = lca.params
        if min(degree_u, degree_v) <= params.low_threshold:
            return 1
        return 3
    if isinstance(lca, FiveSpannerLCA):
        params = lca.params
        if min(degree_u, degree_v) <= params.low_threshold:
            return 1
        if max(degree_u, degree_v) > params.super_threshold:
            return 3
        return 5
    raise ParameterError(
        f"per-degree guarantees are not defined for {type(lca).__name__}"
    )


def summarize_certificates(certificates: Iterable[EdgeCertificate]) -> dict:
    """Histogram of rules and guarantees (used by reports and examples)."""
    summary: dict = {"total": 0, "kept": 0, "by_rule": {}, "by_guarantee": {}}
    for certificate in certificates:
        summary["total"] += 1
        summary["kept"] += int(certificate.in_spanner)
        summary["by_rule"][certificate.rule] = (
            summary["by_rule"].get(certificate.rule, 0) + 1
        )
        summary["by_guarantee"][certificate.guarantee] = (
            summary["by_guarantee"].get(certificate.guarantee, 0) + 1
        )
    return summary
