"""Verification of spanner properties (subgraph, stretch, connectivity).

These routines operate on full graphs and materialized edge sets; they are
the ground truth against which the LCAs' local answers are checked.  Stretch
is verified edge-by-edge: a subgraph ``H ⊆ G`` is a t-spanner iff every edge
``(u, v)`` of ``G`` satisfies ``dist_H(u, v) ≤ t`` (standard fact — shortest
paths decompose into edges).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.errors import GraphError
from ..core.ids import canonical_edge
from ..graphs.distances import connected_components, is_connected
from ..graphs.graph import Graph

Edge = Tuple[int, int]


@dataclass
class StretchReport:
    """Result of a stretch verification."""

    #: Worst multiplicative stretch observed over the edges of G (∞ → None).
    max_stretch: Optional[int]
    #: Number of G-edges whose endpoints are disconnected in H.
    disconnected_edges: int
    #: Number of edges checked.
    checked_edges: int
    #: The edge realizing the worst stretch (None when the graph is empty).
    worst_edge: Optional[Edge] = None

    @property
    def is_finite(self) -> bool:
        return self.disconnected_edges == 0

    def satisfies(self, bound: int) -> bool:
        """Whether every edge is stretched by at most ``bound``."""
        if not self.is_finite:
            return False
        return self.max_stretch is not None and self.max_stretch <= bound


def check_subgraph(graph: Graph, edges: Iterable[Edge]) -> None:
    """Raise :class:`GraphError` unless every edge exists in the host graph."""
    for (u, v) in edges:
        if not graph.has_edge(u, v):
            raise GraphError(f"spanner edge ({u}, {v}) is not an edge of G")


def measure_stretch(
    graph: Graph,
    spanner_edges: Iterable[Edge],
    limit: Optional[int] = None,
    sample_edges: Optional[Iterable[Edge]] = None,
) -> StretchReport:
    """Measure the worst stretch of a spanner over the edges of ``G``.

    Parameters
    ----------
    graph:
        Host graph ``G``.
    spanner_edges:
        The spanner's edge set.
    limit:
        Optional cap on the BFS depth; distances beyond the cap are treated
        as "disconnected", which is both faster and sufficient when one only
        wants to check a specific bound.
    sample_edges:
        Check only these edges of ``G`` (all edges by default).
    """
    edge_set = {canonical_edge(u, v) for (u, v) in spanner_edges}
    check_subgraph(graph, edge_set)
    spanner_adj: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    for (u, v) in edge_set:
        spanner_adj[u].append(v)
        spanner_adj[v].append(u)

    to_check = list(graph.edges() if sample_edges is None else sample_edges)
    # Group queries by source so one bounded BFS serves many edges.
    by_source: Dict[int, List[int]] = {}
    for (u, v) in to_check:
        by_source.setdefault(u, []).append(v)

    max_stretch = 0
    worst_edge: Optional[Edge] = None
    disconnected = 0
    for source, targets in by_source.items():
        distances = _bounded_bfs(spanner_adj, source, limit)
        for target in targets:
            d = distances.get(target)
            if d is None:
                disconnected += 1
                worst_edge = worst_edge or (source, target)
                continue
            if d > max_stretch:
                max_stretch = d
                worst_edge = (source, target)
    return StretchReport(
        max_stretch=max_stretch if to_check else 0,
        disconnected_edges=disconnected,
        checked_edges=len(to_check),
        worst_edge=worst_edge,
    )


def _bounded_bfs(
    adjacency: Dict[int, List[int]], source: int, limit: Optional[int]
) -> Dict[int, int]:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        x = queue.popleft()
        dx = distances[x]
        if limit is not None and dx >= limit:
            continue
        for w in adjacency.get(x, ()):  # spanner adjacency
            if w not in distances:
                distances[w] = dx + 1
                queue.append(w)
    return distances


def verify_spanner(
    graph: Graph, spanner_edges: Iterable[Edge], stretch_bound: int
) -> StretchReport:
    """Check that the given edges form a ``stretch_bound``-spanner of ``G``."""
    report = measure_stretch(graph, spanner_edges, limit=stretch_bound + 1)
    return report


def preserves_connectivity(graph: Graph, spanner_edges: Iterable[Edge]) -> bool:
    """Whether the spanner has the same connected components as ``G``."""
    spanner = graph.subgraph_with_edges(spanner_edges)
    original = {frozenset(c) for c in connected_components(graph)}
    kept = {frozenset(c) for c in connected_components(spanner)}
    return original == kept


def spanner_is_connected(graph: Graph, spanner_edges: Iterable[Edge]) -> bool:
    """Whether the spanner is connected (only meaningful for connected G)."""
    if not is_connected(graph):
        return preserves_connectivity(graph, spanner_edges)
    return is_connected(graph.subgraph_with_edges(spanner_edges))


def density_ratio(graph: Graph, spanner_edges: Iterable[Edge]) -> float:
    """|H| / |G| — the sparsification achieved by the spanner."""
    spanner_size = len({canonical_edge(u, v) for (u, v) in spanner_edges})
    if graph.num_edges == 0:
        return 0.0
    return spanner_size / graph.num_edges


def size_against_bound(num_edges: int, bound: float) -> float:
    """|H| divided by the theoretical bound (≤ O(polylog) for a faithful run)."""
    if bound <= 0:
        return float("inf")
    return num_edges / bound
