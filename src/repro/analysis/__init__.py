"""Verification, evaluation and reporting utilities."""

from .certificates import (
    EdgeCertificate,
    best_guarantee_by_degree,
    certify_edge,
    certify_edges,
    summarize_certificates,
)
from .harness import (
    EvaluationReport,
    check_consistency,
    evaluate_lca,
    evaluate_materialized,
    probe_complexity_sample,
)
from .sweep import SweepPoint, SweepResult, exponent_row, run_sweep
from .tables import format_comparison, format_markdown_table, format_table
from .verify import (
    StretchReport,
    check_subgraph,
    density_ratio,
    measure_stretch,
    preserves_connectivity,
    size_against_bound,
    spanner_is_connected,
    verify_spanner,
)

__all__ = [
    "EdgeCertificate",
    "certify_edge",
    "certify_edges",
    "best_guarantee_by_degree",
    "summarize_certificates",
    "EvaluationReport",
    "evaluate_lca",
    "evaluate_materialized",
    "probe_complexity_sample",
    "check_consistency",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "exponent_row",
    "format_table",
    "format_comparison",
    "format_markdown_table",
    "StretchReport",
    "measure_stretch",
    "verify_spanner",
    "check_subgraph",
    "preserves_connectivity",
    "spanner_is_connected",
    "density_ratio",
    "size_against_bound",
]
