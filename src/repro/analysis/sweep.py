"""Parameter sweeps: scaling of size / probes / stretch with n, Δ, k.

The paper's claims are asymptotic; the benchmarks therefore measure how the
spanner size and the per-query probe counts grow along a sweep of graph sizes
and compare the growth *shape* against the theoretical exponents
(n^{3/2} / n^{3/4} for the 3-spanner, n^{4/3} / n^{5/6} for the 5-spanner,
n^{1+1/k} for the O(k²)-spanner).  The fitted exponent is reported next to
the target so the "who wins / by how much" comparison is explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.lca import SpannerLCA
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from .harness import EvaluationReport, evaluate_lca, probe_complexity_sample

GraphFactory = Callable[[int, int], Graph]
LCAFactory = Callable[[Graph, SeedLike], SpannerLCA]


@dataclass
class SweepPoint:
    """One point of a scaling sweep."""

    num_vertices: int
    num_edges: int
    spanner_edges: int
    max_probes: int
    mean_probes: float
    stretch: Optional[int]

    def as_row(self) -> Dict[str, object]:
        return {
            "n": self.num_vertices,
            "m": self.num_edges,
            "|H|": self.spanner_edges,
            "max probes": self.max_probes,
            "mean probes": round(self.mean_probes, 1),
            "stretch": self.stretch,
        }


@dataclass
class SweepResult:
    """A full sweep with exponent fits."""

    algorithm: str
    points: List[SweepPoint] = field(default_factory=list)

    def fitted_exponent(self, extract: Callable[[SweepPoint], float]) -> Optional[float]:
        """Least-squares slope of log(value) against log(n)."""
        xs: List[float] = []
        ys: List[float] = []
        for point in self.points:
            value = extract(point)
            if value > 0 and point.num_vertices > 1:
                xs.append(math.log(point.num_vertices))
                ys.append(math.log(value))
        if len(xs) < 2:
            return None
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            return None
        return numerator / denominator

    def size_exponent(self) -> Optional[float]:
        return self.fitted_exponent(lambda p: float(p.spanner_edges))

    def probe_exponent(self) -> Optional[float]:
        return self.fitted_exponent(lambda p: float(p.max_probes))

    def rows(self) -> List[Dict[str, object]]:
        return [point.as_row() for point in self.points]


def run_sweep(
    algorithm_name: str,
    lca_factory: LCAFactory,
    graph_factory: GraphFactory,
    sizes: Sequence[int],
    seed: int = 0,
    materialize: bool = True,
    probe_queries: int = 30,
    stretch_sample: Optional[int] = 200,
) -> SweepResult:
    """Run an LCA over graphs of increasing size and collect scaling data.

    When ``materialize`` is false (used for the more expensive constructions)
    only a sample of queries is issued and the spanner size is estimated from
    the YES-rate of the sample.
    """
    result = SweepResult(algorithm=algorithm_name)
    for index, size in enumerate(sizes):
        graph = graph_factory(size, seed + index)
        lca = lca_factory(graph, seed + index)
        if materialize:
            report: EvaluationReport = evaluate_lca(
                lca, sample_stretch_edges=stretch_sample, seed=seed
            )
            point = SweepPoint(
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                spanner_edges=report.num_spanner_edges,
                max_probes=report.probe_max,
                mean_probes=report.probe_mean,
                stretch=report.stretch.max_stretch,
            )
        else:
            stats = probe_complexity_sample(lca, probe_queries, seed=seed + index)
            yes_rate = _yes_rate(lca, probe_queries, seed=seed + index)
            point = SweepPoint(
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                spanner_edges=int(round(yes_rate * graph.num_edges)),
                max_probes=int(stats["max"]),
                mean_probes=float(stats["mean"]),
                stretch=None,
            )
        result.points.append(point)
    return result


def _yes_rate(lca: SpannerLCA, num_queries: int, seed: int = 0) -> float:
    """Fraction of sampled edge queries answered YES (spanner size estimate)."""
    import random

    edges = list(lca.graph.edges())
    if not edges:
        return 0.0
    rng = random.Random(seed)
    count = min(num_queries, len(edges))
    sample = rng.sample(edges, count)
    yes = sum(1 for (u, v) in sample if lca.query(u, v))
    return yes / count


def exponent_row(
    sweep: SweepResult, target_size_exponent: float, target_probe_exponent: float
) -> Dict[str, object]:
    """Summary row comparing fitted exponents against the paper's targets."""
    return {
        "algorithm": sweep.algorithm,
        "size exponent (fit)": _round(sweep.size_exponent()),
        "size exponent (paper)": target_size_exponent,
        "probe exponent (fit)": _round(sweep.probe_exponent()),
        "probe exponent (paper)": target_probe_exponent,
    }


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 3)
