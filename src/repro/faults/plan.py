"""Seeded fault plans: a deterministic schedule of injected failures.

A :class:`FaultPlan` is a frozen list of :class:`FaultEvent` records, each
pinned to an engine *cycle* (the service scheduler's outermost loop index —
a tick-clock boundary, so injection points are identical across runs and
across hosts).  Plans come from three places:

* :meth:`FaultPlan.generate` — a seeded pseudo-random storm, the chaos
  scenario workhorse: same ``(seed, knobs)`` ⇒ byte-identical plan;
* :meth:`FaultPlan.from_file` — a JSON file (the CLI's ``--fault-plan``),
  for replaying a hand-written or previously exported schedule;
* literal construction in tests, where single surgical events pin failover
  semantics.

Event kinds (:data:`FAULT_KINDS`):

``crash``
    One replica of one shard dies for ``duration`` cycles, then recovers
    (rejoins from a checkpoint).  Crashing the primary triggers failover.
``shard_loss``
    Every replica of a shard dies at once for ``duration`` cycles — the
    degraded-mode case: reads get DEGRADED answers or reason-coded sheds,
    writes wait behind the recovery barrier.
``slow``
    The next ``count`` batch submissions to a replica each take ``delay``
    extra ticks.  Delays at or past the engine's timeout budget count as
    timeouts and are retried like failures.
``flaky``
    The next ``count`` batch submissions to a replica raise a transient
    oracle error (:class:`~repro.faults.injector.TransientFaultError`)
    before doing any work.  Retries are submissions too, so ``count=1``
    costs one backoff while a count past the engine's retry budget turns
    into a permanent batch failure.

Durations are finite by construction (validated ``>= 1``), which is what
lets the engine *prove* termination: any write blocked on a dead shard is
released by that shard's scheduled recovery.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.errors import ReproError

PathLike = Union[str, Path]

#: Registered fault kinds, by name.
FAULT_KINDS = ("crash", "shard_loss", "slow", "flaky")

#: Fault kinds that take a replica down (vs degrading its service).
DOWN_KINDS = ("crash", "shard_loss")


class FaultPlanError(ReproError):
    """A fault plan failed validation or could not be parsed."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is the engine cycle the fault fires on; ``shard``/``replica``
    address the victim (``replica`` is ignored for ``shard_loss``, which
    takes the whole replica set down).  ``duration`` (cycles, down-kinds)
    is finite and ``>= 1``; ``delay`` (extra ticks per slow batch) and
    ``count`` (number of affected batches) shape the service-degrading
    kinds.
    """

    at: int
    kind: str
    shard: int
    replica: int = 0
    duration: int = 4
    delay: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.at < 0:
            raise FaultPlanError("fault cycle 'at' must be >= 0")
        if self.shard < 0:
            raise FaultPlanError("fault shard must be >= 0")
        if self.replica < 0:
            raise FaultPlanError("fault replica must be >= 0")
        if self.kind in DOWN_KINDS and self.duration < 1:
            raise FaultPlanError(
                f"{self.kind} faults need a finite duration >= 1 cycle "
                "(infinite outages would deadlock the write barrier)"
            )
        if self.kind == "slow" and self.delay < 1:
            raise FaultPlanError("slow faults need delay >= 1 tick")
        if self.kind in ("slow", "flaky") and self.count < 1:
            raise FaultPlanError("slow/flaky faults need count >= 1")

    @property
    def recovery_cycle(self) -> int:
        """First cycle the victim is back up (down-kinds only)."""
        return self.at + self.duration

    def as_dict(self) -> Dict[str, int]:
        payload = {"at": self.at, "kind": self.kind, "shard": self.shard}
        if self.kind == "crash":
            payload["replica"] = self.replica
            payload["duration"] = self.duration
        elif self.kind == "shard_loss":
            payload["duration"] = self.duration
        elif self.kind == "slow":
            payload["replica"] = self.replica
            payload["delay"] = self.delay
            payload["count"] = self.count
        else:  # flaky
            payload["replica"] = self.replica
            payload["count"] = self.count
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultEvent":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault event must be a table, got {payload!r}")
        known = {"at", "kind", "shard", "replica", "duration", "delay", "count"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault event key(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        try:
            kwargs = {key: payload[key] for key in ("at", "kind", "shard")}
        except KeyError as exc:
            raise FaultPlanError(
                f"fault event is missing required key {exc.args[0]!r}"
            ) from exc
        for key in ("replica", "duration", "delay", "count"):
            if key in payload:
                kwargs[key] = payload[key]
        try:
            kwargs = {
                key: (str(value) if key == "kind" else int(value))
                for key, value in kwargs.items()
            }
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault event {payload!r}") from exc
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, cycle-ordered schedule of :class:`FaultEvent` records."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at, e.shard, e.replica, e.kind))
        )
        object.__setattr__(self, "events", ordered)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def max_shard(self) -> int:
        return max((event.shard for event in self.events), default=-1)

    @classmethod
    def generate(
        cls,
        seed: int,
        num_shards: int,
        replication: int = 1,
        horizon: int = 64,
        crashes: int = 0,
        shard_losses: int = 0,
        slow: int = 0,
        flaky: int = 0,
        duration: int = 4,
        delay: int = 3,
        count: int = 1,
    ) -> "FaultPlan":
        """A seeded pseudo-random storm: same inputs ⇒ identical plan.

        Draws ``crashes`` replica crashes, ``shard_losses`` whole-shard
        outages, ``slow`` slow-batch faults and ``flaky`` transient-error
        faults, each at a uniform cycle in ``[0, horizon)`` against a
        uniform victim.  The RNG stream is namespaced (``"faults:<seed>"``)
        and consumed in a fixed kind order, so adding one knob never
        reshuffles the draws of another.
        """
        if num_shards < 1:
            raise FaultPlanError("num_shards must be >= 1")
        if replication < 1:
            raise FaultPlanError("replication must be >= 1")
        if horizon < 1:
            raise FaultPlanError("horizon must be >= 1")
        rng = random.Random(f"faults:{seed}")
        events: List[FaultEvent] = []
        for _ in range(crashes):
            events.append(
                FaultEvent(
                    at=rng.randrange(horizon),
                    kind="crash",
                    shard=rng.randrange(num_shards),
                    replica=rng.randrange(replication),
                    duration=duration,
                )
            )
        for _ in range(shard_losses):
            events.append(
                FaultEvent(
                    at=rng.randrange(horizon),
                    kind="shard_loss",
                    shard=rng.randrange(num_shards),
                    duration=duration,
                )
            )
        for _ in range(slow):
            events.append(
                FaultEvent(
                    at=rng.randrange(horizon),
                    kind="slow",
                    shard=rng.randrange(num_shards),
                    replica=rng.randrange(replication),
                    delay=delay,
                    count=count,
                )
            )
        for _ in range(flaky):
            events.append(
                FaultEvent(
                    at=rng.randrange(horizon),
                    kind="flaky",
                    shard=rng.randrange(num_shards),
                    replica=rng.randrange(replication),
                    count=count,
                )
            )
        return cls(events=tuple(events), seed=seed)

    def as_dict(self) -> Dict:
        payload: Dict = {"events": [event.as_dict() for event in self.events]}
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault plan must be a table, got {payload!r}")
        unknown = sorted(set(payload) - {"events", "seed"})
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan key(s) {', '.join(map(repr, unknown))}; "
                "known: 'events', 'seed'"
            )
        raw_events = payload.get("events", [])
        if not isinstance(raw_events, (list, tuple)):
            raise FaultPlanError("fault plan 'events' must be a list")
        events = tuple(FaultEvent.from_dict(item) for item in raw_events)
        seed = payload.get("seed")
        return cls(events=events, seed=None if seed is None else int(seed))

    def to_file(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_file(cls, path: PathLike) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"{path}: malformed fault plan JSON: {exc}") from exc
        return cls.from_dict(payload)
