"""Runtime fault injection: plan playback against the service scheduler.

The :class:`FaultInjector` is the bridge between a static
:class:`~repro.faults.plan.FaultPlan` and the engine's cycle loop.  The
engine calls :meth:`FaultInjector.begin_cycle` once per scheduler cycle;
the injector activates every event whose cycle has arrived, expires
outages whose duration has elapsed, and answers the engine's questions
during dispatch:

* :meth:`is_up` / :meth:`live_replicas` — routing: which replicas of a
  shard may serve right now (primary = lowest live replica index);
* :meth:`take_delay` — slow-batch injection: extra ticks this submission
  must burn (the engine compares the delay against its timeout budget);
* :meth:`take_flake` — transient-error injection: whether this submission
  should raise :class:`TransientFaultError` instead of serving.

Consumption is **submission-scoped**: every submission — including each
retry — draws one unit from the victim replica's slow/flaky budget, so a
``flaky`` event with ``count=3`` against an engine allowing 2 retries
exhausts the retry budget (three failed attempts), while ``count=1`` costs
exactly one backoff.  All state transitions happen at cycle boundaries or
dispatch time on the coordinator thread, never on workers — which is what
keeps fault runs bit-reproducible under the thread backend.

Determinism contract: with the same plan and the same request stream, the
sequence of injector decisions is identical across runs, hosts, and
executor backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exec.backends import TransientTaskError
from .plan import FaultPlan, FaultPlanError


class TransientFaultError(TransientTaskError):
    """An injected transient failure (flaky oracle, worker hiccup).

    Subclasses :class:`~repro.exec.backends.TransientTaskError`, so every
    retryable execution path treats injected faults exactly like organic
    transient failures.
    """


def raise_transient_fault(shard: int, replica: int) -> "NoReturn":  # noqa: F821
    """A submittable task body that fails transiently (picklable)."""
    raise TransientFaultError(
        f"injected transient fault on shard {shard} replica {replica}"
    )


@dataclass
class FaultStats:
    """Counters for everything the fault plane did to (and for) a run.

    Injection counts (``crashes``, ``shard_losses``, ``slow_batches``,
    ``transient_errors``) come from the injector; reaction counts
    (``failovers``, ``retries``, ``timeouts``, ``degraded_answers``,
    ``degraded_sheds``, ``checkpoints``, ``recoveries``,
    ``blocked_write_cycles``) from the engine.  ``as_dict`` feeds the
    service report's ``faults`` extras block.
    """

    crashes: int = 0
    shard_losses: int = 0
    recoveries: int = 0
    failovers: int = 0
    retries: int = 0
    timeouts: int = 0
    slow_batches: int = 0
    transient_errors: int = 0
    degraded_answers: int = 0
    degraded_sheds: int = 0
    checkpoints: int = 0
    blocked_write_cycles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "shard_losses": self.shard_losses,
            "recoveries": self.recoveries,
            "failovers": self.failovers,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "slow_batches": self.slow_batches,
            "transient_errors": self.transient_errors,
            "degraded_answers": self.degraded_answers,
            "degraded_sheds": self.degraded_sheds,
            "checkpoints": self.checkpoints,
            "blocked_write_cycles": self.blocked_write_cycles,
        }

    @property
    def total_injected(self) -> int:
        return (
            self.crashes
            + self.shard_losses
            + self.slow_batches
            + self.transient_errors
        )

    def register_into(self, registry, prefix: str = "faults") -> None:
        """Register every counter into a metrics registry under ``prefix``.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry` (duck
        typed so this module stays importable without the obs plane); the
        names follow the repo-wide ``<plane>.<noun>`` scheme documented in
        ``docs/observability.md``.
        """
        for name, value in self.as_dict().items():
            registry.counter(f"{prefix}.{name}", value)


@dataclass
class FaultInjector:
    """Plays a :class:`FaultPlan` forward along the engine's cycle clock."""

    plan: FaultPlan
    num_shards: int
    replication: int = 1
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        top = self.plan.max_shard()
        if top >= self.num_shards:
            raise FaultPlanError(
                f"fault plan targets shard {top} but the service has "
                f"{self.num_shards} shard(s)"
            )
        #: (shard, replica) -> first cycle the replica is up again.
        self._down: Dict[Tuple[int, int], int] = {}
        #: (shard, replica) -> queue of extra-tick delays, one per submission.
        self._slow: Dict[Tuple[int, int], List[int]] = {}
        #: (shard, replica) -> remaining transient failures to inject.
        self._flaky: Dict[Tuple[int, int], int] = {}
        self._cursor = 0  # next plan event to activate (plan is cycle-sorted)
        self._cycle = -1

    # ------------------------------------------------------------------ #
    # Cycle boundary
    # ------------------------------------------------------------------ #
    def begin_cycle(self, cycle: int) -> List[Tuple[int, int]]:
        """Advance to ``cycle``; returns replicas that recovered this step.

        Expires outages first, then activates newly-due events, so a
        replica whose recovery and a fresh crash land on the same cycle
        ends the boundary down (the new outage wins) but still appears in
        the recovered list — the engine re-seeds it from a checkpoint
        before the new outage is observed.
        """
        self._cycle = cycle
        recovered = sorted(
            key for key, until in self._down.items() if until <= cycle
        )
        for key in recovered:
            del self._down[key]
            self.stats.recoveries += 1
        events = self.plan.events
        while self._cursor < len(events) and events[self._cursor].at <= cycle:
            event = events[self._cursor]
            self._cursor += 1
            if event.kind == "crash":
                replica = event.replica % self.replication
                self._take_down(event.shard, replica, event.recovery_cycle)
                self.stats.crashes += 1
            elif event.kind == "shard_loss":
                for replica in range(self.replication):
                    self._take_down(event.shard, replica, event.recovery_cycle)
                self.stats.shard_losses += 1
            elif event.kind == "slow":
                key = (event.shard, event.replica % self.replication)
                self._slow.setdefault(key, []).extend(
                    [event.delay] * event.count
                )
            else:  # flaky
                key = (event.shard, event.replica % self.replication)
                self._flaky[key] = self._flaky.get(key, 0) + event.count
        return recovered

    def _take_down(self, shard: int, replica: int, until: int) -> None:
        key = (shard, replica)
        self._down[key] = max(self._down.get(key, 0), until)

    # ------------------------------------------------------------------ #
    # Dispatch-time queries
    # ------------------------------------------------------------------ #
    def is_up(self, shard: int, replica: int) -> bool:
        return (shard, replica) not in self._down

    def live_replicas(self, shard: int) -> List[int]:
        """Replica indices of ``shard`` currently up, lowest first."""
        return [
            replica
            for replica in range(self.replication)
            if (shard, replica) not in self._down
        ]

    def take_delay(self, shard: int, replica: int) -> int:
        """Extra ticks this submission must burn (consumes one slow unit)."""
        queue = self._slow.get((shard, replica))
        if not queue:
            return 0
        self.stats.slow_batches += 1
        return queue.pop(0)

    def take_flake(self, shard: int, replica: int) -> bool:
        """Whether this submission fails transiently (consumes one unit)."""
        key = (shard, replica)
        remaining = self._flaky.get(key, 0)
        if remaining <= 0:
            return False
        self._flaky[key] = remaining - 1
        self.stats.transient_errors += 1
        return True

    # ------------------------------------------------------------------ #
    # Termination support
    # ------------------------------------------------------------------ #
    def next_transition_after(self, cycle: int) -> Optional[int]:
        """The next cycle at which availability can change, if any.

        The minimum over pending activations and active recovery deadlines
        strictly after ``cycle``.  The engine's write barrier fast-forwards
        to this cycle when a queued write targets a fully-down shard and no
        other progress is possible — finite durations guarantee the value
        exists whenever something is down.
        """
        candidates = [until for until in self._down.values() if until > cycle]
        events = self.plan.events
        if self._cursor < len(events):
            upcoming = events[self._cursor].at
            if upcoming > cycle:
                candidates.append(upcoming)
        return min(candidates) if candidates else None

    def anything_down(self) -> bool:
        return bool(self._down)
