"""Fault-injection plane: deterministic failures for a survivable service.

Chaos engineering needs reproducible chaos: a fault you cannot replay is a
fault you cannot regression-test.  This package provides

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`, a
  seeded, serializable schedule of worker crashes, whole-shard losses,
  slow batches and transient oracle errors, pinned to engine cycles
  (tick-clock boundaries) so injection points are identical across runs;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which plays a
  plan forward along the scheduler's cycle clock and answers the engine's
  dispatch-time questions (who is up, what is slow, what fails), plus
  :class:`FaultStats` and :class:`TransientFaultError` (a retryable
  :class:`~repro.exec.backends.TransientTaskError`).

The service layer (:mod:`repro.service`) consumes this package to drive
replica failover, bounded retries with capped backoff, per-batch timeout
accounting and degraded-mode serving; chaos scenarios wire plans in via
the ``[faults]`` table (:mod:`repro.reports.spec`) and the CLI's
``--fault-plan`` / storm knobs.  See ``docs/faults.md`` for the fault
model and consistency argument.
"""

from .injector import (
    FaultInjector,
    FaultStats,
    TransientFaultError,
    raise_transient_fault,
)
from .plan import DOWN_KINDS, FAULT_KINDS, FaultEvent, FaultPlan, FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "DOWN_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "FaultInjector",
    "FaultStats",
    "TransientFaultError",
    "raise_transient_fault",
]
