"""Pluggable executor backends: serial, thread and process execution.

Every LCA query is a pure function of ``(graph, seed, query)``, so batches of
queries are embarrassingly parallel — the only questions are *where* the work
runs and *how* the graph gets there.  This module answers the first question
with three interchangeable backends behind one interface:

``serial``
    Executes chunk plans inline, in submission order.  Zero concurrency,
    zero overhead — the reference backend, and the one tests use to exercise
    the plan/execute split without multiprocessing in the loop.
``thread``
    A ``ThreadPoolExecutor``.  The GIL serializes pure-Python query work, so
    this backend is about API parity and latency overlap, not CPU speedup;
    workers share the coordinator's graph object directly.
``process``
    A ``ProcessPoolExecutor`` — the backend that actually multiplies
    throughput on multi-core hosts.  Workers attach to a shared-memory CSR
    export of the graph (:class:`~repro.graphs.csr.SharedCSRHandle`) instead
    of unpickling an O(m) adjacency structure.

Answers and per-query probe totals are bit-identical across all three — the
cold-schedule accounting contract (:mod:`repro.core.cache`) makes probe
charges independent of cache warmth, and therefore independent of how work
is partitioned.  The equivalence is pinned by ``tests/test_exec_backends.py``.

:class:`PinnedWorkers` is the service-layer sibling: key-affine futures where
all work for one shard runs on one dedicated worker thread, so per-shard memo
state stays single-threaded while distinct shards execute concurrently.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

#: Registered executor backends, by name.
EXECUTOR_BACKENDS = ("serial", "thread", "process")


class TransientTaskError(RuntimeError):
    """A submitted task failed in a way the submitter may safely retry.

    The retry contract: a task raising this error has had **no observable
    effect** (no partial answers folded back, no state mutated), so
    resubmitting it — to the same worker or a replica — yields the same
    result a first-time success would have.  Pure LCA query batches satisfy
    this trivially; the fault-injection layer
    (:class:`repro.faults.TransientFaultError`) subclasses it to model
    transient oracle errors and worker hiccups.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff, in clock *ticks*.

    Backoff is charged by reading the injected clock ``backoff_ticks``
    times — on a wall clock that is a (near-)no-op; on the deterministic
    :class:`~repro.reports.runner.TickClock` it advances virtual time, so
    retried batches show their backoff delay in the latency percentiles
    while the run stays bit-reproducible.

    ``max_retries`` bounds *re*-submissions: a task is attempted at most
    ``max_retries + 1`` times before its :class:`TransientTaskError`
    propagates to the caller.
    """

    max_retries: int = 2
    backoff_base: int = 1
    backoff_cap: int = 8

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")

    def backoff_ticks(self, attempt: int) -> int:
        """Ticks to wait before re-submission number ``attempt`` (0-based)."""
        return min(self.backoff_cap, self.backoff_base << min(attempt, 62))


#: Default policy for retryable execution paths (3 attempts total).
DEFAULT_RETRY_POLICY = RetryPolicy()


def call_with_retries(
    fn: Callable,
    args: tuple = (),
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    clock: Optional[Callable[[], float]] = None,
    on_retry: Optional[Callable[[int], None]] = None,
):
    """Run ``fn(*args)``, retrying :class:`TransientTaskError` per ``policy``.

    Backoff between attempts is charged as ``policy.backoff_ticks(attempt)``
    readings of ``clock`` (skipped when no clock is supplied); ``on_retry``
    observes each re-submission (for telemetry).  Any other exception — and
    a transient error past the retry budget — propagates unchanged.
    """
    attempt = 0
    while True:
        try:
            return fn(*args)
        except TransientTaskError:
            if attempt >= policy.max_retries:
                raise
            if clock is not None:
                for _ in range(policy.backoff_ticks(attempt)):
                    clock()
            if on_retry is not None:
                on_retry(attempt)
            attempt += 1


#: Backends usable for key-affine (per-shard) futures.  Process pools have
#: no submission affinity, and shard memo state lives in-process, so the
#: service layer runs on serial or thread workers.
PINNED_BACKENDS = ("serial", "thread")


def check_backend(name: str, choices: Sequence[str] = EXECUTOR_BACKENDS) -> str:
    if name not in choices:
        raise ValueError(
            f"unknown executor backend {name!r}; choices: {tuple(choices)}"
        )
    return name


def resolve_workers(workers: Optional[int], backend: str) -> int:
    """Worker count for a backend: explicit value, or a sensible default.

    Defaults to 1 for the serial backend and to the host's CPU count for
    thread/process (minimum 2, so the parallel machinery is exercised even
    on single-core hosts).
    """
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return workers
    if backend == "serial":
        return 1
    return max(2, os.cpu_count() or 1)


class ExecutorBackend(abc.ABC):
    """Maps a function over items, returning results in input order."""

    name: str = "abstract"

    def __init__(self, workers: int = 1) -> None:
        self.workers = int(workers)

    @abc.abstractmethod
    def map_ordered(self, fn: Callable, items: Iterable) -> List:
        """Apply ``fn`` to every item; results follow input order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutorBackend):
    """Inline execution (the reference backend)."""

    name = "serial"

    def map_ordered(self, fn: Callable, items: Iterable) -> List:
        return [fn(item) for item in items]


class ThreadBackend(ExecutorBackend):
    """Thread-pool execution (shared address space, GIL-serialized)."""

    name = "thread"

    def map_ordered(self, fn: Callable, items: Iterable) -> List:
        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec"
        ) as pool:
            return list(pool.map(fn, items))


class ProcessBackend(ExecutorBackend):
    """Process-pool execution (true parallelism; plans must be picklable)."""

    name = "process"

    def map_ordered(self, fn: Callable, items: Iterable) -> List:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))


def get_executor(name: str, workers: Optional[int] = None) -> ExecutorBackend:
    """Instantiate an executor backend by name."""
    check_backend(name)
    count = resolve_workers(workers, name)
    if name == "serial":
        return SerialBackend(1)
    if name == "thread":
        return ThreadBackend(count)
    return ProcessBackend(count)


def _immediate_future(fn: Callable, args: tuple) -> Future:
    """Run ``fn`` now and wrap the outcome in a resolved Future."""
    future: Future = Future()
    try:
        future.set_result(fn(*args))
    except BaseException as exc:  # noqa: BLE001 - mirrored to the caller
        future.set_exception(exc)
    return future


class PinnedWorkers:
    """Key-affine futures: all work for a key runs on one worker thread.

    ``submit(key, fn, *args)`` routes to worker ``key % workers``; each
    worker is a single-thread executor, so submissions for the same key
    execute in submission order with no locking, while different keys
    overlap.  The ``serial`` backend executes submissions inline (still
    returning futures), which keeps the calling code backend-agnostic.

    Used by the service layer: one shard = one key, so shard memo state is
    only ever touched by its own worker.
    """

    def __init__(
        self, num_keys: int, backend: str = "serial", workers: Optional[int] = None
    ) -> None:
        check_backend(backend, PINNED_BACKENDS)
        if num_keys < 1:
            raise ValueError("num_keys must be >= 1")
        self.backend = backend
        self.num_keys = int(num_keys)
        if backend == "serial":
            self._pools: Optional[List[ThreadPoolExecutor]] = None
            self.workers = 1
        else:
            self.workers = min(resolve_workers(workers, backend), self.num_keys)
            self._pools = [
                ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"repro-shard-{i}")
                for i in range(self.workers)
            ]

    def submit(self, key: int, fn: Callable, *args) -> Future:
        if self._pools is None:
            return _immediate_future(fn, args)
        return self._pools[int(key) % self.workers].submit(fn, *args)

    def close(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None

    def __enter__(self) -> "PinnedWorkers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
