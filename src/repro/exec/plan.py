"""Picklable execution plans and the worker-side execute step.

The plan/execute split is what makes the executor backends interchangeable:
a :class:`ChunkPlan` carries everything a worker needs to answer a contiguous
slice of queries — a graph reference, an :class:`~repro.core.lca.LCASpec`
(algorithm name + seed + frozen parameters) and the edge slice itself — and
:func:`execute_chunk` turns it into a :class:`ChunkResult` anywhere: inline,
on a thread, or in another process.

Graph references come in two flavors:

* :class:`InlineGraphRef` holds the coordinator's graph object directly —
  free for serial/thread workers that share the address space;
* :class:`SharedGraphRef` holds a :class:`~repro.graphs.csr.SharedCSRHandle`
  — a few dozen bytes that a process worker resolves by *attaching* to the
  shared-memory CSR arrays instead of unpickling an O(m) structure.

Worker processes memoize the attached graph and the rebuilt LCA between
chunks (one slot each — the coordinator drives one materialization at a
time), so per-vertex memo state warms up across the chunks a worker serves.
By the cold-schedule accounting contract this affects wall-clock time only:
per-query probe totals are identical no matter how edges are chunked or
where chunks run.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cache import CacheSnapshot, SnapshotCursor
from ..core.lca import LCASpec, SpannerLCA
from ..core.probes import ProbeSnapshot
from ..core.registry import available, create
from ..graphs.csr import SharedCSRHandle
from ..graphs.graph import Graph
from .backends import DEFAULT_RETRY_POLICY, RetryPolicy, call_with_retries

Edge = Tuple[int, int]

#: Contiguous chunks handed to each worker per materialization.  A
#: load-balance/locality trade-off: more chunks smooth out uneven per-edge
#: cost, fewer chunks mean fewer chunk boundaries — per-vertex memo state is
#: re-derived by every worker whose chunks touch the vertex, so boundary
#: count is duplicated work (measured: +4% total CPU at 2 contiguous pieces
#: vs +26% at 8 on the dense fixture).
CHUNKS_PER_WORKER = 2


#: Monotone run tokens scoping worker-local caches to one materialization
#: (object ids get reused; tokens never do).
_RUN_TOKENS = itertools.count(1)


def next_run_token() -> int:
    return next(_RUN_TOKENS)


@dataclass(frozen=True)
class InlineGraphRef:
    """Graph reference for workers sharing the coordinator's address space.

    ``token`` (a fresh :func:`next_run_token` per materialization) scopes
    worker-side caching: a later run over a different graph can never alias
    a stale cache entry, even if the old graph's ``id()`` is reused.
    """

    graph: Graph
    token: int = 0

    def resolve(self) -> Graph:
        return self.graph

    @property
    def cache_key(self) -> object:
        return (id(self.graph), self.token)


@dataclass(frozen=True)
class SharedGraphRef:
    """Graph reference resolved by attaching to a shared-memory CSR export."""

    handle: SharedCSRHandle

    def resolve(self) -> Graph:
        return self.handle.attach()

    @property
    def cache_key(self) -> object:
        return self.handle.shm_name


@dataclass(frozen=True)
class MappedGraphRef:
    """Graph reference resolved by mapping an on-disk CSR snapshot.

    ``handle`` is duck-typed (anything picklable with an ``attach()``
    returning a graph — in practice a
    :class:`repro.scale.snapshot.MappedCSRHandle`), so the exec plane needs
    no import of the scale plane.  Like :class:`SharedGraphRef` it costs a
    few dozen bytes on the wire; unlike it, the backing storage is a file,
    so no exporter process has to outlive the workers.
    """

    handle: object

    def resolve(self) -> Graph:
        return self.handle.attach()

    @property
    def cache_key(self) -> object:
        return ("mapped", self.handle)


@dataclass
class ChunkPlan:
    """One worker assignment: answer ``edges`` with a rebuild of ``spec``."""

    chunk_id: int
    graph: object  # InlineGraphRef | SharedGraphRef
    spec: LCASpec
    edges: List[Edge]


@dataclass
class ChunkResult:
    """What a worker sends back for one chunk.

    ``answers``/``probe_totals`` are aligned with the plan's edge slice;
    ``probes`` is the per-kind counter delta (the sum of the slice's
    cold-schedule charges); ``cache`` is the portable memo snapshot
    (query answers + their cold probe costs) for the coordinator to fold
    back via :meth:`~repro.core.oracle.CachedOracle.merge_state`.
    """

    chunk_id: int
    answers: List[bool] = field(default_factory=list)
    probe_totals: List[int] = field(default_factory=list)
    probes: ProbeSnapshot = field(default_factory=ProbeSnapshot)
    cache: CacheSnapshot = field(default_factory=CacheSnapshot)


def build_chunk_plans(
    graph_ref, spec: LCASpec, edges: List[Edge], workers: int
) -> List[ChunkPlan]:
    """Split an edge list into balanced contiguous chunk plans.

    Contiguity preserves the locality the batched engine banks on (edges
    arrive grouped by first endpoint), and the fixed chunk → slice mapping
    makes reassembly order-deterministic.
    """
    if spec.algorithm not in available():
        raise ValueError(
            f"LCA {spec.algorithm!r} is not a registered construction; "
            "parallel execution rebuilds LCAs by registry name "
            f"(available: {', '.join(available())})"
        )
    total = len(edges)
    num_chunks = max(1, min(total, workers * CHUNKS_PER_WORKER))
    base, extra = divmod(total, num_chunks)
    plans: List[ChunkPlan] = []
    start = 0
    for chunk_id in range(num_chunks):
        size = base + (1 if chunk_id < extra else 0)
        plans.append(
            ChunkPlan(
                chunk_id=chunk_id,
                graph=graph_ref,
                spec=spec,
                edges=edges[start : start + size],
            )
        )
        start += size
    return plans


# --------------------------------------------------------------------------- #
# Worker-side state: one slot per *thread* (one graph, its LCA rebuilds)
# --------------------------------------------------------------------------- #
# Thread-local by design: an LCA owns a mutable probe counter, so two chunks
# must never run against one instance concurrently.  Process-pool workers are
# single-threaded (one slot per process); thread-pool workers each get their
# own slot; the serial backend reuses the caller's slot across chunks.  The
# graph ref's ``cache_key`` scopes the slot to one graph/run, so switching
# runs drops stale state.
_WORKER_TLS = threading.local()


def _worker_slot() -> Dict[str, object]:
    slot = getattr(_WORKER_TLS, "slot", None)
    if slot is None:
        slot = {"key": None, "graph": None, "lcas": {}}
        _WORKER_TLS.slot = slot
    return slot


def clear_worker_slot() -> None:
    """Drop this thread's worker cache (graph + rebuilt LCAs).

    The serial backend executes chunks on the coordinator's own thread;
    without this, the last run's LCA (holding a full copy of the merged
    memo state) would stay alive until the next run.  Thread/process pool
    workers do not need it — their slots die with the pool.
    """
    if getattr(_WORKER_TLS, "slot", None) is not None:
        _WORKER_TLS.slot = None


def _resolve_graph(ref) -> Graph:
    slot = _worker_slot()
    key = ref.cache_key
    if slot["key"] != key:
        slot["key"] = key
        slot["graph"] = ref.resolve()
        slot["lcas"] = {}
    return slot["graph"]  # type: ignore[return-value]


def _lca_for(graph: Graph, spec: LCASpec) -> Tuple[SpannerLCA, SnapshotCursor]:
    """The worker's LCA for a spec, plus its incremental-export cursor."""
    lcas: Dict[tuple, Tuple[SpannerLCA, SnapshotCursor]] = _worker_slot()["lcas"]  # type: ignore[assignment]
    key = (
        spec.algorithm,
        spec.seed,
        spec.kernel,
        tuple(sorted(spec.kwargs.items())),
    )
    entry = lcas.get(key)
    if entry is None:
        lca = create(spec.algorithm, graph, seed=spec.seed, **spec.kwargs)
        if spec.kernel is not None:
            lca.set_kernel(spec.kernel)
        entry = (lca, SnapshotCursor())
        lcas[key] = entry
    return entry


def execute_chunk(plan: ChunkPlan, tracer=None) -> ChunkResult:
    """The execute step: answer one chunk and report portable state.

    Runs the streaming cached engine (`query_batch`) against a worker-local
    LCA rebuilt from the plan's spec.  Edges were validated by the
    coordinator, so membership checks are skipped.  The cache snapshot is
    *incremental* per worker LCA: each chunk ships only the memo entries and
    hit/miss counts added since the worker's previous chunk, so the
    coordinator's fold sees every entry and every statistic exactly once.

    ``tracer`` emits one ``exec.chunk`` span per chunk.  Only the *serial*
    backend passes one through (chunks then run on the coordinator's own
    thread, so span order stays deterministic); pool backends trace at the
    coordinator's fold instead (see :mod:`repro.exec.parallel`).
    """
    graph = _resolve_graph(plan.graph)
    lca, cursor = _lca_for(graph, plan.spec)
    before = lca.probe_counter.snapshot()
    if tracer is not None and tracer.enabled:
        with tracer.span(
            "exec.chunk", "exec", chunk=plan.chunk_id, edges=len(plan.edges)
        ) as span:
            batch = lca.query_batch(plan.edges, validate=False)
            span.args["probes"] = (lca.probe_counter.snapshot() - before).total
    else:
        batch = lca.query_batch(plan.edges, validate=False)
    oracle = lca.ensure_cached_oracle()
    return ChunkResult(
        chunk_id=plan.chunk_id,
        answers=batch.answers,
        probe_totals=batch.probe_totals,
        probes=lca.probe_counter.snapshot() - before,
        cache=oracle.snapshot_state(since=cursor),
    )


def execute_chunk_with_retries(
    plan: ChunkPlan, policy: RetryPolicy = DEFAULT_RETRY_POLICY
) -> ChunkResult:
    """:func:`execute_chunk` with transient-failure retries.

    Chunk execution is pure with respect to coordinator state — answers and
    probe snapshots only leave the worker in the returned
    :class:`ChunkResult`, and the incremental cache cursor advances only on
    a completed export — so rerunning a chunk after a
    :class:`~repro.exec.backends.TransientTaskError` (a worker hiccup, an
    injected fault) is safe: the retried result is bit-identical to a
    first-attempt success.  Exhausted retries propagate the transient error
    to the coordinator, which surfaces it like any other worker failure.
    """
    return call_with_retries(execute_chunk, (plan,), policy=policy)
