"""Coordinator side of parallel materialization: plan, scatter, fold back.

:func:`materialize_parallel` is the engine behind
``SpannerLCA.materialize(executor=...)``:

1. **Plan** — snapshot the LCA's rebuild spec, collect and validate the edge
   list, split it into balanced contiguous chunks.
2. **Scatter** — hand every chunk to the chosen backend.  For the process
   backend the graph is exported to shared memory first (one copy, attached
   by every worker); serial/thread workers share the graph object directly.
3. **Fold back** — reassemble answers in chunk order (deterministic: chunk
   *i* covers a fixed slice), append per-query probe totals, re-charge the
   per-kind probe deltas on the coordinator's counter, and merge each
   worker's portable memo snapshot into the coordinator's cached oracle so
   later queries hit warm state.

The fold preserves the repo's central equivalence: spanner edges, per-query
probe totals and per-kind probe counts are bit-identical to the serial
engine for every backend and any worker count, because each query charges
its cold-cache probe schedule wherever it runs.
"""

from __future__ import annotations

import functools
from typing import Iterable, List, Optional, Tuple

from ..core.errors import NotAnEdgeError
from ..core.ids import canonical_edge
from ..core.lca import MaterializedSpanner, SpannerLCA
from ..core.probes import ADJACENCY, DEGREE, NEIGHBOR
from .backends import RetryPolicy, check_backend, get_executor, resolve_workers
from .plan import (
    InlineGraphRef,
    MappedGraphRef,
    SharedGraphRef,
    build_chunk_plans,
    clear_worker_slot,
    execute_chunk,
    execute_chunk_with_retries,
    next_run_token,
)

Edge = Tuple[int, int]


def materialize_parallel(
    lca: SpannerLCA,
    edges: Optional[Iterable[Edge]] = None,
    executor: str = "process",
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    tracer=None,
) -> MaterializedSpanner:
    """Materialize an LCA across an executor backend (see module docstring).

    ``retry`` opts the scatter step into transient-failure retries: each
    chunk runs through :func:`~repro.exec.plan.execute_chunk_with_retries`
    under the given policy, so a worker raising
    :class:`~repro.exec.backends.TransientTaskError` costs a resubmission
    instead of the whole materialization.  ``None`` (the default) keeps the
    historical fail-fast behavior.

    ``tracer`` (a :class:`repro.obs.tracer.SpanTracer`) records the run:
    serial chunks get in-place ``exec.chunk`` spans (they run on this very
    thread), pool-backed chunks get coordinator-side ``exec.fold`` instants
    during the deterministic fold — pool threads never touch the tracer, so
    span order is identical for every backend and worker count.
    """
    check_backend(executor)
    worker_count = resolve_workers(workers, executor)
    graph = lca.graph
    if edges is None:
        edge_list: List[Edge] = list(graph.edges())
    else:
        edge_list = [(int(u), int(v)) for (u, v) in edges]
        for (u, v) in edge_list:
            if not graph.has_edge(u, v):
                raise NotAnEdgeError(u, v)

    result = MaterializedSpanner(
        algorithm=lca.name, stretch_bound=lca.stretch_bound(), edges=set()
    )
    if not edge_list:
        return result

    spec = lca.executor_spec()
    shared_export = None
    try:
        if executor == "process":
            mapped = getattr(graph, "mapped_handle", None)
            if mapped is not None:
                # The graph already lives in an on-disk snapshot every
                # worker can map read-only; skip the shared-memory copy.
                graph_ref = MappedGraphRef(mapped)
            else:
                # One copy into shared memory; every worker maps it read-only.
                shared_export = graph.to_backend("csr").to_shared()
                graph_ref = SharedGraphRef(shared_export.handle)
        else:
            graph_ref = InlineGraphRef(graph, token=next_run_token())
        plans = build_chunk_plans(graph_ref, spec, edge_list, worker_count)
        backend = get_executor(executor, worker_count)
        if retry is None:
            step = execute_chunk
        else:
            step = functools.partial(execute_chunk_with_retries, policy=retry)
        tracing = tracer is not None and tracer.enabled
        if tracing and executor == "serial" and retry is None:
            # Serial chunks run on the coordinator thread: trace them live.
            step = functools.partial(execute_chunk, tracer=tracer)
        chunks = backend.map_ordered(step, plans)
    finally:
        # Failure-path hygiene: a worker raising mid-run must not leak the
        # shared-memory segment (close + unlink always run), and a failing
        # close must not leak the serial worker slot either — hence the
        # nested finally.  tests/test_shared_csr.py injects a failing chunk
        # and asserts the segment is gone.
        try:
            if shared_export is not None:
                shared_export.close()
        finally:
            if executor == "serial":
                # Serial chunks ran on this very thread; drop the worker
                # slot so the rebuilt LCA (a full copy of the memo state) is
                # not kept alive past the run.  Pool-backed workers die with
                # their pool.
                clear_worker_slot()

    # ---- fold back, in chunk order (== original edge order) --------------
    counter = lca.probe_counter
    oracle = lca.ensure_cached_oracle()
    totals = result.probe_stats.query_totals
    own_totals = lca.probe_stats.query_totals
    keep = result.edges
    fold_trace = tracing and (executor != "serial" or retry is not None)
    for plan, chunk in zip(plans, chunks):
        if fold_trace:
            tracer.instant(
                "exec.fold",
                "exec",
                chunk=chunk.chunk_id,
                edges=len(plan.edges),
                probes=chunk.probes.total,
            )
        for (u, v), answer, total in zip(
            plan.edges, chunk.answers, chunk.probe_totals
        ):
            totals.append(total)
            own_totals.append(total)
            if answer:
                keep.add(canonical_edge(u, v))
        delta = chunk.probes
        if delta.degree:
            counter.record(DEGREE, delta.degree)
        if delta.neighbor:
            counter.record(NEIGHBOR, delta.neighbor)
        if delta.adjacency:
            counter.record(ADJACENCY, delta.adjacency)
        oracle.merge_state(chunk.cache)
    return result
