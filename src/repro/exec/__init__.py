"""Parallel execution plane: pluggable executor backends for query batches.

The LCA model makes every ``(u, v) ∈ spanner?`` answer a pure function of
``(graph, seed, query)`` — the textbook embarrassingly-parallel workload.
This package turns that freedom into an execution plane the rest of the
library routes through:

* :mod:`repro.exec.backends` — the ``serial`` / ``thread`` / ``process``
  :class:`ExecutorBackend` trio plus :class:`PinnedWorkers` (key-affine
  futures for the sharded service);
* :mod:`repro.exec.plan` — picklable :class:`ChunkPlan`s (graph handle +
  LCA spec + edge slice) and the worker-side :func:`execute_chunk` step;
* :mod:`repro.exec.parallel` — :func:`materialize_parallel`, the
  plan/scatter/fold-back coordinator behind
  ``SpannerLCA.materialize(executor=...)``.

Process workers never unpickle the graph: they attach to a shared-memory CSR
export (:meth:`repro.graphs.CSRGraph.to_shared`).  Answers, per-query probe
totals and per-kind probe counts are bit-identical across backends and
worker counts — the cold-schedule accounting contract makes probe charges
independent of where (and next to which cache) a query runs.
"""

from .backends import (
    DEFAULT_RETRY_POLICY,
    EXECUTOR_BACKENDS,
    PINNED_BACKENDS,
    ExecutorBackend,
    PinnedWorkers,
    ProcessBackend,
    RetryPolicy,
    SerialBackend,
    ThreadBackend,
    TransientTaskError,
    call_with_retries,
    check_backend,
    get_executor,
    resolve_workers,
)
from .plan import (
    CHUNKS_PER_WORKER,
    ChunkPlan,
    ChunkResult,
    InlineGraphRef,
    MappedGraphRef,
    SharedGraphRef,
    build_chunk_plans,
    execute_chunk,
    execute_chunk_with_retries,
)
from .parallel import materialize_parallel

__all__ = [
    "EXECUTOR_BACKENDS",
    "PINNED_BACKENDS",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "PinnedWorkers",
    "TransientTaskError",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "call_with_retries",
    "check_backend",
    "get_executor",
    "resolve_workers",
    "ChunkPlan",
    "ChunkResult",
    "CHUNKS_PER_WORKER",
    "InlineGraphRef",
    "MappedGraphRef",
    "SharedGraphRef",
    "build_chunk_plans",
    "execute_chunk",
    "execute_chunk_with_retries",
    "materialize_parallel",
]
