"""The lower-bound instance distributions D⁺ and D⁻ (Section 6).

A d-regular instance is described by a perfect matching between the cells of
an n×d *matching table*: matching cell (u, i) with cell (v, j) means "v is
the i-th neighbor of u and u is the j-th neighbor of v".  Two families of
instances are defined around a designated edge (x, a, y, b):

* **D⁺** — a uniformly random d-regular instance conditioned on containing
  the designated edge; removing the edge (w.h.p.) keeps x and y connected.
* **D⁻** — the vertices are split into two random halves containing x and y
  respectively; apart from the designated edge, all matchings stay within a
  half, so removing the edge disconnects x from y.

Theorem 1.3: any LCA that makes o(min{√n, n/d}) probes cannot tell the two
families apart, hence must keep the designated edge (and, by symmetry,
Ω(m) edges overall).  The experiment module replays this argument
empirically: a probe-limited distinguisher's advantage collapses once its
budget drops below min{√n, n/d}.

The generator produces *simple* d-regular graphs by resampling conflicting
pairs, mirroring the paper's remark that the few parallel edges/self-loops can
be fixed without affecting the argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.errors import ParameterError
from ..graphs.graph import Graph

Edge = Tuple[int, int]
Cell = Tuple[int, int]


@dataclass(frozen=True)
class DesignatedEdge:
    """The designated edge (x, a, y, b): y is the a-th neighbor of x and
    x is the b-th neighbor of y (0-based indices)."""

    x: int
    a: int
    y: int
    b: int


@dataclass
class LowerBoundInstance:
    """A generated instance together with its provenance."""

    graph: Graph
    designated: DesignatedEdge
    family: str  # "plus" or "minus"
    #: For D⁻: the side (0 or 1) of each vertex; empty for D⁺.
    sides: Dict[int, int]


def _pair_cells_randomly(
    cells: List[Cell], rng: random.Random, pinned: Optional[Tuple[Cell, Cell]] = None
) -> List[Tuple[Cell, Cell]]:
    """A random perfect matching of the cells (optionally with one pinned pair)."""
    remaining = list(cells)
    pairs: List[Tuple[Cell, Cell]] = []
    if pinned is not None:
        first, second = pinned
        remaining.remove(first)
        remaining.remove(second)
        pairs.append(pinned)
    rng.shuffle(remaining)
    for i in range(0, len(remaining), 2):
        pairs.append((remaining[i], remaining[i + 1]))
    return pairs


def _pairs_to_adjacency(
    n: int, d: int, pairs: List[Tuple[Cell, Cell]]
) -> Optional[Dict[int, List[int]]]:
    """Turn matched cells into an adjacency structure; None if not simple."""
    adjacency: Dict[int, List[Optional[int]]] = {v: [None] * d for v in range(n)}
    seen: Set[Edge] = set()
    for (u, i), (v, j) in pairs:
        if u == v:
            return None  # self loop
        key = (min(u, v), max(u, v))
        if key in seen:
            return None  # parallel edge
        seen.add(key)
        adjacency[u][i] = v
        adjacency[v][j] = u
    return {v: [w for w in slots if w is not None] for v, slots in adjacency.items()}


def sample_plus_instance(
    n: int, d: int, designated: DesignatedEdge, seed: int, max_attempts: int = 400
) -> LowerBoundInstance:
    """Sample an instance from D⁺ (uniform, conditioned on the designated edge)."""
    _validate(n, d, designated)
    rng = random.Random(seed)
    cells = [(v, i) for v in range(n) for i in range(d)]
    pinned = ((designated.x, designated.a), (designated.y, designated.b))
    for _ in range(max_attempts):
        pairs = _pair_cells_randomly(cells, rng, pinned=pinned)
        adjacency = _pairs_to_adjacency(n, d, pairs)
        if adjacency is not None:
            graph = Graph(adjacency, validate=False)
            return LowerBoundInstance(graph, designated, "plus", {})
    raise ParameterError(
        "failed to sample a simple d-regular instance; increase n or lower d"
    )


def sample_minus_instance(
    n: int, d: int, designated: DesignatedEdge, seed: int, max_attempts: int = 400
) -> LowerBoundInstance:
    """Sample an instance from D⁻ (two halves joined only by the designated edge)."""
    _validate(n, d, designated)
    if n % 2 != 0:
        raise ParameterError("n must be even for the two-halves construction")
    if ((n // 2) * d - 1) % 2 != 0:
        raise ParameterError(
            "each half must have an even number of free cells; "
            "use n ≡ 2 (mod 4) together with odd d (as in the paper)"
        )
    rng = random.Random(seed)
    for _ in range(max_attempts):
        others = [v for v in range(n) if v not in (designated.x, designated.y)]
        rng.shuffle(others)
        half = n // 2 - 1
        side_of: Dict[int, int] = {designated.x: 0, designated.y: 1}
        for index, v in enumerate(others):
            side_of[v] = 0 if index < half else 1
        cells_side = {
            0: [(v, i) for v in range(n) if side_of[v] == 0 for i in range(d)],
            1: [(v, i) for v in range(n) if side_of[v] == 1 for i in range(d)],
        }
        # Remove the designated cells from their sides; they pair with each other.
        cells_side[0].remove((designated.x, designated.a))
        cells_side[1].remove((designated.y, designated.b))
        pairs = [((designated.x, designated.a), (designated.y, designated.b))]
        feasible = True
        for side in (0, 1):
            if len(cells_side[side]) % 2 != 0:
                feasible = False
                break
            pairs.extend(_pair_cells_randomly(cells_side[side], rng))
        if not feasible:
            continue
        adjacency = _pairs_to_adjacency(n, d, pairs)
        if adjacency is not None:
            graph = Graph(adjacency, validate=False)
            return LowerBoundInstance(graph, designated, "minus", side_of)
    raise ParameterError(
        "failed to sample a simple two-halves instance; increase n or lower d"
    )


def default_designated_edge(d: int) -> DesignatedEdge:
    """A convenient canonical designated edge: (x=0, a=0, y=1, b=0)."""
    if d < 1:
        raise ParameterError("d must be at least 1")
    return DesignatedEdge(x=0, a=0, y=1, b=0)


def _validate(n: int, d: int, designated: DesignatedEdge) -> None:
    if n < 4:
        raise ParameterError("n must be at least 4")
    if d < 1 or d >= n:
        raise ParameterError("d must satisfy 1 <= d < n")
    if (n * d) % 2 != 0:
        raise ParameterError("n * d must be even")
    if designated.x == designated.y:
        raise ParameterError("the designated edge cannot be a self loop")
    for index in (designated.a, designated.b):
        if not 0 <= index < d:
            raise ParameterError("designated neighbor indices must lie in [0, d)")
