"""Empirical counterpart of the Theorem 1.3 lower bound.

The theorem says: with o(min{√n, n/d}) probes no LCA can distinguish whether
the queried designated edge comes from a D⁺ instance (removing it keeps its
endpoints connected) or a D⁻ instance (removing it disconnects them), so any
o(m)-edge spanner LCA errs on a constant fraction of instances.

The experiment below instantiates the natural probe-limited distinguisher —
run a breadth-first exploration around both endpoints, avoiding the
designated edge, and answer "minus" iff the two exploration balls stay
disjoint within the probe budget — and measures its advantage as a function
of the budget.  The advantage is near zero for budgets well below
min{√n, n/d} and climbs towards one once the budget passes it, reproducing
the shape of the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.errors import ProbeBudgetExceededError
from ..core.oracle import AdjacencyListOracle
from ..core.probes import ProbeCounter
from .instances import (
    DesignatedEdge,
    LowerBoundInstance,
    default_designated_edge,
    sample_minus_instance,
    sample_plus_instance,
)

Distinguisher = Callable[[AdjacencyListOracle, DesignatedEdge], str]


def bfs_distinguisher(oracle: AdjacencyListOracle, designated: DesignatedEdge) -> str:
    """Grow balls around both endpoints (skipping the designated edge).

    Returns ``"minus"`` when the probe budget is exhausted before the balls
    meet (consistent with the two-component family) and ``"plus"`` when a
    path between the endpoints is found.
    """
    x, y = designated.x, designated.y
    visited = {x: "x", y: "y"}
    frontier: List[int] = [x, y]
    try:
        while frontier:
            next_frontier: List[int] = []
            for vertex in frontier:
                for neighbor in oracle.all_neighbors(vertex):
                    if {vertex, neighbor} == {x, y}:
                        continue  # never use the designated edge itself
                    if neighbor in visited:
                        if visited[neighbor] != visited[vertex]:
                            return "plus"
                        continue
                    visited[neighbor] = visited[vertex]
                    next_frontier.append(neighbor)
            frontier = next_frontier
    except ProbeBudgetExceededError:
        return "minus"
    return "minus"


@dataclass
class DistinguishingResult:
    """Outcome of running a distinguisher over sampled instances."""

    probe_budget: int
    trials: int
    correct: int
    num_vertices: int
    degree: int

    @property
    def success_rate(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    @property
    def advantage(self) -> float:
        """Success beyond random guessing, scaled to [0, 1]."""
        return max(0.0, 2.0 * self.success_rate - 1.0)

    @property
    def theory_threshold(self) -> float:
        """The Ω(min{√n, n/d}) probe threshold of Theorem 1.3."""
        return min(self.num_vertices ** 0.5, self.num_vertices / self.degree)


def run_distinguishing_experiment(
    num_vertices: int,
    degree: int,
    probe_budget: int,
    trials: int,
    seed: int = 0,
    distinguisher: Optional[Distinguisher] = None,
    designated: Optional[DesignatedEdge] = None,
) -> DistinguishingResult:
    """Measure a probe-limited distinguisher's success rate over D⁺/D⁻.

    Each trial samples a fresh instance, alternating between the two
    families, and lets the distinguisher probe it with the given budget.
    """
    distinguisher = distinguisher or bfs_distinguisher
    designated = designated or default_designated_edge(degree)
    correct = 0
    for trial in range(trials):
        family = "plus" if trial % 2 == 0 else "minus"
        instance = _sample(num_vertices, degree, designated, seed + trial, family)
        counter = ProbeCounter(budget=probe_budget)
        oracle = AdjacencyListOracle(instance.graph, counter)
        try:
            answer = distinguisher(oracle, designated)
        except ProbeBudgetExceededError:
            answer = "minus"
        if answer == family:
            correct += 1
    return DistinguishingResult(
        probe_budget=probe_budget,
        trials=trials,
        correct=correct,
        num_vertices=num_vertices,
        degree=degree,
    )


def advantage_curve(
    num_vertices: int,
    degree: int,
    probe_budgets: List[int],
    trials: int,
    seed: int = 0,
) -> List[DistinguishingResult]:
    """The distinguishing advantage as a function of the probe budget."""
    return [
        run_distinguishing_experiment(
            num_vertices, degree, budget, trials, seed=seed + 10_000 * index
        )
        for index, budget in enumerate(probe_budgets)
    ]


def _sample(
    num_vertices: int,
    degree: int,
    designated: DesignatedEdge,
    seed: int,
    family: str,
) -> LowerBoundInstance:
    if family == "plus":
        return sample_plus_instance(num_vertices, degree, designated, seed)
    return sample_minus_instance(num_vertices, degree, designated, seed)
