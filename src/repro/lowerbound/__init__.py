"""Lower-bound constructions and experiments (Section 6, Theorem 1.3)."""

from .experiment import (
    DistinguishingResult,
    advantage_curve,
    bfs_distinguisher,
    run_distinguishing_experiment,
)
from .instances import (
    DesignatedEdge,
    LowerBoundInstance,
    default_designated_edge,
    sample_minus_instance,
    sample_plus_instance,
)

__all__ = [
    "DesignatedEdge",
    "LowerBoundInstance",
    "default_designated_edge",
    "sample_plus_instance",
    "sample_minus_instance",
    "bfs_distinguisher",
    "run_distinguishing_experiment",
    "advantage_curve",
    "DistinguishingResult",
]
