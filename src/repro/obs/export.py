"""Trace export: JSONL span streams and Chrome ``trace_event`` JSON.

Two interchangeable on-disk shapes for one span stream:

* **JSONL** (:func:`trace_jsonl` / :func:`write_trace_jsonl`) — one
  sorted-key JSON object per span per line, the byte-comparable archival
  format the determinism tests pin.  :func:`read_trace_jsonl` is the
  validating reader (one-line ``path:lineno`` errors, same contract as the
  request-trace reader in :mod:`repro.service.trace`).
* **Chrome trace_event** (:func:`chrome_trace` / :func:`write_chrome_trace`)
  — the ``{"traceEvents": [...]}`` document Perfetto and
  ``chrome://tracing`` load directly: complete (``"X"``) events for spans,
  instant (``"i"``) events for zero-duration markers, tracer ticks mapped
  to microseconds.

:func:`summarize_spans` reduces a span stream to per-``(cat, name)`` rows
(count, total/max ticks) — the "trace summary" table in rendered reports
and the default output of the ``repro trace`` CLI subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .tracer import Span

PathLike = Union[str, Path]

#: Version stamped into every exported trace record.
TRACE_SCHEMA = 1

#: Keys every JSONL trace record must carry.
_REQUIRED_KEYS = ("schema", "id", "parent", "name", "cat", "begin", "end", "args")


def _as_spans(source) -> List[Span]:
    """Normalize a tracer or an iterable of spans into a span list."""
    finished = getattr(source, "finished", None)
    if callable(finished):
        return list(finished())
    return list(source)


def span_records(source) -> List[Dict[str, object]]:
    """Plain-dict records for a span stream, sorted by (begin tick, id).

    ``source`` may be a tracer, an iterable of :class:`Span` objects, or an
    iterable of already-exported record dicts (what :func:`read_trace_jsonl`
    returns) — the CLI summarizes and converts loaded traces through the
    same path the live tracer uses.
    """
    records = []
    for item in _as_spans(source):
        if isinstance(item, dict):
            records.append(
                {
                    "schema": TRACE_SCHEMA,
                    "id": int(item["id"]),
                    "parent": item["parent"],
                    "name": str(item["name"]),
                    "cat": str(item["cat"]),
                    "begin": int(item["begin"]),
                    "end": int(item["end"]),
                    "args": dict(item["args"]),
                }
            )
        else:
            records.append(
                {
                    "schema": TRACE_SCHEMA,
                    "id": item.span_id,
                    "parent": item.parent_id,
                    "name": item.name,
                    "cat": item.cat,
                    "begin": item.begin,
                    "end": item.end if item.end is not None else item.begin,
                    "args": dict(item.args),
                }
            )
    records.sort(key=lambda record: (record["begin"], record["id"]))
    return records


def trace_jsonl(source) -> str:
    """The JSONL document for a span stream (sorted keys, one span/line)."""
    lines = [json.dumps(record, sort_keys=True) for record in span_records(source)]
    return "".join(line + "\n" for line in lines)


def write_trace_jsonl(path: PathLike, source) -> int:
    """Write a JSONL trace; returns the number of span records written."""
    text = trace_jsonl(source)
    Path(path).write_text(text, encoding="utf-8")
    return text.count("\n")


def read_trace_jsonl(path: PathLike) -> List[Dict[str, object]]:
    """Load and validate a JSONL trace written by :func:`write_trace_jsonl`.

    Raises :class:`ValueError` with a one-line ``path:lineno`` message on
    malformed records — the ``repro trace`` subcommand converts it into its
    nonzero one-line exit.
    """
    records: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read trace file {path}: {exc.strerror or exc}") from None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            raise ValueError(f"{path}:{lineno}: malformed trace record") from None
        if not isinstance(record, dict) or any(
            key not in record for key in _REQUIRED_KEYS
        ):
            raise ValueError(f"{path}:{lineno}: malformed trace record")
        if record["schema"] != TRACE_SCHEMA:
            raise ValueError(
                f"{path}:{lineno}: trace schema {record['schema']!r}; "
                f"this build reads {TRACE_SCHEMA}"
            )
        records.append(record)
    return records


def chrome_trace(source) -> Dict[str, object]:
    """The Chrome ``trace_event`` document for a span stream.

    Spans become complete (``"X"``) events, zero-duration markers instant
    (``"i"``) events; one tracer tick is mapped to one microsecond so
    Perfetto's timeline stays readable.
    """
    events: List[Dict[str, object]] = []
    for record in span_records(source):
        begin = int(record["begin"])
        end = int(record["end"])
        args = dict(record["args"])
        if record["parent"] is not None:
            args["parent"] = record["parent"]
        common = {
            "pid": 1,
            "tid": 1,
            "name": record["name"],
            "cat": record["cat"],
            "ts": begin,
            "args": args,
        }
        if end > begin:
            events.append({**common, "ph": "X", "dur": end - begin})
        else:
            events.append({**common, "ph": "i", "s": "t"})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"trace_schema": TRACE_SCHEMA, "clock": "tracer-ticks"},
    }


def write_chrome_trace(path: PathLike, source) -> int:
    """Write a Chrome trace JSON; returns the number of events written."""
    document = chrome_trace(source)
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(document["traceEvents"])


def summarize_spans(source) -> List[Dict[str, object]]:
    """Per-``(cat, name)`` summary rows: count, total ticks, max ticks."""
    totals: Dict[tuple, Dict[str, int]] = {}
    for record in span_records(source):
        key = (str(record["cat"]), str(record["name"]))
        row = totals.setdefault(key, {"count": 0, "ticks": 0, "max_ticks": 0})
        duration = int(record["end"]) - int(record["begin"])
        row["count"] += 1
        row["ticks"] += duration
        row["max_ticks"] = max(row["max_ticks"], duration)
    rows = []
    for (cat, name) in sorted(totals):
        row = totals[(cat, name)]
        rows.append({"cat": cat, "name": name, **row})
    return rows
