"""Deterministic structured tracer with bounded-memory span collection.

Design constraints, in priority order:

1. **Determinism.**  Span timestamps come from the tracer's *own* monotone
   tick counter (one tick per begin/end/instant event), never from the
   engine's injected clock — every reading of that clock advances virtual
   time, so a tracer that consulted it would change the very latency numbers
   it is observing.  The engine's cycle counter travels as a span *argument*
   instead.  Two runs of the same deterministic schedule therefore produce
   byte-identical span streams on any host.
2. **Zero cost when disabled.**  The default tracer is :data:`NULL_TRACER`
   (``enabled = False``); instrumentation sites guard with
   ``if tracer.enabled:`` (mirroring the engine's ``faults_on`` idiom), so
   the disabled path costs one attribute check per site.
3. **Bounded memory.**  Finished spans land in a ring buffer
   (``deque(maxlen=capacity)``); once full, the oldest spans are dropped and
   counted in :attr:`SpanTracer.dropped` so exports can say so honestly.

Spans form a hierarchy: a context-manager :meth:`SpanTracer.span` nests via
an internal stack (coordinator-thread use), while :meth:`SpanTracer.begin`
/ :meth:`SpanTracer.end` accept an explicit parent for work that overlaps
(pipelined in-flight batches complete out of submission order).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Default ring-buffer capacity (finished spans kept).
DEFAULT_CAPACITY = 65536


@dataclass
class Span:
    """One traced operation: a named interval in tracer ticks.

    ``begin == end`` marks an instant event.  ``args`` carries the
    deterministic attributes of the operation (engine cycle, shard id,
    batch size, probe counts, ...).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    cat: str
    begin: int
    end: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        return (self.end if self.end is not None else self.begin) - self.begin


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumentation sites should guard on :attr:`enabled` and skip the call
    entirely; the methods exist so un-guarded call sites still work.
    """

    enabled = False
    dropped = 0

    @contextmanager
    def span(self, name: str, cat: str = "run", **args) -> Iterator[None]:
        yield None

    def begin(self, name: str, cat: str = "run", parent=None, **args) -> None:
        return None

    def end(self, span, **args) -> None:
        return None

    def instant(self, name: str, cat: str = "event", **args) -> None:
        return None

    def finished(self) -> List[Span]:
        return []


#: The default tracer every instrumented signature falls back to.
NULL_TRACER = NullTracer()


class SpanTracer:
    """Collecting tracer: hierarchical spans in a bounded ring buffer.

    Intended for single-threaded (coordinator-side) use — the service
    engine, the serial executor path and the report runner all emit spans
    from one thread, which is what keeps span order deterministic.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = int(capacity)
        self._finished: deque = deque(maxlen=self.capacity)
        self._stack: List[Span] = []
        self._ticks = 0
        self._next_id = 0
        #: Spans evicted from the full ring buffer (oldest first).
        self.dropped = 0

    # -- clock / ids -------------------------------------------------------
    def _tick(self) -> int:
        self._ticks += 1
        return self._ticks

    def _new_span(self, name, cat, parent_id, args) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=str(name),
            cat=str(cat),
            begin=self._tick(),
            args=dict(args),
        )
        self._next_id += 1
        return span

    def _current_parent(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def _collect(self, span: Span) -> None:
        if len(self._finished) == self._finished.maxlen:
            self.dropped += 1
        self._finished.append(span)

    # -- span API ----------------------------------------------------------
    @contextmanager
    def span(self, name: str, cat: str = "run", **args) -> Iterator[Span]:
        """Open a nested span for the duration of the ``with`` block."""
        span = self._new_span(name, cat, self._current_parent(), args)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = self._tick()
            self._collect(span)

    def begin(self, name: str, cat: str = "run", parent: Optional[Span] = None, **args) -> Span:
        """Open a span that may outlive LIFO nesting (explicit parent).

        ``parent=None`` attaches to the innermost open context-manager span,
        so pipelined work still hangs off the run's root span.
        """
        parent_id = parent.span_id if parent is not None else self._current_parent()
        return self._new_span(name, cat, parent_id, args)

    def end(self, span: Span, **args) -> None:
        """Close a span opened with :meth:`begin`."""
        if args:
            span.args.update(args)
        span.end = self._tick()
        self._collect(span)

    def instant(self, name: str, cat: str = "event", **args) -> None:
        """Record a zero-duration event at the current stack position."""
        span = self._new_span(name, cat, self._current_parent(), args)
        span.end = span.begin
        self._collect(span)

    def finished(self) -> List[Span]:
        """Finished spans in completion order (deterministic)."""
        return list(self._finished)
