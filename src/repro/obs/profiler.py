"""Probe-attribution profiler: where probes go, and why.

The probe counter (:mod:`repro.core.probes`) answers *how many* probes a
query spent; this profiler answers *where* — which exploration kernel — and
*why* — which cache outcome.  Two orthogonal breakdowns:

* **Phases** — per-kernel probe deltas, attributed by snapshotting the
  probe counter at phase boundaries (:meth:`ProbeProfiler.phase`).  The
  kernels mark their hot sections: ``bfs`` (the D^k_L exploration of
  :mod:`repro.spannerk.bfs`), ``voronoi`` (the cell machinery of
  :mod:`repro.spannerk.voronoi`) and ``neighbor-scan`` (the new-cluster
  scan shared by the 3-/5-spanner components).  Probes spent outside any
  marked phase show up as the ``other`` residual at report time.
* **Cache outcomes** — every memoized query-answer call is classified as
  ``cold`` (computed, cold schedule charged), ``memo-hit`` (replayed from
  the memo) or ``epoch-invalidated`` (a stale entry was discarded by the
  mutation plane and the answer recomputed), with the probes each outcome
  charged.

Attribution is pure observation: the profiler never touches the counter or
the cache, so attaching one cannot change answers or probe totals (pinned
by the engine-equivalence test).  Hot paths reach it via
``getattr(oracle, "profiler", None)`` so un-instrumented oracles cost one
attribute lookup; :meth:`merge` folds per-replica profilers into one
deterministic view in shard order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..core.probes import PROBE_KINDS, ProbeSnapshot

#: The kernel phases the constructions mark (plus the report-time residual).
PROBE_PHASES = ("bfs", "voronoi", "neighbor-scan")

#: How a memoized query-answer call was satisfied.
COLD = "cold"
MEMO_HIT = "memo-hit"
EPOCH_INVALIDATED = "epoch-invalidated"
CACHE_OUTCOMES = (COLD, MEMO_HIT, EPOCH_INVALIDATED)


class ProbeProfiler:
    """Accumulates per-phase and per-cache-outcome probe attribution.

    One profiler per LCA (an LCA is never queried concurrently, see
    :mod:`repro.exec.plan`); per-shard/replica profilers are merged into a
    pool-level view with :meth:`merge` in shard order at report time.
    """

    enabled = True

    def __init__(self) -> None:
        #: phase -> per-kind probe counts (only phases actually seen).
        self.phase_kinds: Dict[str, Dict[str, int]] = {}
        #: phase -> number of marked sections entered.
        self.phase_calls: Dict[str, int] = {}
        #: outcome -> memoized-call count.
        self.outcome_calls: Dict[str, int] = {o: 0 for o in CACHE_OUTCOMES}
        #: outcome -> probes charged under that outcome (cold schedules for
        #: cold/invalidated recomputes, replayed charges for memo hits).
        self.outcome_probes: Dict[str, int] = {o: 0 for o in CACHE_OUTCOMES}
        #: Monotone count of stale memo entries discarded by the epoch check
        #: (also read mid-call to classify the miss that follows one).
        self.invalidations = 0
        # Open frames: [label, counter, before-snapshot, children-delta, calls].
        self._frames: List[list] = []

    # -- phase attribution -------------------------------------------------
    def add_phase(self, label: str, delta: ProbeSnapshot, calls: int = 1) -> None:
        """Fold one phase's probe delta into the per-kind breakdown."""
        kinds = self.phase_kinds.setdefault(label, {k: 0 for k in PROBE_KINDS})
        kinds["neighbor"] += delta.neighbor
        kinds["degree"] += delta.degree
        kinds["adjacency"] += delta.adjacency
        self.phase_calls[label] = self.phase_calls.get(label, 0) + calls

    def begin_phase(self, label: str, counter, calls: int = 1) -> list:
        """Open a phase frame; pair with :meth:`end_phase` on every exit path.

        ``calls`` sets how many scalar phase entries the frame stands for —
        a batched kernel that evaluates N scalar scans inside one window
        passes ``calls=N`` so the per-phase call counts stay identical to
        the scalar engine's.
        """
        frame = [label, counter, counter.snapshot(), ProbeSnapshot(), calls]
        self._frames.append(frame)
        return frame

    def end_phase(self, frame: list) -> None:
        """Close a frame: attribute its *exclusive* probe delta.

        Nested frames (a Voronoi cluster computation running BFS
        explorations) subtract their full window from the enclosing frame,
        so phase totals are flame-style self times and sum without overlap.
        """
        label, counter, before, children, calls = frame
        self._frames.pop()
        delta = counter.snapshot() - before
        self.add_phase(label, delta - children, calls=calls)
        if self._frames:
            parent = self._frames[-1]
            parent[3] = parent[3] + delta

    @contextmanager
    def phase(self, label: str, counter) -> Iterator[None]:
        """Attribute probes recorded inside the block to ``label`` (exclusive)."""
        frame = self.begin_phase(label, counter)
        try:
            yield
        finally:
            self.end_phase(frame)

    # -- cache-outcome attribution ----------------------------------------
    def note_invalidation(self) -> None:
        """A stale memo entry was discarded (epoch check failed)."""
        self.invalidations += 1

    def record_hit(self, probes: int) -> None:
        """A memoized call replayed its stored cold schedule."""
        self.outcome_calls[MEMO_HIT] += 1
        self.outcome_probes[MEMO_HIT] += int(probes)

    def record_miss(self, probes: int, invalidated: bool = False) -> None:
        """A memoized call computed fresh (``invalidated``: after a discard)."""
        outcome = EPOCH_INVALIDATED if invalidated else COLD
        self.outcome_calls[outcome] += 1
        self.outcome_probes[outcome] += int(probes)

    # -- aggregation -------------------------------------------------------
    def merge(self, other: "ProbeProfiler") -> None:
        """Fold another profiler's attribution into this one."""
        for label, kinds in other.phase_kinds.items():
            snapshot = ProbeSnapshot(
                neighbor=kinds["neighbor"],
                degree=kinds["degree"],
                adjacency=kinds["adjacency"],
            )
            self.add_phase(label, snapshot, calls=other.phase_calls.get(label, 0))
        for outcome in CACHE_OUTCOMES:
            self.outcome_calls[outcome] += other.outcome_calls[outcome]
            self.outcome_probes[outcome] += other.outcome_probes[outcome]
        self.invalidations += other.invalidations

    def phase_rows(self, total_probes: Optional[int] = None) -> List[Dict[str, object]]:
        """Flame-style rows: one per phase, widest phase first.

        ``total_probes`` (e.g. the run's counter total) adds an ``other``
        residual row for probes spent outside any marked phase and a share
        column per row.
        """
        rows = []
        attributed = 0
        for label in sorted(
            self.phase_kinds, key=lambda l: (-sum(self.phase_kinds[l].values()), l)
        ):
            kinds = self.phase_kinds[label]
            phase_total = sum(kinds.values())
            attributed += phase_total
            rows.append(
                {
                    "phase": label,
                    "calls": self.phase_calls.get(label, 0),
                    "probes": phase_total,
                    **{kind: kinds[kind] for kind in PROBE_KINDS},
                }
            )
        if total_probes is not None:
            rows.append(
                {
                    "phase": "other",
                    "calls": None,
                    "probes": max(0, int(total_probes) - attributed),
                    "neighbor": None,
                    "degree": None,
                    "adjacency": None,
                }
            )
            for row in rows:
                share = row["probes"] / total_probes if total_probes else 0.0
                row["share"] = round(share, 3)
        return rows

    def outcome_rows(self) -> List[Dict[str, object]]:
        """One row per cache outcome: calls and probes charged."""
        return [
            {
                "outcome": outcome,
                "calls": self.outcome_calls[outcome],
                "probes": self.outcome_probes[outcome],
            }
            for outcome in CACHE_OUTCOMES
        ]

    def as_dict(self) -> Dict[str, object]:
        """The deterministic JSON payload (reports/metrics consume this)."""
        return {
            "phases": {
                label: {
                    "calls": self.phase_calls.get(label, 0),
                    **{kind: self.phase_kinds[label][kind] for kind in PROBE_KINDS},
                    "total": sum(self.phase_kinds[label].values()),
                }
                for label in sorted(self.phase_kinds)
            },
            "outcomes": {
                outcome: {
                    "calls": self.outcome_calls[outcome],
                    "probes": self.outcome_probes[outcome],
                }
                for outcome in CACHE_OUTCOMES
            },
            "invalidations": self.invalidations,
        }
