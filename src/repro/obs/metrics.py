"""Unified metrics registry: one naming scheme, one versioned snapshot.

Every plane used to report its numbers in its own shape — the service in a
:class:`~repro.service.metrics.ServiceReport`, probe accounting in
:class:`~repro.core.probes.ProbeStatistics`, the fault plane in
:class:`~repro.faults.FaultStats`.  The registry gives them one home: flat
dotted names (``plane.subsystem.metric``, e.g. ``service.requests.served``,
``cache.lookups.hits``, ``probes.kind.neighbor``, ``executor.inflight.max``,
``faults.crashes``) over three instrument types:

* **counter** — a monotone event count (``service.requests.served``);
* **gauge** — a last-written value (``service.throughput.rps``);
* **histogram** — an observed distribution, snapshotted as
  count/mean/max/p50/p95 via the repo's single nearest-rank percentile.

:meth:`MetricsRegistry.snapshot` reduces everything to one versioned,
sorted, JSON-serializable artifact; :func:`collect_run_metrics` populates a
registry from a finished service run (report + optional profiler), which is
how the runner and ``repro serve-bench --metrics-out`` produce the one
snapshot that covers service, cache, probe, executor and fault metrics.
The naming scheme is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..core.probes import PROBE_KINDS, nearest_rank_percentile

#: Version stamped into every snapshot document.
METRICS_SCHEMA = 1

#: Instrument types a registry entry may have.
METRIC_TYPES = ("counter", "gauge", "histogram")

#: ``plane.subsystem.metric``: lowercase dotted segments, two or more.
#: Public so the MET001 lint rule validates literals against the *same*
#: compiled grammar the registry enforces at runtime (they cannot drift).
METRIC_NAME_PATTERN = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
_NAME_PATTERN = METRIC_NAME_PATTERN


class MetricsRegistry:
    """Counters, gauges and histograms under one dotted namespace."""

    def __init__(self) -> None:
        self._types: Dict[str, str] = {}
        self._values: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    def _register(self, name: str, metric_type: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"metric name {name!r} must be dotted lowercase segments "
                "(plane.subsystem.metric)"
            )
        known = self._types.get(name)
        if known is None:
            self._types[name] = metric_type
        elif known != metric_type:
            raise ValueError(
                f"metric {name!r} is already registered as a {known}, "
                f"not a {metric_type}"
            )
        return name

    # -- instruments -------------------------------------------------------
    def counter(self, name: str, amount: int = 1) -> None:
        """Increment a monotone counter (created at zero on first use)."""
        self._register(name, "counter")
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount {amount})")
        self._values[name] = self._values.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value."""
        self._register(name, "gauge")
        self._values[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram."""
        self._register(name, "histogram")
        self._histograms.setdefault(name, []).append(float(value))

    def value(self, name: str):
        """The current value of a counter/gauge (histograms: sample list)."""
        metric_type = self._types.get(name)
        if metric_type is None:
            raise KeyError(f"no metric named {name!r}")
        if metric_type == "histogram":
            return list(self._histograms[name])
        return self._values[name]

    def names(self) -> List[str]:
        return sorted(self._types)

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One versioned, sorted, JSON-serializable artifact."""
        metrics: Dict[str, Dict[str, object]] = {}
        for name in sorted(self._types):
            metric_type = self._types[name]
            if metric_type == "histogram":
                ordered = sorted(self._histograms[name])
                count = len(ordered)
                metrics[name] = {
                    "type": "histogram",
                    "count": count,
                    "mean": round(sum(ordered) / count, 6) if count else 0.0,
                    "max": ordered[-1] if ordered else 0,
                    "p50": nearest_rank_percentile(ordered, 50),
                    "p95": nearest_rank_percentile(ordered, 95),
                }
            else:
                value = self._values[name]
                if isinstance(value, float):
                    value = round(value, 6)
                metrics[name] = {"type": metric_type, "value": value}
        return {"schema": METRICS_SCHEMA, "metrics": metrics}


def collect_run_metrics(report, profiler=None) -> MetricsRegistry:
    """Populate a registry from a finished service run.

    ``report`` is a :class:`~repro.service.metrics.ServiceReport`;
    ``profiler`` an optional :class:`~repro.obs.profiler.ProbeProfiler`
    merged over the run's replicas.  Population happens once, after the
    run — the hot path pays nothing for metrics collection, and the
    snapshot is a pure function of the (deterministic) report.
    """
    registry = MetricsRegistry()

    # service.* — request ledger, latency, throughput.
    registry.counter("service.requests.offered", report.offered)
    registry.counter("service.requests.admitted", report.admitted)
    registry.counter("service.requests.rejected", report.rejected)
    registry.counter("service.requests.served", report.served)
    registry.counter("service.requests.in_spanner", report.in_spanner)
    registry.counter("service.requests.mutations", report.mutations)
    registry.counter("service.batches.completed", report.batches)
    registry.gauge("service.batches.mean_size", round(report.mean_batch_size, 4))
    registry.gauge("service.throughput.rps", round(report.throughput_rps, 4))
    for key, value in report.latency.as_dict().items():
        if key == "count":
            registry.counter("service.latency.count", value)
        else:
            registry.gauge(f"service.latency.{key}", value)

    # cache.* / probes.* — summed over the pool's shard telemetry.
    hits = sum(shard.cache_hits for shard in report.shard_reports)
    misses = sum(shard.cache_misses for shard in report.shard_reports)
    registry.counter("cache.lookups.hits", hits)
    registry.counter("cache.lookups.misses", misses)
    lookups = hits + misses
    registry.gauge("cache.hit_rate", round(hits / lookups, 6) if lookups else 0.0)
    per_kind = {kind: 0 for kind in PROBE_KINDS}
    for shard in report.shard_reports:
        per_kind["neighbor"] += shard.probes.neighbor
        per_kind["degree"] += shard.probes.degree
        per_kind["adjacency"] += shard.probes.adjacency
    for kind in PROBE_KINDS:
        registry.counter(f"probes.kind.{kind}", per_kind[kind])
    registry.counter("probes.total", report.probe_stats.total)
    registry.gauge("probes.per_query.mean", round(report.probe_stats.mean, 4))
    registry.gauge("probes.per_query.max", report.probe_stats.max)

    # executor.* — scheduler shape of the run.
    registry.gauge("executor.shards", report.num_shards)
    registry.gauge("executor.replication", report.replication)
    registry.gauge("executor.inflight.max", report.max_inflight)
    registry.gauge("executor.queue.max_depth", report.max_queue_depth_seen)
    registry.counter("executor.retries", report.faults.get("retries", 0))
    registry.counter("executor.timeouts", report.faults.get("timeouts", 0))

    # faults.* — the injector's ledger (zeros when no plan ran).
    for key, value in sorted(report.faults.items()):
        registry.counter(f"faults.{key}", value)
    registry.gauge("faults.availability", round(report.availability, 6))

    # cache.invalidations / attribution, when a profiler rode along.
    if profiler is not None:
        registry.counter("cache.invalidations.epoch", profiler.invalidations)
        for outcome, calls in sorted(profiler.outcome_calls.items()):
            slug = outcome.replace("-", "_")
            registry.counter(f"cache.outcome.{slug}.calls", calls)
            registry.counter(
                f"cache.outcome.{slug}.probes", profiler.outcome_probes[outcome]
            )
        for label, kinds in sorted(profiler.phase_kinds.items()):
            slug = label.replace("-", "_")
            registry.counter(f"probes.phase.{slug}", sum(kinds.values()))
    return registry
