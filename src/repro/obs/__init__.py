"""Unified observability plane: deterministic tracing, metrics, attribution.

Telemetry in this repository used to be fragmented — latency percentiles in
:mod:`repro.service.metrics`, probe counts in :mod:`repro.core.probes`,
availability in :class:`repro.faults.FaultStats` — with nothing connecting a
slow percentile to the probe storm or failover that caused it.  This package
is the connective tissue, in three parts:

* :mod:`repro.obs.tracer` — a **deterministic structured tracer**:
  hierarchical spans stamped with an internal monotone tick counter (never
  the engine's injected clock, so enabling tracing cannot perturb measured
  latencies), collected in a bounded ring buffer.  The default
  :data:`NULL_TRACER` is disabled; every instrumentation site guards on
  ``tracer.enabled`` so the off path costs one attribute check.
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` export (load
  the latter in Perfetto / ``chrome://tracing``), plus readers and a span
  summarizer.  Same run ⇒ byte-identical exports on any host.
* :mod:`repro.obs.metrics` — a **unified metrics registry**: counters,
  gauges and histograms under one dotted naming scheme
  (``service.* / cache.* / probes.* / executor.* / faults.*``), snapshotable
  as a single versioned JSON artifact.
* :mod:`repro.obs.profiler` — a **probe-attribution profiler**: per-phase
  probe breakdowns (``bfs`` / ``voronoi`` / ``neighbor-scan``) and per-call
  cache outcomes (``cold`` / ``memo-hit`` / ``epoch-invalidated``), rendered
  as flame-style tables in the Markdown reports.

See ``docs/observability.md`` for the span model, the metric naming scheme
and the Perfetto how-to.
"""

from .export import (
    TRACE_SCHEMA,
    chrome_trace,
    read_trace_jsonl,
    span_records,
    summarize_spans,
    trace_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)
from .metrics import METRICS_SCHEMA, MetricsRegistry, collect_run_metrics
from .profiler import CACHE_OUTCOMES, PROBE_PHASES, ProbeProfiler
from .tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
    "TRACE_SCHEMA",
    "span_records",
    "trace_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "summarize_spans",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "collect_run_metrics",
    "ProbeProfiler",
    "PROBE_PHASES",
    "CACHE_OUTCOMES",
]
