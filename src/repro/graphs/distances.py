"""Shortest-path utilities (used for verification, never by the LCAs).

The LCAs themselves only ever touch the graph through the probe oracle; the
functions here operate on full :class:`~repro.graphs.graph.Graph` objects and
back the verification harness (stretch measurement, connectivity checks) and
the global baseline algorithms.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .graph import Graph, Vertex


def bfs_distances(graph: Graph, source: Vertex, cutoff: Optional[int] = None) -> Dict[Vertex, int]:
    """Distances from ``source`` to all reachable vertices (optionally ≤ cutoff)."""
    distances: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = distances[u]
        if cutoff is not None and du >= cutoff:
            continue
        for w in graph.neighbors(u):
            if w not in distances:
                distances[w] = du + 1
                queue.append(w)
    return distances


def distance(graph: Graph, u: Vertex, v: Vertex) -> Optional[int]:
    """Shortest-path distance between ``u`` and ``v`` (``None`` if disconnected)."""
    if u == v:
        return 0
    seen = {u: 0}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for w in graph.neighbors(x):
            if w not in seen:
                seen[w] = seen[x] + 1
                if w == v:
                    return seen[w]
                queue.append(w)
    return None


def k_neighborhood(graph: Graph, source: Vertex, radius: int) -> Set[Vertex]:
    """The set Γ^k(v): all vertices within distance ``radius`` of ``source``."""
    return set(bfs_distances(graph, source, cutoff=radius).keys())


def ball_subgraph(graph: Graph, sources: Iterable[Vertex], radius: int) -> Graph:
    """Induced subgraph on the union of balls of the given radius."""
    vertices: Set[Vertex] = set()
    for s in sources:
        vertices |= k_neighborhood(graph, s, radius)
    return graph.induced_subgraph(vertices)


def eccentricity(graph: Graph, source: Vertex) -> int:
    """Maximum finite distance from ``source`` (0 for an isolated vertex)."""
    distances = bfs_distances(graph, source)
    return max(distances.values()) if distances else 0


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    vertices = graph.vertices()
    if not vertices:
        return True
    return len(bfs_distances(graph, vertices[0])) == len(vertices)


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """All connected components as vertex sets."""
    remaining = set(graph.vertices())
    components: List[Set[Vertex]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_distances(graph, source).keys())
        components.append(component)
        remaining -= component
    return components


def same_component(graph: Graph, u: Vertex, v: Vertex) -> bool:
    """Whether ``u`` and ``v`` lie in the same connected component."""
    return distance(graph, u, v) is not None


def pairwise_distances(graph: Graph, pairs: Iterable[Tuple[Vertex, Vertex]]) -> List[Optional[int]]:
    """Distances for an iterable of vertex pairs (grouped by source for reuse)."""
    by_source: Dict[Vertex, List[Tuple[int, Vertex]]] = {}
    ordered = list(pairs)
    for index, (u, v) in enumerate(ordered):
        by_source.setdefault(u, []).append((index, v))
    results: List[Optional[int]] = [None] * len(ordered)
    for source, wanted in by_source.items():
        distances = bfs_distances(graph, source)
        for index, target in wanted:
            results[index] = distances.get(target)
    return results


def shortest_path(graph: Graph, u: Vertex, v: Vertex) -> Optional[List[Vertex]]:
    """One shortest path from ``u`` to ``v`` (``None`` if disconnected)."""
    if u == v:
        return [u]
    parents: Dict[Vertex, Vertex] = {u: u}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for w in graph.neighbors(x):
            if w not in parents:
                parents[w] = x
                if w == v:
                    path = [v]
                    while path[-1] != u:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(w)
    return None
