"""Reading and writing graphs as plain edge lists.

Edge lists are the lowest-common-denominator interchange format used by the
examples (so a user can point the quickstart at their own graph file) and by
the benchmark harness when persisting generated workloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..core.errors import GraphError
from .generators import DEFAULT_CHUNK_EDGES, EdgeChunkStream
from .graph import Graph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike, header: bool = True) -> None:
    """Write a graph as a whitespace-separated edge list.

    The optional header line ``# n m`` records the number of vertices and
    edges; isolated vertices are recorded on ``v <vertex>`` lines so the
    round trip is lossless.
    """
    path = Path(path)
    lines: List[str] = []
    if header:
        lines.append(f"# {graph.num_vertices} {graph.num_edges}")
    touched = set()
    for (u, v) in graph.edges():
        lines.append(f"{u} {v}")
        touched.add(u)
        touched.add(v)
    for vertex in graph.vertices():
        if vertex not in touched:
            lines.append(f"v {vertex}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any edge list)."""
    path = Path(path)
    edges: List[Tuple[int, int]] = []
    isolated: List[int] = []
    for raw_line in path.read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "v":
            if len(parts) != 2:
                raise GraphError(f"malformed isolated-vertex line: {raw_line!r}")
            isolated.append(int(parts[1]))
            continue
        if len(parts) < 2:
            raise GraphError(f"malformed edge line: {raw_line!r}")
        edges.append((int(parts[0]), int(parts[1])))
    vertices = set(isolated)
    for (u, v) in edges:
        vertices.add(u)
        vertices.add(v)
    return Graph.from_edges(edges, vertices=sorted(vertices))


def read_edge_list_stream(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> EdgeChunkStream:
    """Stream an edge-list file as flat int64 chunks (the million-node path).

    Unlike :func:`read_edge_list`, no Python edge list is ever built: the
    returned :class:`~repro.graphs.generators.EdgeChunkStream` re-opens the
    file on every iteration and yields ``array('q')`` chunks straight into
    the incremental CSR builder (:func:`repro.scale.stream.build_csr_from_chunks`).

    The streaming contract is stricter than the in-memory reader's:

    * the ``# n m`` header written by :func:`write_edge_list` is required
      (the builder must size its arrays before the first pass),
    * vertex ids must lie in ``0..n-1`` (enforced by the builder), and
    * edges must be duplicate-free, as ``write_edge_list`` output is.

    ``v <vertex>`` isolated-vertex lines are validated and skipped — with
    contiguous ids every vertex exists whether or not an edge touches it.
    """
    path = Path(path)
    if not path.exists():
        raise GraphError(f"edge-list file {str(path)!r} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    parts = first.split()
    if len(parts) != 3 or parts[0] != "#":
        raise GraphError(
            f"streaming reads require the '# n m' header line "
            f"(write_edge_list emits one); got {first.strip()!r}"
        )
    try:
        num_vertices = int(parts[1])
    except ValueError:
        raise GraphError(f"malformed '# n m' header line: {first.strip()!r}") from None

    def factory() -> Iterator[Tuple[int, int]]:
        with path.open("r", encoding="utf-8") as lines:
            for raw_line in lines:
                line = raw_line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                try:
                    if fields[0] == "v":
                        if len(fields) != 2:
                            raise ValueError
                        int(fields[1])
                        continue
                    if len(fields) < 2:
                        raise ValueError
                    u, v = int(fields[0]), int(fields[1])
                except ValueError:
                    raise GraphError(f"malformed edge line: {raw_line!r}") from None
                yield (u, v)

    return EdgeChunkStream(num_vertices, factory, chunk_edges)


def write_adjacency_json(graph: Graph, path: PathLike) -> None:
    """Write the graph with its exact neighbor orderings as JSON.

    Unlike the edge list, this format preserves the adjacency-list *order*,
    which matters when reproducing a specific LCA run exactly.
    """
    payload = {str(v): list(graph.neighbors(v)) for v in graph.vertices()}
    Path(path).write_text(json.dumps(payload, indent=0), encoding="utf-8")


def read_adjacency_json(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_adjacency_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    adjacency = {int(v): [int(w) for w in neighbors] for v, neighbors in payload.items()}
    return Graph(adjacency)


def edges_to_lines(edges: Iterable[Tuple[int, int]]) -> List[str]:
    """Format an iterable of edges as text lines (helper for reports)."""
    return [f"{u} {v}" for (u, v) in edges]
