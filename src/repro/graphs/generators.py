"""Graph generators used by the tests, examples and benchmarks.

The paper targets general graphs but its three constructions are interesting
in different degree regimes:

* the 3- and 5-spanner LCAs shine on *dense* graphs (Δ = n^{Ω(1)}),
* the O(k²)-spanner LCA targets *bounded-degree* graphs (Δ = O(n^{1/12-ε})),
* the lower bound lives on *d-regular* graphs.

The generators below produce deterministic (seeded) instances covering those
regimes.  All of them return :class:`~repro.graphs.graph.Graph` objects with
neighbor lists in a pseudo-random but fixed order, matching the model's
"arbitrary but fixed ordering" assumption.
"""

from __future__ import annotations

import math
import random
from array import array
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import GraphError, ParameterError
from .graph import Graph

Edge = Tuple[int, int]

#: Default edges per chunk emitted by the streaming generators.  Large
#: enough that per-chunk overhead vanishes, small enough that a chunk is
#: cache-resident (~1 MiB of int64 pairs).
DEFAULT_CHUNK_EDGES = 65536


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed if seed is not None else 0)


def _build(edges: Iterable[Edge], vertices: Iterable[int], seed: Optional[int]) -> Graph:
    return Graph.from_edges(edges, vertices=vertices, shuffle_seed=seed)


# --------------------------------------------------------------------------- #
# Basic families
# --------------------------------------------------------------------------- #
def complete_graph(n: int, seed: Optional[int] = None) -> Graph:
    """The complete graph ``K_n`` (densest possible input)."""
    if n < 1:
        raise ParameterError("n must be positive")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return _build(edges, range(n), seed)


def cycle_graph(n: int, seed: Optional[int] = None) -> Graph:
    """The n-cycle ``C_n`` (sparsest 2-regular connected graph)."""
    if n < 3:
        raise ParameterError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _build(edges, range(n), seed)


def path_graph(n: int, seed: Optional[int] = None) -> Graph:
    """The path ``P_n``."""
    if n < 2:
        raise ParameterError("a path needs at least 2 vertices")
    edges = [(i, i + 1) for i in range(n - 1)]
    return _build(edges, range(n), seed)


def star_graph(n: int, seed: Optional[int] = None) -> Graph:
    """A star with one hub of degree ``n - 1`` (extreme degree skew)."""
    if n < 2:
        raise ParameterError("a star needs at least 2 vertices")
    edges = [(0, i) for i in range(1, n)]
    return _build(edges, range(n), seed)


def grid_graph(rows: int, cols: int, seed: Optional[int] = None) -> Graph:
    """A ``rows × cols`` grid (bounded degree 4, large diameter)."""
    if rows < 1 or cols < 1:
        raise ParameterError("grid dimensions must be positive")
    def node(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < rows:
                edges.append((node(r, c), node(r + 1, c)))
    return _build(edges, range(rows * cols), seed)


def _gnp_edge_iter(n: int, p: float, rng: random.Random) -> Iterator[Edge]:
    """Skip-sampling ``G(n, p)`` edge enumeration.

    Shared by the in-memory :func:`gnp_graph` and the chunked
    :func:`gnp_edge_chunks`, so both consume the rng in exactly the same
    schedule — the foundation of the streamed-vs-in-memory bit-identity
    pinned in ``tests/test_scale_stream.py``.  Yields each edge exactly
    once, ``(w, v)`` with ``w < v``.
    """
    if p <= 0.0:
        return
    if p >= 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                yield (u, v)
        return
    log_q = math.log(1.0 - p)
    if log_q == 0.0:
        # p below one float ulp: 1 - p rounds to 1.0 and the expected edge
        # count n^2 * p underflows with it — an empty graph, not a crash.
        return
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.floor(math.log(1.0 - r) / log_q))
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            yield (w, v)


def gnp_graph(n: int, p: float, seed: Optional[int] = None) -> Graph:
    """Erdős–Rényi ``G(n, p)``.

    Uses the skip-sampling technique so generation is O(m) rather than O(n²)
    for small ``p``.
    """
    if n < 1:
        raise ParameterError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ParameterError("p must be in [0, 1]")
    rng = _rng(seed)
    edges: List[Edge] = list(_gnp_edge_iter(n, p, rng))
    return _build(edges, range(n), seed)


def gnm_graph(n: int, m: int, seed: Optional[int] = None) -> Graph:
    """A uniform random graph with exactly ``m`` edges."""
    if n < 1:
        raise ParameterError("n must be positive")
    max_edges = n * (n - 1) // 2
    if not 0 <= m <= max_edges:
        raise ParameterError(f"m must be between 0 and {max_edges}")
    rng = _rng(seed)
    chosen = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return _build(sorted(chosen), range(n), seed)


def random_regular_graph(n: int, d: int, seed: Optional[int] = None) -> Graph:
    """A random (simple) d-regular graph via the configuration model.

    Pairings that produce self loops or parallel edges are retried; for the
    moderate ``n·d`` values used in tests and benchmarks this converges
    quickly.  ``n·d`` must be even.
    """
    if n < 1 or d < 0:
        raise ParameterError("n must be positive and d non-negative")
    if d >= n:
        raise ParameterError("d must be smaller than n for a simple graph")
    if (n * d) % 2 != 0:
        raise ParameterError("n * d must be even")
    rng = _rng(seed)
    for _attempt in range(200):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            return _build(sorted(edges), range(n), seed)
    # Fall back to a networkx-free deterministic construction: circulant graph.
    return circulant_graph(n, list(range(1, d // 2 + 1)), seed=seed)


def circulant_graph(n: int, offsets: Sequence[int], seed: Optional[int] = None) -> Graph:
    """Circulant graph: vertex ``i`` adjacent to ``i ± o`` for each offset."""
    if n < 3:
        raise ParameterError("n must be at least 3")
    edges = set()
    for i in range(n):
        for o in offsets:
            j = (i + o) % n
            if i != j:
                edges.add((min(i, j), max(i, j)))
    return _build(sorted(edges), range(n), seed)


# --------------------------------------------------------------------------- #
# Skewed / structured families targeting the paper's regimes
# --------------------------------------------------------------------------- #
def _power_law_weights(n: int, exponent: float, min_degree: int) -> List[float]:
    """The capped Chung–Lu weight sequence shared by both power-law paths.

    Non-increasing in the vertex index — a property the streaming
    skip-sampler (:func:`_chung_lu_edge_iter`) relies on.
    """
    weights = [
        max(float(min_degree), float(min_degree) * ((i + 1) ** (-1.0 / (exponent - 1.0))) * n ** (1.0 / (exponent - 1.0)) / 4.0)
        for i in range(n)
    ]
    cap = math.sqrt(n) * max(4.0, min_degree)
    return [min(w, cap) for w in weights]


def power_law_graph(
    n: int, exponent: float = 2.5, min_degree: int = 2, seed: Optional[int] = None
) -> Graph:
    """A graph with a power-law degree sequence (Chung–Lu style).

    Produces the degree skew typical of the "massive graphs" motivating the
    paper: a few very-high-degree hubs and many low-degree vertices, so a
    single instance exercises the E_low / E_high / E_super classification.
    """
    if n < 2:
        raise ParameterError("n must be at least 2")
    if exponent <= 1.0:
        raise ParameterError("exponent must exceed 1")
    rng = _rng(seed)
    weights = _power_law_weights(n, exponent, min_degree)
    total = sum(weights)
    edges = set()
    for u in range(n):
        # Expected degree ~ weights[u]; sample that many candidate partners.
        trials = max(1, int(round(weights[u])))
        for _ in range(trials):
            r = rng.random() * total
            acc = 0.0
            v = n - 1
            for candidate in range(n):
                acc += weights[candidate]
                if acc >= r:
                    v = candidate
                    break
            if u != v:
                edges.add((min(u, v), max(u, v)))
    return _build(sorted(edges), range(n), seed)


def planted_hub_graph(
    n: int,
    num_hubs: int,
    hub_degree: int,
    base_degree: int = 3,
    seed: Optional[int] = None,
) -> Graph:
    """Bounded-degree backbone plus a few planted high-degree hubs.

    Gives direct control over the E_low / E_high / E_super split used by the
    3- and 5-spanner edge-classification benchmarks (Table 2).
    """
    if num_hubs >= n:
        raise ParameterError("num_hubs must be smaller than n")
    rng = _rng(seed)
    edges = set()
    # Sparse backbone: a cycle plus a few random chords per vertex.
    for i in range(n):
        edges.add((min(i, (i + 1) % n), max(i, (i + 1) % n)))
    for i in range(n):
        for _ in range(max(0, base_degree - 2)):
            j = rng.randrange(n)
            if i != j:
                edges.add((min(i, j), max(i, j)))
    hubs = list(range(num_hubs))
    non_hubs = list(range(num_hubs, n))
    for hub in hubs:
        targets = rng.sample(non_hubs, min(hub_degree, len(non_hubs)))
        for t in targets:
            edges.add((min(hub, t), max(hub, t)))
    return _build(sorted(edges), range(n), seed)


def dense_cluster_graph(
    n: int, num_clusters: int, inter_probability: float = 0.02, seed: Optional[int] = None
) -> Graph:
    """Disjoint dense clusters joined by a sparse random bipartite layer.

    The Voronoi-cell machinery of the O(k²) construction becomes non-trivial
    on such inputs: every cluster is dense, the inter-cluster edges are the
    interesting ones.
    """
    if num_clusters < 1 or num_clusters > n:
        raise ParameterError("num_clusters must be in [1, n]")
    rng = _rng(seed)
    edges = set()
    cluster_of = {v: v % num_clusters for v in range(n)}
    members: Dict[int, List[int]] = {c: [] for c in range(num_clusters)}
    for v, c in cluster_of.items():
        members[c].append(v)
    for c, vertices in members.items():
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                edges.add((u, v))
    for u in range(n):
        for v in range(u + 1, n):
            if cluster_of[u] != cluster_of[v] and rng.random() < inter_probability:
                edges.add((u, v))
    return _build(sorted(edges), range(n), seed)


def bounded_degree_expanderish(n: int, d: int = 6, seed: Optional[int] = None) -> Graph:
    """Union of ``d/2`` random perfect matchings — a bounded-degree expander-ish graph.

    The natural habitat of the O(k²)-spanner LCA (small Δ, small diameter).
    ``n`` must be even.
    """
    if n % 2 != 0:
        raise ParameterError("n must be even")
    if d % 2 != 0:
        raise ParameterError("d must be even")
    rng = _rng(seed)
    edges = set()
    for _ in range(d // 2):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(0, n, 2):
            u, v = perm[i], perm[i + 1]
            if u != v:
                edges.add((min(u, v), max(u, v)))
    # Also add a Hamiltonian cycle so the graph is connected with certainty.
    for i in range(n):
        u, v = i, (i + 1) % n
        edges.add((min(u, v), max(u, v)))
    return _build(sorted(edges), range(n), seed)


def disjoint_union(graphs: Sequence[Graph], seed: Optional[int] = None) -> Graph:
    """Disjoint union of graphs with relabelled, non-overlapping vertex IDs."""
    if not graphs:
        raise GraphError("need at least one graph")
    edges: List[Edge] = []
    vertices: List[int] = []
    offset = 0
    for g in graphs:
        mapping = {v: v + offset for v in g.vertices()}
        vertices.extend(mapping.values())
        for (u, v) in g.edges():
            edges.append((mapping[u], mapping[v]))
        offset += (max(g.vertices()) + 1) if g.num_vertices else 0
    return _build(edges, vertices, seed)


def relabel_randomly(graph: Graph, seed: Optional[int] = None, id_space: int = 10**9) -> Graph:
    """Return an isomorphic copy with random (non-contiguous) vertex IDs.

    Exercises the paper's remark that vertex IDs need not be ``0..n-1``.
    """
    rng = _rng(seed)
    new_ids: Dict[int, int] = {}
    used = set()
    for v in graph.vertices():
        while True:
            candidate = rng.randrange(id_space)
            if candidate not in used:
                used.add(candidate)
                new_ids[v] = candidate
                break
    edges = [(new_ids[u], new_ids[v]) for (u, v) in graph.edges()]
    return _build(edges, new_ids.values(), seed)


# --------------------------------------------------------------------------- #
# Streaming (chunk-emitting) families
# --------------------------------------------------------------------------- #
class EdgeChunkStream:
    """Re-iterable stream of edge chunks — the million-node generation path.

    Each chunk is a flat ``array('q')`` of ``[u0, v0, u1, v1, ...]`` pairs;
    at no point does a Python edge list (or per-edge tuple objects) for the
    whole graph exist.  The stream is **re-iterable**: every ``iter()``
    re-runs the seeded factory from scratch and yields the identical chunk
    sequence, which is what lets the incremental CSR builder
    (:func:`repro.scale.stream.build_csr_from_chunks`) make its two passes
    (degree count, then fill) without buffering.

    Emitters guarantee each undirected edge appears exactly once with no
    self-loops; the builder validates ids and loops as it consumes.
    """

    def __init__(
        self,
        num_vertices: int,
        factory: Callable[[], Iterator[Edge]],
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
    ) -> None:
        if num_vertices < 0:
            raise ParameterError("num_vertices must be non-negative")
        if chunk_edges < 1:
            raise ParameterError("chunk_edges must be positive")
        self.num_vertices = int(num_vertices)
        self._factory = factory
        self._chunk_edges = int(chunk_edges)

    def __iter__(self) -> Iterator[array]:
        chunk = array("q")
        limit = 2 * self._chunk_edges
        for u, v in self._factory():
            chunk.append(u)
            chunk.append(v)
            if len(chunk) >= limit:
                yield chunk
                chunk = array("q")
        if chunk:
            yield chunk


def gnp_edge_chunks(
    n: int,
    p: float,
    seed: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> EdgeChunkStream:
    """Chunk-emitting ``G(n, p)``.

    Consumes the seeded rng in exactly the same schedule as
    :func:`gnp_graph` (they share :func:`_gnp_edge_iter`), so streaming
    this into the incremental CSR builder with ``shuffle_seed=seed``
    reproduces ``gnp_graph(n, p, seed).to_backend("csr")`` bit for bit.
    """
    if n < 1:
        raise ParameterError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ParameterError("p must be in [0, 1]")
    return EdgeChunkStream(n, lambda: _gnp_edge_iter(n, p, _rng(seed)), chunk_edges)


def _chung_lu_edge_iter(
    n: int, weights: Sequence[float], rng: random.Random
) -> Iterator[Edge]:
    """Miller–Hagberg skip sampling of the Chung–Lu model.

    O(n + m) for non-increasing weight sequences: within each row the
    connection probability only shrinks, so a geometric skip at the current
    probability followed by an acceptance correction samples every pair
    ``u < v`` with probability ``min(1, w_u * w_v / total)`` — without the
    O(n²) pair scan of the in-memory generator.  Yields each edge once.
    """
    total = math.fsum(weights)
    if total <= 0.0:
        return
    for u in range(n - 1):
        v = u + 1
        p = min(1.0, weights[u] * weights[v] / total)
        while v < n and p > 0.0:
            if p < 1.0:
                log_q = math.log(1.0 - p)
                if log_q == 0.0:
                    break  # p below one float ulp: no edge lands in this row
                r = rng.random()
                v += int(math.floor(math.log(1.0 - r) / log_q))
            if v < n:
                q = min(1.0, weights[u] * weights[v] / total)
                if rng.random() < q / p:
                    yield (u, v)
                p = q
                v += 1


def power_law_edge_chunks(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 2,
    seed: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> EdgeChunkStream:
    """Chunk-emitting power-law family (exact Chung–Lu via skip sampling).

    Same capped weight sequence as :func:`power_law_graph` but a different
    (streaming-friendly, O(n + m)) sampler, so this is a sibling family —
    deterministic per seed and degree-skewed like the in-memory one, not a
    bit-identical replay of it.
    """
    if n < 2:
        raise ParameterError("n must be at least 2")
    if exponent <= 1.0:
        raise ParameterError("exponent must exceed 1")
    weights = _power_law_weights(n, exponent, min_degree)
    return EdgeChunkStream(
        n, lambda: _chung_lu_edge_iter(n, weights, _rng(seed)), chunk_edges
    )


def _clustered_edge_iter(
    n: int, num_clusters: int, p: float, rng: random.Random
) -> Iterator[Edge]:
    """Contiguous-block clustered family: complete clusters + sparse inter edges.

    Clusters are contiguous id blocks of size ``ceil(n / num_clusters)``
    (the streaming sibling of :func:`dense_cluster_graph`'s round-robin
    assignment).  Intra-cluster pairs are complete; inter-cluster pairs are
    skip-sampled at probability ``p`` — candidate positions that land inside
    ``u``'s own block are discarded, so each cross pair is hit independently
    with probability exactly ``p``.  Yields each edge once.
    """
    csize = -(-n // num_clusters) if num_clusters else n
    for start in range(0, n, csize):
        stop = min(start + csize, n)
        for u in range(start, stop):
            for v in range(u + 1, stop):
                yield (u, v)
    if p <= 0.0:
        return
    if p >= 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                if u // csize != v // csize:
                    yield (u, v)
        return
    log_q = math.log(1.0 - p)
    if log_q == 0.0:
        return  # p below one float ulp (see _gnp_edge_iter)
    for u in range(n - 1):
        v = u
        while True:
            r = rng.random()
            v += 1 + int(math.floor(math.log(1.0 - r) / log_q))
            if v >= n:
                break
            if v // csize != u // csize:
                yield (u, v)


def cluster_edge_chunks(
    n: int,
    num_clusters: int,
    inter_probability: float = 0.02,
    seed: Optional[int] = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> EdgeChunkStream:
    """Chunk-emitting clustered family (contiguous dense blocks + sparse links)."""
    if n < 1:
        raise ParameterError("n must be positive")
    if num_clusters < 1 or num_clusters > n:
        raise ParameterError("num_clusters must be in [1, n]")
    if not 0.0 <= inter_probability <= 1.0:
        raise ParameterError("inter_probability must be in [0, 1]")
    return EdgeChunkStream(
        n,
        lambda: _clustered_edge_iter(n, num_clusters, inter_probability, _rng(seed)),
        chunk_edges,
    )


def _stream_family_builder(family: str):
    """Registry adapter routing a ``*-stream`` family through the scale plane.

    The import is deferred into the call so ``repro.graphs`` (foundation
    layer) never imports ``repro.scale`` at module load; the scale plane
    imports graphs, not the other way around.
    """

    def build(n: int, density: float, seed: Optional[int]) -> Graph:
        from ..scale.stream import build_stream_family

        return build_stream_family(family, n, density=density, seed=seed)

    return build


# --------------------------------------------------------------------------- #
# Named families (the scenario axis)
# --------------------------------------------------------------------------- #
#: Size/density-parameterized graph families addressable by name.  The CLI
#: (``--generate``) and the experiment plane (:mod:`repro.reports`) share
#: this registry, so a scenario spec and a command line mean the same graph.
FAMILY_BUILDERS: Dict[str, object] = {
    "gnp": lambda n, density, seed: gnp_graph(n, density, seed=seed),
    "clustered": lambda n, density, seed: dense_cluster_graph(
        n, max(2, n // 10), inter_probability=density, seed=seed
    ),
    "power-law": lambda n, density, seed: power_law_graph(n, seed=seed),
    "bounded": lambda n, density, seed: bounded_degree_expanderish(
        n if n % 2 == 0 else n + 1, d=6, seed=seed
    ),
    "hubs": lambda n, density, seed: planted_hub_graph(
        n, num_hubs=max(2, n // 50), hub_degree=max(10, n // 3), seed=seed
    ),
    "grid": lambda n, density, seed: grid_graph(
        max(2, int(round(n ** 0.5))), max(2, int(round(n ** 0.5))), seed=seed
    ),
    "gnp-stream": _stream_family_builder("gnp-stream"),
    "power-law-stream": _stream_family_builder("power-law-stream"),
    "clustered-stream": _stream_family_builder("clustered-stream"),
}

#: Families built by the chunked streaming path (always CSR-backed; scenario
#: specs reject them with other backends — see ``repro.reports.spec``).
STREAM_FAMILIES = tuple(
    sorted(name for name in FAMILY_BUILDERS if name.endswith("-stream"))
)

#: Sorted family names (argparse choices, spec validation).
GRAPH_FAMILIES = tuple(sorted(FAMILY_BUILDERS))


def build_family(
    family: str, n: int, density: float = 0.1, seed: Optional[int] = None
) -> Graph:
    """Build a named graph family instance (``gnp``, ``clustered``, ...).

    ``density`` is interpreted per family (edge probability for ``gnp``,
    inter-cluster probability for ``clustered``; ignored by the families
    whose density is structural).  Unknown names raise
    :class:`~repro.core.errors.ParameterError` listing the choices.
    """
    key = family.strip().lower()
    if key not in FAMILY_BUILDERS:
        raise ParameterError(
            f"unknown graph family {family!r}; choices: {sorted(FAMILY_BUILDERS)}"
        )
    return FAMILY_BUILDERS[key](n, density, seed)
