"""Static adjacency-list graphs with fixed neighbor orderings.

The LCA model (Section 1.4 of the paper) assumes the input graph is presented
through an adjacency-list oracle in which *each neighbor set has a fixed, but
arbitrary, ordering*.  :class:`Graph` stores exactly this representation: for
every vertex a list of neighbors in a fixed order, together with a lazily
built index structure giving O(1) ``Adjacency`` probes (the probe returns the
position of ``v`` inside ``Γ(u)``).

Two storage backends implement the same interface:

* :class:`Graph` — the original dict-of-lists backend (this module), and
* :class:`~repro.graphs.csr.CSRGraph` — a compressed-sparse-row backend
  storing all neighbor lists in one flat array behind offset pointers.

``Graph.from_edges(..., backend="csr")`` (or the module-level default set via
:func:`set_default_backend` / the ``REPRO_GRAPH_BACKEND`` environment
variable) selects the backend; :meth:`Graph.to_backend` converts between them
while preserving neighbor orderings exactly, so probe-level behavior is
backend independent.

Both backends support live edge mutations (:meth:`Graph.add_edge` /
:meth:`Graph.remove_edge`): added neighbors are appended to the end of both
rows, removals preserve the relative order of the survivors, and every
mutation bumps a per-vertex *epoch* that the derived-state caches
(:mod:`repro.core.cache`) use for lazy invalidation.

Vertices are arbitrary integers; they need not form ``0..n-1``.
"""

from __future__ import annotations

import os
import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import GraphError, UnknownVertexError
from ..core.ids import canonical_edge

Vertex = int
Edge = Tuple[int, int]

#: Known storage backends, by name (values resolved lazily to avoid cycles).
BACKENDS = ("dict", "csr")


def _backend_from_environment() -> str:
    name = os.environ.get("REPRO_GRAPH_BACKEND", "dict")
    if name not in BACKENDS:
        import warnings

        warnings.warn(
            f"REPRO_GRAPH_BACKEND={name!r} is not a known graph backend "
            f"(choices: {BACKENDS}); falling back to 'dict'",
            stacklevel=2,
        )
        return "dict"
    return name


_default_backend = _backend_from_environment()


def set_default_backend(name: str) -> None:
    """Set the process-wide default storage backend ("dict" or "csr")."""
    global _default_backend
    if name not in BACKENDS:
        raise GraphError(f"unknown graph backend {name!r}; choices: {BACKENDS}")
    _default_backend = name


def default_backend() -> str:
    """The current default storage backend name."""
    return _default_backend


def backend_class(name: Optional[str] = None):
    """Resolve a backend name to its graph class."""
    if name is None:
        name = _default_backend
    if name == "dict":
        return Graph
    if name == "csr":
        from .csr import CSRGraph

        return CSRGraph
    raise GraphError(f"unknown graph backend {name!r}; choices: {BACKENDS}")


def undeclared_neighbor_error(
    adjacency: Mapping[Vertex, Sequence[Vertex]], known: Mapping[Vertex, object]
) -> Optional[GraphError]:
    """The error for a neighbor that has no adjacency list of its own.

    Scans ``adjacency`` for the first neighbor outside ``known`` — a mapping
    keyed by normalized (int) vertex ids, giving O(1) membership — and
    returns the error to raise (``None`` when the mapping is closed).  Shared
    by both storage backends so the check and its message have one source of
    truth.
    """
    for v, neighbors in adjacency.items():
        for w in neighbors:
            if int(w) not in known:
                return GraphError(
                    f"vertex {int(w)} appears as a neighbor of {int(v)} but "
                    "has no adjacency list of its own"
                )
    return None


def validate_adjacency(adjacency: Mapping[Vertex, Sequence[Vertex]]) -> None:
    """Check an adjacency mapping for simplicity and symmetry."""
    for v, neighbors in adjacency.items():
        if len(set(neighbors)) != len(neighbors):
            raise GraphError(f"vertex {v} has repeated neighbors")
        if v in neighbors:
            raise GraphError(f"vertex {v} has a self loop")
    for v, neighbors in adjacency.items():
        for w in neighbors:
            if v not in adjacency[w]:
                raise GraphError(
                    f"adjacency is not symmetric: {w} missing neighbor {v}"
                )


class Graph:
    """Simple undirected graph with fixed adjacency-list orderings.

    Parameters
    ----------
    adjacency:
        Mapping from each vertex to the sequence of its neighbors in the
        order exposed by ``Neighbor`` probes.  The mapping must be symmetric
        (``v in adjacency[u]`` iff ``u in adjacency[v]``), contain no
        self-loops and no repeated neighbors.
    validate:
        When ``True`` (default) the adjacency structure is checked for
        symmetry and simplicity.  Large generators that construct symmetric
        structures by design may pass ``False`` to skip the O(m) check.
    """

    __slots__ = (
        "_adj",
        "_index",
        "_views",
        "_num_edges",
        "_graph_epoch",
        "_vertex_epochs",
        "_mutation_log",
    )

    #: Name of the storage backend implemented by this class.
    backend = "dict"

    def __init__(
        self,
        adjacency: Mapping[Vertex, Sequence[Vertex]],
        validate: bool = True,
    ) -> None:
        self._adj: Dict[Vertex, List[Vertex]] = {
            int(v): [int(w) for w in neighbors] for v, neighbors in adjacency.items()
        }
        # Make sure every endpoint appears as a key even if isolated on one side.
        error = undeclared_neighbor_error(self._adj, self._adj)
        if error is not None:
            raise error
        if validate:
            self._validate()
        # The Adjacency-probe index is O(m) dicts; generators and BFS never
        # need it, so it is built lazily on the first adjacency_index call.
        self._index: Optional[Dict[Vertex, Dict[Vertex, int]]] = None
        # Cached immutable neighbor views handed out by neighbors().
        self._views: Dict[Vertex, Tuple[Vertex, ...]] = {}
        self._num_edges = sum(len(neighbors) for neighbors in self._adj.values()) // 2
        self._init_mutation_state()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _adjacency_from_edges(
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Optional[Iterable[Vertex]] = None,
        shuffle_seed: Optional[int] = None,
    ) -> Dict[Vertex, List[Vertex]]:
        adjacency: Dict[Vertex, List[Vertex]] = {}
        if vertices is not None:
            for v in vertices:
                adjacency.setdefault(int(v), [])
        seen = set()
        for (u, v) in edges:
            u, v = int(u), int(v)
            if u == v:
                raise GraphError(f"self loop ({u}, {v}) is not allowed")
            key = canonical_edge(u, v)
            if key in seen:
                continue
            seen.add(key)
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        if shuffle_seed is not None:
            rng = random.Random(shuffle_seed)
            for v in adjacency:
                rng.shuffle(adjacency[v])
        return adjacency

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Optional[Iterable[Vertex]] = None,
        shuffle_seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Neighbor lists are ordered by edge-insertion order, which is
        "arbitrary but fixed" exactly as the model requires.  Passing
        ``shuffle_seed`` randomly permutes every neighbor list (deterministic
        in the seed), which is useful for testing that algorithms do not rely
        on any particular ordering.  ``backend`` selects the storage class
        ("dict" or "csr"); when omitted, a subclass builds itself and the
        base class builds the process-wide default backend.
        """
        adjacency = cls._adjacency_from_edges(edges, vertices, shuffle_seed)
        if backend is not None:
            target = backend_class(backend)
        elif cls is Graph:
            target = backend_class(None)
        else:
            target = cls
        return target(adjacency, validate=False)

    @classmethod
    def from_networkx(cls, nx_graph, shuffle_seed: Optional[int] = None) -> "Graph":
        """Build a :class:`Graph` from a ``networkx`` graph.

        Node labels must be integers (or convertible to integers without
        collision); use ``networkx.convert_node_labels_to_integers`` first if
        necessary.
        """
        edges = ((int(u), int(v)) for u, v in nx_graph.edges())
        vertices = (int(v) for v in nx_graph.nodes())
        return cls.from_edges(edges, vertices=vertices, shuffle_seed=shuffle_seed)

    def to_networkx(self):
        """Return a ``networkx.Graph`` with the same vertices and edges."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.vertices())
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def as_adjacency(self) -> Dict[Vertex, List[Vertex]]:
        """The adjacency mapping with neighbor orderings preserved."""
        return {v: list(self.neighbors(v)) for v in self.vertices()}

    def to_backend(self, name: str) -> "Graph":
        """Convert to another storage backend, preserving neighbor orderings.

        Returns ``self`` when the graph already uses the requested backend;
        probe-visible behavior (orderings, indices, degrees) is identical
        across backends.
        """
        target = backend_class(name)
        if type(self) is target:
            return self
        return target(self.as_adjacency(), validate=False)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> List[Vertex]:
        """List of vertices (in insertion order)."""
        return list(self._adj.keys())

    def has_vertex(self, v: Vertex) -> bool:
        return int(v) in self._adj

    def edges(self) -> Iterator[Edge]:
        """Iterate over undirected edges, each reported once canonically."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if u < v:
                    yield (u, v)

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``."""
        return len(self._neighbors_of(v))

    def neighbors(self, v: Vertex) -> Tuple[Vertex, ...]:
        """The fixed, ordered neighbor list Γ(v) as a cached immutable view.

        The same tuple object is returned on every call (the list is hot in
        BFS and verification paths), so callers must not rely on getting a
        private copy — the view is immutable by construction.
        """
        v = int(v)
        view = self._views.get(v)
        if view is None:
            view = tuple(self._neighbors_of(v))
            self._views[v] = view
        return view

    def neighbor_at(self, v: Vertex, index: int) -> Optional[Vertex]:
        """The ``index``-th neighbor of ``v`` (0-based), or ``None``."""
        neighbors = self._neighbors_of(v)
        if 0 <= index < len(neighbors):
            return neighbors[index]
        return None

    def adjacency_index(self, u: Vertex, v: Vertex) -> Optional[int]:
        """Position of ``v`` inside Γ(u) (0-based), or ``None`` if not adjacent."""
        return self.adjacency_row(u).get(int(v))

    def adjacency_row(self, v: Vertex) -> Mapping[Vertex, int]:
        """The ``{neighbor: position}`` row of ``v`` (lazily built).

        The returned mapping is shared internal state — callers must treat
        it as read-only.  It backs both ``Adjacency`` probes and the cached
        oracle, so the index exists in exactly one place per graph.
        """
        index = self._index
        if index is None:
            index = self._build_index()
        row = index.get(int(v))
        if row is None:
            raise UnknownVertexError(v)
        return row

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self.adjacency_index(u, v) is not None

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def min_degree(self) -> int:
        """Minimum degree (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(neighbors) for neighbors in self._adj.values())

    def average_degree(self) -> float:
        """Average degree 2m / n."""
        n = self.num_vertices
        if not n:
            return 0.0
        return 2.0 * self._num_edges / n

    def edge_list(self) -> List[Edge]:
        """All undirected edges as a list of canonical tuples."""
        return list(self.edges())

    def __contains__(self, v: Vertex) -> bool:
        return self.has_vertex(v)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Mutation plane (dynamic graphs)
    # ------------------------------------------------------------------ #
    def _init_mutation_state(self) -> None:
        self._graph_epoch = 0
        self._vertex_epochs: Dict[Vertex, int] = {}
        # Flat endpoint log: entry ``e - 1`` is the mutation that produced
        # epoch ``e``.  Lets cache validation check "did anything I read
        # change since epoch X?" in O(mutations since X) instead of
        # O(vertices read) — the difference between a per-hit scan of a
        # query's whole dependency set and a handful of set-membership
        # probes (two ints per mutation of memory).
        self._mutation_log: List[Edge] = []

    @property
    def epoch(self) -> int:
        """Global mutation epoch: 0 for a never-mutated graph, +1 per mutation.

        Derived-state caches (see :mod:`repro.core.cache`) tag entries with
        the epoch they were computed at and compare against
        :meth:`vertex_epoch` of the vertices the computation read, so a
        mutation only bumps counters here — stale entries are discarded
        lazily on their next lookup, never eagerly recomputed.
        """
        return self._graph_epoch

    def vertex_epoch(self, v: Vertex) -> int:
        """Epoch of the last mutation that changed the neighbor row of ``v``."""
        return self._vertex_epochs.get(int(v), 0)

    def mutations_since(self, epoch: int) -> List[Edge]:
        """Endpoint pairs of every mutation applied after ``epoch``."""
        return self._mutation_log[epoch:]

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)`` between two existing vertices.

        The new neighbor is appended to the *end* of both rows — the same
        position :meth:`from_edges` would give it, so a mutated graph and a
        from-scratch build on the post-mutation edge sequence expose
        identical neighbor orderings (and therefore identical probe
        schedules).  Self loops, unknown endpoints and duplicate edges are
        rejected.
        """
        u, v = int(u), int(v)
        if u == v:
            raise GraphError(f"self loop ({u}, {v}) is not allowed")
        for x in (u, v):
            if not self.has_vertex(x):
                raise UnknownVertexError(x)
        if self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) is already an edge of this graph")
        self._apply_add(u, v)
        self._num_edges += 1
        self._note_mutation(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``.

        The relative order of the surviving neighbors is preserved on both
        sides.  Removing an edge that does not exist (or touching an unknown
        vertex) raises.
        """
        u, v = int(u), int(v)
        for x in (u, v):
            if not self.has_vertex(x):
                raise UnknownVertexError(x)
        if not self.has_edge(u, v):
            raise GraphError(f"({u}, {v}) is not an edge of this graph")
        self._apply_remove(u, v)
        self._num_edges -= 1
        self._note_mutation(u, v)

    def apply_mutation(self, op: str, u: Vertex, v: Vertex) -> None:
        """Apply one mutation record (``op`` is ``"add"`` or ``"remove"``)."""
        if op == "add":
            self.add_edge(u, v)
        elif op == "remove":
            self.remove_edge(u, v)
        else:
            raise GraphError(
                f"unknown mutation op {op!r}; choices: ('add', 'remove')"
            )

    def compact(self) -> "Graph":
        """Fold pending mutation deltas into primary storage (returns self).

        A no-op for the dict backend, whose adjacency lists mutate in place;
        the CSR backend re-materializes its flat arrays (see
        :meth:`~repro.graphs.csr.CSRGraph.compact`).  Observable state —
        rows, orderings, epochs — never changes.
        """
        return self

    @property
    def delta_count(self) -> int:
        """Pending overlay entries awaiting :meth:`compact` (0 for dict)."""
        return 0

    def _note_mutation(self, u: Vertex, v: Vertex) -> None:
        """Bump epochs and drop raw per-vertex caches for both endpoints."""
        self._graph_epoch += 1
        stamp = self._graph_epoch
        self._vertex_epochs[u] = stamp
        self._vertex_epochs[v] = stamp
        self._mutation_log.append((u, v))
        self._views.pop(u, None)
        self._views.pop(v, None)
        self._invalidate_rows(u, v)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Hook for backends with a delta overlay (dict storage has none)."""

    def _apply_add(self, u: Vertex, v: Vertex) -> None:
        self._adj[u].append(v)
        self._adj[v].append(u)

    def _apply_remove(self, u: Vertex, v: Vertex) -> None:
        self._adj[u].remove(v)
        self._adj[v].remove(u)

    def _invalidate_rows(self, u: Vertex, v: Vertex) -> None:
        index = self._index
        if index is not None:
            for x in (u, v):
                index[x] = {w: i for i, w in enumerate(self._adj[x])}

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    @classmethod
    def _builder_class(cls) -> type:
        """The class used to build derived graphs (subgraphs).

        Views over external storage (e.g. shared-memory attachments) override
        this to build ordinary self-owned graphs instead of new views.
        """
        return cls

    def subgraph_with_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return the spanning subgraph containing all vertices of this graph
        and only the given edges (each of which must exist in this graph).

        The subgraph uses the same storage backend as its host."""
        adjacency: Dict[Vertex, List[Vertex]] = {v: [] for v in self.vertices()}
        seen = set()
        for (u, v) in edges:
            u, v = int(u), int(v)
            if not self.has_edge(u, v):
                raise GraphError(f"({u}, {v}) is not an edge of the host graph")
            key = canonical_edge(u, v)
            if key in seen:
                continue
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        return self._builder_class()(adjacency, validate=False)

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by the given vertex set.

        The subgraph uses the same storage backend as its host."""
        keep = {int(v) for v in vertices}
        adjacency = {
            v: [w for w in self.neighbors(v) if w in keep]
            for v in self.vertices()
            if v in keep
        }
        return self._builder_class()(adjacency, validate=False)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _neighbors_of(self, v: Vertex) -> List[Vertex]:
        try:
            return self._adj[int(v)]
        except KeyError:
            raise UnknownVertexError(v) from None

    def _build_index(self) -> Dict[Vertex, Dict[Vertex, int]]:
        self._index = {
            v: {w: i for i, w in enumerate(neighbors)}
            for v, neighbors in self._adj.items()
        }
        return self._index

    def _validate(self) -> None:
        validate_adjacency(self._adj)
