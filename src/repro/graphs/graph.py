"""Static adjacency-list graphs with fixed neighbor orderings.

The LCA model (Section 1.4 of the paper) assumes the input graph is presented
through an adjacency-list oracle in which *each neighbor set has a fixed, but
arbitrary, ordering*.  :class:`Graph` stores exactly this representation: for
every vertex a list of neighbors in a fixed order, together with an index
structure giving O(1) ``Adjacency`` probes (the probe returns the position of
``v`` inside ``Γ(u)``).

Vertices are arbitrary integers; they need not form ``0..n-1``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import GraphError, UnknownVertexError
from ..core.ids import canonical_edge

Vertex = int
Edge = Tuple[int, int]


class Graph:
    """Simple undirected graph with fixed adjacency-list orderings.

    Parameters
    ----------
    adjacency:
        Mapping from each vertex to the sequence of its neighbors in the
        order exposed by ``Neighbor`` probes.  The mapping must be symmetric
        (``v in adjacency[u]`` iff ``u in adjacency[v]``), contain no
        self-loops and no repeated neighbors.
    validate:
        When ``True`` (default) the adjacency structure is checked for
        symmetry and simplicity.  Large generators that construct symmetric
        structures by design may pass ``False`` to skip the O(m) check.
    """

    __slots__ = ("_adj", "_index", "_num_edges")

    def __init__(
        self,
        adjacency: Mapping[Vertex, Sequence[Vertex]],
        validate: bool = True,
    ) -> None:
        self._adj: Dict[Vertex, List[Vertex]] = {
            int(v): [int(w) for w in neighbors] for v, neighbors in adjacency.items()
        }
        # Make sure every endpoint appears as a key even if isolated on one side.
        for v, neighbors in list(self._adj.items()):
            for w in neighbors:
                if w not in self._adj:
                    raise GraphError(
                        f"vertex {w} appears as a neighbor of {v} but has no "
                        "adjacency list of its own"
                    )
        if validate:
            self._validate()
        self._index: Dict[Vertex, Dict[Vertex, int]] = {
            v: {w: i for i, w in enumerate(neighbors)}
            for v, neighbors in self._adj.items()
        }
        self._num_edges = sum(len(neighbors) for neighbors in self._adj.values()) // 2

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Optional[Iterable[Vertex]] = None,
        shuffle_seed: Optional[int] = None,
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Neighbor lists are ordered by edge-insertion order, which is
        "arbitrary but fixed" exactly as the model requires.  Passing
        ``shuffle_seed`` randomly permutes every neighbor list (deterministic
        in the seed), which is useful for testing that algorithms do not rely
        on any particular ordering.
        """
        adjacency: Dict[Vertex, List[Vertex]] = {}
        if vertices is not None:
            for v in vertices:
                adjacency.setdefault(int(v), [])
        seen = set()
        for (u, v) in edges:
            u, v = int(u), int(v)
            if u == v:
                raise GraphError(f"self loop ({u}, {v}) is not allowed")
            key = canonical_edge(u, v)
            if key in seen:
                continue
            seen.add(key)
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        if shuffle_seed is not None:
            rng = random.Random(shuffle_seed)
            for v in adjacency:
                rng.shuffle(adjacency[v])
        return cls(adjacency, validate=False)

    @classmethod
    def from_networkx(cls, nx_graph, shuffle_seed: Optional[int] = None) -> "Graph":
        """Build a :class:`Graph` from a ``networkx`` graph.

        Node labels must be integers (or convertible to integers without
        collision); use ``networkx.convert_node_labels_to_integers`` first if
        necessary.
        """
        edges = ((int(u), int(v)) for u, v in nx_graph.edges())
        vertices = (int(v) for v in nx_graph.nodes())
        return cls.from_edges(edges, vertices=vertices, shuffle_seed=shuffle_seed)

    def to_networkx(self):
        """Return a ``networkx.Graph`` with the same vertices and edges."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.vertices())
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    def vertices(self) -> List[Vertex]:
        """List of vertices (in insertion order)."""
        return list(self._adj.keys())

    def has_vertex(self, v: Vertex) -> bool:
        return int(v) in self._adj

    def edges(self) -> Iterator[Edge]:
        """Iterate over undirected edges, each reported once canonically."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if u < v:
                    yield (u, v)

    def degree(self, v: Vertex) -> int:
        """Degree of ``v``."""
        return len(self._neighbors_of(v))

    def neighbors(self, v: Vertex) -> Sequence[Vertex]:
        """The fixed, ordered neighbor list Γ(v)."""
        return tuple(self._neighbors_of(v))

    def neighbor_at(self, v: Vertex, index: int) -> Optional[Vertex]:
        """The ``index``-th neighbor of ``v`` (0-based), or ``None``."""
        neighbors = self._neighbors_of(v)
        if 0 <= index < len(neighbors):
            return neighbors[index]
        return None

    def adjacency_index(self, u: Vertex, v: Vertex) -> Optional[int]:
        """Position of ``v`` inside Γ(u) (0-based), or ``None`` if not adjacent."""
        if int(u) not in self._index:
            raise UnknownVertexError(u)
        return self._index[int(u)].get(int(v))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self.adjacency_index(u, v) is not None

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def min_degree(self) -> int:
        """Minimum degree (0 for the empty graph)."""
        if not self._adj:
            return 0
        return min(len(neighbors) for neighbors in self._adj.values())

    def average_degree(self) -> float:
        """Average degree 2m / n."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def edge_list(self) -> List[Edge]:
        """All undirected edges as a list of canonical tuples."""
        return list(self.edges())

    def __contains__(self, v: Vertex) -> bool:
        return self.has_vertex(v)

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph_with_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return the spanning subgraph containing all vertices of this graph
        and only the given edges (each of which must exist in this graph)."""
        adjacency: Dict[Vertex, List[Vertex]] = {v: [] for v in self._adj}
        seen = set()
        for (u, v) in edges:
            u, v = int(u), int(v)
            if not self.has_edge(u, v):
                raise GraphError(f"({u}, {v}) is not an edge of the host graph")
            key = canonical_edge(u, v)
            if key in seen:
                continue
            seen.add(key)
            adjacency[u].append(v)
            adjacency[v].append(u)
        return Graph(adjacency, validate=False)

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by the given vertex set."""
        keep = {int(v) for v in vertices}
        adjacency = {
            v: [w for w in self._adj[v] if w in keep] for v in self._adj if v in keep
        }
        return Graph(adjacency, validate=False)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _neighbors_of(self, v: Vertex) -> List[Vertex]:
        try:
            return self._adj[int(v)]
        except KeyError:
            raise UnknownVertexError(v) from None

    def _validate(self) -> None:
        for v, neighbors in self._adj.items():
            if len(set(neighbors)) != len(neighbors):
                raise GraphError(f"vertex {v} has repeated neighbors")
            if v in neighbors:
                raise GraphError(f"vertex {v} has a self loop")
        for v, neighbors in self._adj.items():
            for w in neighbors:
                if v not in self._adj[w]:
                    raise GraphError(
                        f"adjacency is not symmetric: {w} missing neighbor {v}"
                    )
