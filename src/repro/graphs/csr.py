"""Compressed-sparse-row (CSR) graph storage.

:class:`CSRGraph` stores every neighbor list in one flat ``array`` of vertex
ids behind an offset-pointer array (``indptr``), the classic CSR layout:

* ``indptr[p] .. indptr[p+1]`` delimit the neighbor row of the vertex at
  position ``p`` (positions follow insertion order of the adjacency mapping),
* ``indices[indptr[p] + i]`` is the ``i``-th neighbor, in exactly the same
  fixed order the dict backend would expose.

Because the LCA model only ever reads ``Degree``, ``Neighbor`` and
``Adjacency`` probes, the two backends are observationally identical: same
degrees, same neighbor orderings, same adjacency indices.  The equivalence
test suite (``tests/test_backend_equivalence.py``) asserts this down to
per-query probe totals.

The ``Adjacency``-probe index (a per-vertex ``{neighbor: position}`` dict) is
built lazily, one row at a time, on first use — generators and BFS never pay
for it, and materialization only pays for the rows it actually probes.

Vertices are arbitrary integers (ids need not form ``0..n-1``); an id → row
position map translates between the two.

Shared-memory export
--------------------
The flat CSR layout has a second payoff beyond cache locality: it is exactly
the shape ``multiprocessing.shared_memory`` wants.  :meth:`CSRGraph.to_shared`
copies the three int64 arrays (``ids``, ``indptr``, ``indices``) into one
shared-memory segment once, and any number of worker processes *attach* to it
through the picklable :class:`SharedCSRHandle` — a few dozen bytes on the
wire instead of an O(m) pickle of the adjacency structure.  The attached
:class:`SharedCSRGraph` wraps zero-copy ``memoryview``s over the segment and
is observationally identical to the exporting graph (same orderings, same
probe-visible behavior), which is what makes the process executor's answers
bit-identical to the serial path.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..core.errors import GraphError, UnknownVertexError
from .graph import (
    Edge,
    Graph,
    Vertex,
    undeclared_neighbor_error,
    validate_adjacency,
)

#: Byte width of the shared int64 layout (``array`` typecode "q").
_ITEM_SIZE = array("q").itemsize

#: Default number of pending overlay entries that triggers an automatic
#: :meth:`CSRGraph.compact`.  The overlay keeps single mutations O(Δ-free)
#: cheap; once deltas pile up, one O(m) re-materialization restores flat
#: array scans for every row.
DEFAULT_COMPACT_THRESHOLD = 512


def _in_sorted(values, item: int) -> bool:
    """Membership test on a sorted array (the removal side-arrays)."""
    position = bisect_left(values, item)
    return position < len(values) and values[position] == item


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    Only the exporting owner may unlink a segment; an attaching process that
    registers it with its resource tracker would destroy it for everyone on
    exit (bpo-39959).  Python 3.13 grew ``track=False`` for exactly this;
    on older versions the tracker's register hook is muted for the duration
    of the attach.

    A missing segment (never created, or already unlinked by its exporter —
    e.g. a worker attaching after the pool shut down) surfaces as a
    :class:`RuntimeError` naming the segment, not a bare ``FileNotFoundError``
    from the depths of ``shared_memory``.
    """
    try:
        try:
            return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:
            pass
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(segment_name, rtype):  # pragma: no cover - shim
            if rtype != "shared_memory":
                original(segment_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except FileNotFoundError:
        raise RuntimeError(
            f"shared CSR segment {name!r} does not exist (never exported, "
            "or already unlinked by its exporting owner)"
        ) from None


class CSRGraph(Graph):
    """CSR-backed graph with the same interface and semantics as :class:`Graph`."""

    __slots__ = (
        "_ids",
        "_pos",
        "_indptr",
        "_indices",
        "_rows",
        "_delta_add",
        "_delta_removed",
        "_delta_entries",
        "_survivors",
        "compact_threshold",
    )

    backend = "csr"

    def __init__(
        self,
        adjacency: Mapping[Vertex, Sequence[Vertex]],
        validate: bool = True,
    ) -> None:
        ids: List[Vertex] = []
        pos: Dict[Vertex, int] = {}
        for v in adjacency:
            v = int(v)
            if v not in pos:
                pos[v] = len(ids)
                ids.append(v)
        try:
            indices = array("q")
            indptr = array("q", [0])
            offset = 0
            for v in ids:
                row = adjacency[v]
                indices.extend(int(w) for w in row)
                offset += len(row)
                indptr.append(offset)
        except OverflowError:
            # Vertex ids beyond 64 bits: fall back to a plain flat list.
            indices = []  # type: ignore[assignment]
            indptr = array("q", [0])
            offset = 0
            for v in ids:
                row = [int(w) for w in adjacency[v]]
                indices.extend(row)
                offset += len(row)
                indptr.append(offset)
        error = undeclared_neighbor_error(adjacency, pos)
        if error is not None:
            raise error
        if validate:
            validate_adjacency({v: list(adjacency[v]) for v in adjacency})
        self._ids = ids
        self._pos = pos
        self._indptr = indptr
        self._indices = indices
        # Lazy per-vertex {neighbor: position} rows for Adjacency probes.
        self._rows: Dict[int, Dict[Vertex, int]] = {}
        self._views = {}
        self._num_edges = len(indices) // 2
        self._init_mutation_state()
        self._init_overlay()

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert any backend to CSR, preserving neighbor orderings."""
        return graph.to_backend("csr")  # type: ignore[return-value]

    @classmethod
    def from_arrays(
        cls,
        indptr: "array",
        indices: "array",
        ids: Optional[Sequence[int]] = None,
    ) -> "CSRGraph":
        """Adopt pre-built flat CSR arrays without an adjacency-dict pass.

        This is the entry point for the streaming builders
        (:mod:`repro.scale.stream`): they assemble ``indptr``/``indices``
        incrementally from edge chunks and hand the finished arrays over,
        so a million-node graph never exists as a Python edge list or an
        adjacency mapping.  The arrays are adopted, not copied — callers
        must not mutate them afterwards.

        ``ids`` defaults to ``0..n-1`` (position == id).  Row ``p`` of
        ``indices`` must hold the neighbors of ``ids[p]`` in their final,
        probe-visible order; symmetry and simplicity are the builder's
        contract (the streaming builder validates per edge as it fills).
        """
        n = len(indptr) - 1
        if n < 0 or indptr[0] != 0:
            raise GraphError("indptr must start at 0 and have n + 1 entries")
        if len(indices) != indptr[n]:
            raise GraphError(
                f"indices length {len(indices)} does not match "
                f"indptr[-1] = {indptr[n]}"
            )
        if ids is None:
            id_list: List[int] = list(range(n))
            pos = {v: v for v in id_list}
        else:
            id_list = [int(v) for v in ids]
            pos = {v: p for p, v in enumerate(id_list)}
            if len(pos) != n:
                raise GraphError(
                    f"ids must be {n} distinct vertex ids, got {len(id_list)}"
                )
        graph = cls.__new__(cls)
        graph._ids = id_list
        graph._pos = pos
        graph._indptr = indptr
        graph._indices = indices
        graph._rows = {}
        graph._views = {}
        graph._num_edges = len(indices) // 2
        graph._init_mutation_state()
        graph._init_overlay()
        return graph

    def to_shared(self) -> "SharedCSRExport":
        """Export the CSR arrays to a shared-memory segment (one copy).

        Returns the owning :class:`SharedCSRExport`; its ``handle`` is a
        small picklable descriptor that worker processes pass to
        :func:`attach_shared_graph` to map the same arrays without copying.
        The exporter must outlive every attachment and should be closed (and
        unlinked) when the parallel section ends — use it as a context
        manager.

        Pending mutation deltas are folded in first (:meth:`compact`), so
        the exported flat arrays always describe the current rows.
        """
        self.compact()
        return SharedCSRExport(self)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    def vertices(self) -> List[Vertex]:
        return list(self._ids)

    def has_vertex(self, v: Vertex) -> bool:
        return int(v) in self._pos

    def edges(self) -> Iterator[Edge]:
        if self._delta_entries:
            # _neighbors_of, not neighbors(): the cached-view accessor would
            # permanently materialize a tuple per vertex just to iterate.
            for u in self._ids:
                for v in self._neighbors_of(u):
                    if u < v:
                        yield (u, v)
            return
        indptr, indices = self._indptr, self._indices
        for p, u in enumerate(self._ids):
            for k in range(indptr[p], indptr[p + 1]):
                v = indices[k]
                if u < v:
                    yield (u, v)

    def degree(self, v: Vertex) -> int:
        p = self._position(v)
        base = self._indptr[p + 1] - self._indptr[p]
        if not self._delta_entries:
            return base
        v = int(v)
        removed = self._delta_removed.get(v)
        added = self._delta_add.get(v)
        if removed:
            base -= len(removed)
        if added:
            base += len(added)
        return base

    def neighbor_at(self, v: Vertex, index: int) -> Optional[Vertex]:
        v = int(v)
        if self._delta_entries and (
            v in self._delta_add or v in self._delta_removed
        ):
            row = self.neighbors(v)
            if 0 <= index < len(row):
                return row[index]
            return None
        p = self._position(v)
        start = self._indptr[p]
        if 0 <= index < self._indptr[p + 1] - start:
            return self._indices[start + index]
        return None

    def adjacency_index(self, u: Vertex, v: Vertex) -> Optional[int]:
        return self.adjacency_row(u).get(int(v))

    def adjacency_row(self, v: Vertex) -> Dict[Vertex, int]:
        v = int(v)
        row = self._rows.get(v)
        if row is None:
            row = {w: i for i, w in enumerate(self._neighbors_of(v))}
            self._rows[v] = row
        return row

    def max_degree(self) -> int:
        if self._delta_entries:
            return max((self.degree(v) for v in self._ids), default=0)
        indptr = self._indptr
        if len(indptr) < 2:
            return 0
        return max(indptr[p + 1] - indptr[p] for p in range(len(indptr) - 1))

    def min_degree(self) -> int:
        if self._delta_entries:
            return min((self.degree(v) for v in self._ids), default=0)
        indptr = self._indptr
        if len(indptr) < 2:
            return 0
        return min(indptr[p + 1] - indptr[p] for p in range(len(indptr) - 1))

    # ------------------------------------------------------------------ #
    # Mutation overlay (delta side-arrays + compaction)
    # ------------------------------------------------------------------ #
    def _init_overlay(self) -> None:
        # Per-vertex overlay consulted by every neighbor view while deltas
        # are pending: appended neighbors (in mutation order) and removed
        # neighbor ids (sorted side-arrays probed with bisect).
        self._delta_add: Dict[int, List[int]] = {}
        self._delta_removed: Dict[int, array] = {}
        self._delta_entries = 0
        # Per-vertex survivor rows (base minus removals plus appends),
        # computed once per epoch instead of per probe; a mutation of the
        # vertex drops its entry, compaction drops the whole cache.
        self._survivors: Dict[int, tuple] = {}
        self.compact_threshold = DEFAULT_COMPACT_THRESHOLD

    @property
    def delta_count(self) -> int:
        return self._delta_entries

    def _apply_add(self, u: Vertex, v: Vertex) -> None:
        # A re-added edge whose base occurrence is masked by the removal
        # side-array stays masked: the appended id lands at the end of the
        # row, exactly where the dict backend's remove-then-append puts it.
        for a, b in ((u, v), (v, u)):
            self._delta_add.setdefault(a, []).append(b)
            self._delta_entries += 1

    def _apply_remove(self, u: Vertex, v: Vertex) -> None:
        for a, b in ((u, v), (v, u)):
            added = self._delta_add.get(a)
            if added is not None and b in added:
                added.remove(b)
                self._delta_entries -= 1
                if not added:
                    del self._delta_add[a]
                continue
            removed = self._delta_removed.get(a)
            if removed is None:
                removed = array("q")
                self._delta_removed[a] = removed
            insort(removed, b)
            self._delta_entries += 1

    def _invalidate_rows(self, u: Vertex, v: Vertex) -> None:
        self._rows.pop(u, None)
        self._rows.pop(v, None)
        self._survivors.pop(u, None)
        self._survivors.pop(v, None)

    def _maybe_compact(self) -> None:
        if self._delta_entries > self.compact_threshold:
            self.compact()

    def compact(self) -> "CSRGraph":
        """Re-materialize the flat CSR arrays with all deltas folded in.

        Observable state is untouched: rows, orderings, degrees, epochs and
        cached views all stay exactly as they were — only the storage moves
        from base-plus-overlay back to flat arrays.
        """
        if not self._delta_entries:
            return self
        try:
            indices = array("q")
            indptr = array("q", [0])
            offset = 0
            for v in self._ids:
                row = self._neighbors_of(v)
                indices.extend(row)
                offset += len(row)
                indptr.append(offset)
        except OverflowError:
            indices = []  # type: ignore[assignment]
            indptr = array("q", [0])
            offset = 0
            for v in self._ids:
                row = self._neighbors_of(v)
                indices.extend(row)
                offset += len(row)
                indptr.append(offset)
        self._indices = indices
        self._indptr = indptr
        self._delta_add = {}
        self._delta_removed = {}
        self._delta_entries = 0
        self._survivors = {}
        return self

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _position(self, v: Vertex) -> int:
        try:
            return self._pos[int(v)]
        except KeyError:
            raise UnknownVertexError(v) from None

    def _neighbors_of(self, v: Vertex) -> Sequence[Vertex]:
        # Raw row slice; the inherited Graph.neighbors() turns it into the
        # cached immutable view, keeping the view-memo logic in one place.
        p = self._position(v)
        base = self._indices[self._indptr[p] : self._indptr[p + 1]]
        if not self._delta_entries:
            return base
        v = int(v)
        removed = self._delta_removed.get(v)
        added = self._delta_add.get(v)
        if removed is None and added is None:
            return base
        survivors = self._survivors.get(v)
        if survivors is None:
            if removed:
                row = [w for w in base if not _in_sorted(removed, w)]
            else:
                row = list(base)
            if added:
                row.extend(added)
            survivors = tuple(row)
            self._survivors[v] = survivors
        return survivors

    def _validate(self) -> None:  # pragma: no cover - validation runs in __init__
        validate_adjacency(self.as_adjacency())


# --------------------------------------------------------------------------- #
# Shared-memory export / attach
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable descriptor of a CSR graph living in shared memory.

    The segment holds three consecutive int64 arrays::

        [ ids : n ][ indptr : n + 1 ][ indices : nnz ]

    A handle is a value object — pickling it costs a few dozen bytes no
    matter how large the graph is.  It stays valid for as long as the
    exporting :class:`SharedCSRExport` keeps the segment alive.
    """

    shm_name: str
    num_vertices: int
    num_entries: int

    @property
    def total_items(self) -> int:
        return 2 * self.num_vertices + 1 + self.num_entries

    def attach(self) -> "SharedCSRGraph":
        """Map the segment and return a zero-copy graph view over it."""
        return SharedCSRGraph(self)


class SharedCSRExport:
    """Owner of a shared-memory CSR segment (create → share → unlink).

    Created by :meth:`CSRGraph.to_shared`.  Closing unlinks the segment by
    default: attached workers keep their existing mappings (POSIX semantics)
    but no new attachments are possible afterwards.
    """

    def __init__(self, graph: CSRGraph) -> None:
        try:
            payload = array("q")
            payload.extend(graph._ids)
            payload.extend(graph._indptr)
            payload.extend(graph._indices)
        except OverflowError:
            raise GraphError(
                "graphs with vertex ids beyond 64 bits cannot be exported "
                "to shared memory"
            ) from None
        nbytes = max(len(payload) * _ITEM_SIZE, _ITEM_SIZE)
        self._shm: Optional[shared_memory.SharedMemory] = shared_memory.SharedMemory(
            create=True, size=nbytes
        )
        self._shm.buf[: len(payload) * _ITEM_SIZE] = payload.tobytes()
        self.handle = SharedCSRHandle(
            shm_name=self._shm.name,
            num_vertices=len(graph._ids),
            num_entries=len(graph._indices),
        )

    @property
    def name(self) -> str:
        return self.handle.shm_name

    def close(self, unlink: bool = True) -> None:
        """Release the exporter's mapping (and the segment, by default)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:  # already unlinked elsewhere
                pass

    def __enter__(self) -> "SharedCSRExport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SharedCSRGraph(CSRGraph):
    """Zero-copy CSR graph attached to a :class:`SharedCSRHandle`.

    The adjacency arrays are ``memoryview``s over the shared segment — no
    per-worker copy of ``indptr``/``indices`` is ever made; only the O(n)
    id → position dictionary is rebuilt on attach.  Probe-visible behavior
    (orderings, degrees, adjacency indices) is identical to the exporting
    graph, so answers and probe accounting cannot depend on where a graph
    is mapped.

    Derived per-vertex caches (neighbor views, adjacency rows) are private
    to each attachment, exactly as they would be on an ordinary copy.
    """

    __slots__ = ("_shm", "_view")

    backend = "csr-shared"

    def __init__(self, handle: SharedCSRHandle) -> None:
        shm = _attach_segment(handle.shm_name)
        n = handle.num_vertices
        nnz = handle.num_entries
        view = memoryview(shm.buf).cast("q")
        if len(view) < handle.total_items:
            view.release()
            shm.close()
            raise GraphError(
                f"shared segment {handle.shm_name!r} is too small for the "
                f"declared CSR shape (n={n}, nnz={nnz})"
            )
        self._shm = shm
        self._view = view
        self._ids = view[0:n]
        self._indptr = view[n : 2 * n + 1]
        self._indices = view[2 * n + 1 : 2 * n + 1 + nnz]
        self._pos = {v: p for p, v in enumerate(self._ids)}
        self._rows = {}
        self._views = {}
        self._num_edges = nnz // 2
        self._init_mutation_state()
        self._init_overlay()

    @classmethod
    def _builder_class(cls) -> type:
        # Derived graphs (subgraphs) own their storage instead of aliasing
        # someone else's shared segment.
        return CSRGraph

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        raise GraphError(
            "shared CSR attachments are read-only views; mutate the "
            "exporting graph and re-export instead"
        )

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        raise GraphError(
            "shared CSR attachments are read-only views; mutate the "
            "exporting graph and re-export instead"
        )

    def detach(self) -> None:
        """Release the memoryviews and close this attachment's mapping.

        The graph is unusable afterwards.  The segment itself lives until
        the exporting owner unlinks it.  Detaching twice (or detaching an
        attachment whose construction failed partway) is a no-op — the
        ``getattr`` default covers ``__init__`` raising before ``_shm`` is
        bound, e.g. on a size-mismatched segment.
        """
        if getattr(self, "_shm", None) is None:
            return
        for name in ("_ids", "_indptr", "_indices", "_view"):
            view = getattr(self, name, None)
            if isinstance(view, memoryview):
                view.release()
        self._ids = []
        self._pos = {}
        self._indptr = array("q", [0])
        self._indices = array("q")
        shm, self._shm = self._shm, None
        shm.close()

    def __enter__(self) -> "SharedCSRGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def __reduce__(self):
        raise TypeError(
            "SharedCSRGraph is a process-local view; pickle its "
            "SharedCSRHandle and attach on the other side instead"
        )


def attach_shared_graph(handle: SharedCSRHandle) -> SharedCSRGraph:
    """Attach to an exported CSR graph (worker-side entry point)."""
    return handle.attach()
