"""Compressed-sparse-row (CSR) graph storage.

:class:`CSRGraph` stores every neighbor list in one flat ``array`` of vertex
ids behind an offset-pointer array (``indptr``), the classic CSR layout:

* ``indptr[p] .. indptr[p+1]`` delimit the neighbor row of the vertex at
  position ``p`` (positions follow insertion order of the adjacency mapping),
* ``indices[indptr[p] + i]`` is the ``i``-th neighbor, in exactly the same
  fixed order the dict backend would expose.

Because the LCA model only ever reads ``Degree``, ``Neighbor`` and
``Adjacency`` probes, the two backends are observationally identical: same
degrees, same neighbor orderings, same adjacency indices.  The equivalence
test suite (``tests/test_backend_equivalence.py``) asserts this down to
per-query probe totals.

The ``Adjacency``-probe index (a per-vertex ``{neighbor: position}`` dict) is
built lazily, one row at a time, on first use — generators and BFS never pay
for it, and materialization only pays for the rows it actually probes.

Vertices are arbitrary integers (ids need not form ``0..n-1``); an id → row
position map translates between the two.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..core.errors import UnknownVertexError
from .graph import (
    Edge,
    Graph,
    Vertex,
    undeclared_neighbor_error,
    validate_adjacency,
)


class CSRGraph(Graph):
    """CSR-backed graph with the same interface and semantics as :class:`Graph`."""

    __slots__ = ("_ids", "_pos", "_indptr", "_indices", "_rows")

    backend = "csr"

    def __init__(
        self,
        adjacency: Mapping[Vertex, Sequence[Vertex]],
        validate: bool = True,
    ) -> None:
        ids: List[Vertex] = []
        pos: Dict[Vertex, int] = {}
        for v in adjacency:
            v = int(v)
            if v not in pos:
                pos[v] = len(ids)
                ids.append(v)
        try:
            indices = array("q")
            indptr = array("q", [0])
            offset = 0
            for v in ids:
                row = adjacency[v]
                indices.extend(int(w) for w in row)
                offset += len(row)
                indptr.append(offset)
        except OverflowError:
            # Vertex ids beyond 64 bits: fall back to a plain flat list.
            indices = []  # type: ignore[assignment]
            indptr = array("q", [0])
            offset = 0
            for v in ids:
                row = [int(w) for w in adjacency[v]]
                indices.extend(row)
                offset += len(row)
                indptr.append(offset)
        error = undeclared_neighbor_error(adjacency, pos)
        if error is not None:
            raise error
        if validate:
            validate_adjacency({v: list(adjacency[v]) for v in adjacency})
        self._ids = ids
        self._pos = pos
        self._indptr = indptr
        self._indices = indices
        # Lazy per-vertex {neighbor: position} rows for Adjacency probes.
        self._rows: Dict[int, Dict[Vertex, int]] = {}
        self._views = {}
        self._num_edges = len(indices) // 2

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert any backend to CSR, preserving neighbor orderings."""
        return graph.to_backend("csr")  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    def vertices(self) -> List[Vertex]:
        return list(self._ids)

    def has_vertex(self, v: Vertex) -> bool:
        return int(v) in self._pos

    def edges(self) -> Iterator[Edge]:
        indptr, indices = self._indptr, self._indices
        for p, u in enumerate(self._ids):
            for k in range(indptr[p], indptr[p + 1]):
                v = indices[k]
                if u < v:
                    yield (u, v)

    def degree(self, v: Vertex) -> int:
        p = self._position(v)
        return self._indptr[p + 1] - self._indptr[p]

    def neighbor_at(self, v: Vertex, index: int) -> Optional[Vertex]:
        p = self._position(v)
        start = self._indptr[p]
        if 0 <= index < self._indptr[p + 1] - start:
            return self._indices[start + index]
        return None

    def adjacency_index(self, u: Vertex, v: Vertex) -> Optional[int]:
        return self.adjacency_row(u).get(int(v))

    def adjacency_row(self, v: Vertex) -> Dict[Vertex, int]:
        v = int(v)
        row = self._rows.get(v)
        if row is None:
            p = self._position(v)
            start = self._indptr[p]
            row = {
                w: i
                for i, w in enumerate(self._indices[start : self._indptr[p + 1]])
            }
            self._rows[v] = row
        return row

    def max_degree(self) -> int:
        indptr = self._indptr
        if len(indptr) < 2:
            return 0
        return max(indptr[p + 1] - indptr[p] for p in range(len(indptr) - 1))

    def min_degree(self) -> int:
        indptr = self._indptr
        if len(indptr) < 2:
            return 0
        return min(indptr[p + 1] - indptr[p] for p in range(len(indptr) - 1))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _position(self, v: Vertex) -> int:
        try:
            return self._pos[int(v)]
        except KeyError:
            raise UnknownVertexError(v) from None

    def _neighbors_of(self, v: Vertex) -> Sequence[Vertex]:
        # Raw row slice; the inherited Graph.neighbors() turns it into the
        # cached immutable view, keeping the view-memo logic in one place.
        p = self._position(v)
        return self._indices[self._indptr[p] : self._indptr[p + 1]]

    def _validate(self) -> None:  # pragma: no cover - validation runs in __init__
        validate_adjacency(self.as_adjacency())
