"""Baselines: global spanner algorithms and prior-work LCA comparators."""

from .baswana_sen import baswana_sen_spanner, expected_size_bound
from .distributed import (
    BaswanaSenRun,
    ClusterSampler,
    adjacency_from_edges,
    simulate_baswana_sen,
)
from .greedy import greedy_size_bound, greedy_spanner
from .sparse_spanning import SparseSpanningSubgraphLCA

__all__ = [
    "baswana_sen_spanner",
    "expected_size_bound",
    "greedy_spanner",
    "greedy_size_bound",
    "ClusterSampler",
    "BaswanaSenRun",
    "simulate_baswana_sen",
    "adjacency_from_edges",
    "SparseSpanningSubgraphLCA",
]
