"""Round-by-round simulation of the Baswana–Sen distributed spanner algorithm.

The O(k²)-spanner LCA handles its sparse region by *locally simulating* a
k-round distributed (2k−1)-spanner algorithm (Theorem 4.4 quotes Baswana–Sen
with the bounded-independence analysis of Censor-Hillel, Parter and
Schwartzman).  The simulation below is written so that every vertex's
decisions depend only on its k-neighborhood in the simulated graph and on the
shared hash functions — this is what makes the local simulation exact: running
it on a gathered ball around the query edge reproduces the decisions the
vertex would make in the full graph.

The same engine, run on the whole graph, doubles as the *global* Baswana–Sen
baseline used in the Table 1 benchmarks.

Algorithm (unweighted Baswana–Sen, phases as in the original paper):

* Every vertex starts as the center of its own level-0 cluster.
* For levels ``i = 1 .. k−1``: each level-(i−1) cluster is sampled with
  probability ``n^{-1/k}`` (a hash of its center, so sampling is consistent
  everywhere).  A vertex whose cluster is sampled stays put.  A vertex whose
  cluster is not sampled joins an adjacent sampled cluster through one edge
  if it has one; otherwise it adds one edge to *each* adjacent cluster and
  becomes unclustered forever.
* Phase 2 (level ``k``): every vertex adds one edge to each adjacent
  level-(k−1) cluster other than its own.

The result is a (2k−1)-spanner with O(k·n^{1+1/k}) edges in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import ParameterError
from ..core.ids import canonical_edge
from ..core.seed import Seed, SeedLike
from ..rand.kwise import KWiseHashFamily, recommended_independence

Edge = Tuple[int, int]
Adjacency = Mapping[int, Sequence[int]]


class ClusterSampler:
    """Per-level cluster sampling shared by every simulated vertex.

    Level ``i`` uses its own Θ(log n)-wise independent hash function, so the
    whole randomness of the distributed algorithm fits in O(log² n) bits
    (Section 5's requirement).
    """

    def __init__(
        self,
        seed: SeedLike,
        stretch_parameter: int,
        num_vertices_global: int,
        independence: Optional[int] = None,
    ) -> None:
        if stretch_parameter < 1:
            raise ParameterError("the stretch parameter k must be at least 1")
        if num_vertices_global < 1:
            raise ParameterError("the global vertex count must be positive")
        self.stretch_parameter = int(stretch_parameter)
        self.num_vertices_global = int(num_vertices_global)
        if independence is None:
            independence = recommended_independence(num_vertices_global)
        family = KWiseHashFamily(Seed.of(seed), independence)
        self._level_hashes = family.members("bs-level", self.stretch_parameter)
        self.sampling_probability = float(num_vertices_global) ** (
            -1.0 / self.stretch_parameter
        )

    def is_sampled(self, level: int, center: int) -> bool:
        """Whether the cluster centered at ``center`` survives to ``level``."""
        if not 1 <= level <= self.stretch_parameter:
            raise ParameterError("level out of range")
        return self._level_hashes[level - 1].bernoulli(
            center, self.sampling_probability
        )


@dataclass
class BaswanaSenRun:
    """Outcome of a Baswana–Sen simulation on a (sub)graph."""

    #: Edges added, attributed to the vertex that added them.
    added_by: Dict[int, Set[Edge]] = field(default_factory=dict)
    #: Final cluster center of every vertex (``None`` when unclustered).
    final_cluster: Dict[int, Optional[int]] = field(default_factory=dict)

    def all_edges(self) -> Set[Edge]:
        edges: Set[Edge] = set()
        for per_vertex in self.added_by.values():
            edges |= per_vertex
        return edges

    def edges_added_by(self, vertex: int) -> Set[Edge]:
        return self.added_by.get(vertex, set())

    def edge_in_spanner(self, u: int, v: int) -> bool:
        """Theorem 4.4: the edge is kept iff *some* endpoint chose to add it."""
        edge = canonical_edge(u, v)
        return edge in self.edges_added_by(u) or edge in self.edges_added_by(v)


def simulate_baswana_sen(
    adjacency: Adjacency,
    sampler: ClusterSampler,
) -> BaswanaSenRun:
    """Run the k-round Baswana–Sen algorithm on the given adjacency structure.

    ``adjacency`` maps every participating vertex to its neighbors *within the
    simulated graph*; it must be symmetric.  The run is deterministic given
    the sampler, and every vertex's output depends only on its k-neighborhood,
    which is what the LCA's local simulation relies on.
    """
    k = sampler.stretch_parameter
    vertices = list(adjacency.keys())
    cluster: Dict[int, Optional[int]] = {v: v for v in vertices}
    run = BaswanaSenRun(
        added_by={v: set() for v in vertices},
        final_cluster={},
    )

    def adjacent_clusters(v: int, state: Dict[int, Optional[int]]) -> Dict[int, int]:
        """Map each adjacent cluster center to the minimum-ID witness neighbor."""
        witnesses: Dict[int, int] = {}
        for w in adjacency[v]:
            if w not in state:
                continue
            center = state[w]
            if center is None:
                continue
            if center not in witnesses or w < witnesses[center]:
                witnesses[center] = w
        return witnesses

    # ------------------------------------------------------------------ #
    # Phase 1: levels 1 .. k-1
    # ------------------------------------------------------------------ #
    for level in range(1, k):
        next_cluster: Dict[int, Optional[int]] = {}
        for v in vertices:
            own = cluster[v]
            if own is None:
                next_cluster[v] = None
                continue
            if sampler.is_sampled(level, own):
                next_cluster[v] = own
                continue
            witnesses = adjacent_clusters(v, cluster)
            sampled_adjacent = {
                center: witness
                for center, witness in witnesses.items()
                if sampler.is_sampled(level, center)
            }
            if sampled_adjacent:
                center, witness = min(sampled_adjacent.items())
                run.added_by[v].add(canonical_edge(v, witness))
                next_cluster[v] = center
            else:
                for center, witness in witnesses.items():
                    if center == own:
                        continue
                    run.added_by[v].add(canonical_edge(v, witness))
                next_cluster[v] = None
        cluster = next_cluster

    # ------------------------------------------------------------------ #
    # Phase 2: connect every vertex to each adjacent surviving cluster
    # ------------------------------------------------------------------ #
    for v in vertices:
        witnesses = adjacent_clusters(v, cluster)
        for center, witness in witnesses.items():
            if center == cluster[v]:
                continue
            run.added_by[v].add(canonical_edge(v, witness))

    run.final_cluster = dict(cluster)
    return run


def adjacency_from_edges(
    vertices: Iterable[int], edges: Iterable[Edge]
) -> Dict[int, List[int]]:
    """Build a symmetric adjacency mapping from a vertex set and edge list."""
    adjacency: Dict[int, List[int]] = {int(v): [] for v in vertices}
    for (u, v) in edges:
        if u in adjacency and v in adjacency:
            adjacency[u].append(v)
            adjacency[v].append(u)
    return adjacency
