"""Prior-work comparator: an LCA for sparse *spanning* subgraphs.

Table 1 of the paper contrasts the new spanner LCAs against earlier LCAs for
sparse connected subgraphs (Levi–Ron–Rubinfeld and follow-ups), whose goal is
connectivity with (1+ε)n edges but whose stretch is not analyzed (it can be
as large as n).  This module implements the classic rank-based variant of
that line of work so the comparison rows of Table 1 can be produced:

    keep the edge (u, v) unless there is a path of length at most ``radius``
    between u and v consisting solely of edges of *smaller random rank*.

Removing only edges that are locally "rank-maximal on a short cycle"
preserves connectivity (the standard cycle/matroid argument), and on
bounded-degree graphs each query costs O(Δ^radius) probes — exponential in
the radius, which is exactly the behaviour the paper's constructions improve
upon for high-degree graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.ids import canonical_edge
from ..core.lca import SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.registry import register
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from ..rand.kwise import KWiseHash, recommended_independence

Edge = Tuple[int, int]


class SparseSpanningSubgraphLCA(SpannerLCA):
    """Rank-based LCA for a sparse connected spanning subgraph.

    Parameters
    ----------
    radius:
        The exploration radius ``r``; an edge is dropped when a shorter-rank
        path of length ≤ ``radius`` connects its endpoints.  Larger radii give
        sparser subgraphs at exponentially larger probe cost.
    """

    name = "sparse-spanning"

    def __init__(self, graph: Graph, seed: SeedLike, radius: int = 3) -> None:
        super().__init__(graph, seed)
        self.radius = max(1, int(radius))
        independence = recommended_independence(graph.num_vertices)
        self._rank_hash = KWiseHash(
            self._derive_seed("sparse-spanning/edge-ranks"), independence
        )

    def stretch_bound(self) -> Optional[int]:
        # Connectivity is guaranteed; the stretch is not analyzed (Table 1 "−").
        return None

    # ------------------------------------------------------------------ #
    # Edge ranks
    # ------------------------------------------------------------------ #
    def edge_rank(self, u: int, v: int) -> Tuple[int, Tuple[int, int]]:
        """Random rank of an edge; ties broken by the canonical edge ID."""
        edge = canonical_edge(u, v)
        key = (edge[0] << 32) ^ edge[1]
        return (self._rank_hash.value(key), edge)

    # ------------------------------------------------------------------ #
    # Decision rule
    # ------------------------------------------------------------------ #
    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        target_rank = self.edge_rank(u, v)

        # Breadth-first exploration from u using only lower-rank edges,
        # bounded by ``radius`` hops; the query edge itself is excluded.
        frontier: List[int] = [u]
        distances: Dict[int, int] = {u: 0}
        forbidden = canonical_edge(u, v)
        while frontier:
            next_frontier: List[int] = []
            for x in frontier:
                if distances[x] >= self.radius:
                    continue
                for w in oracle.all_neighbors(x):
                    if canonical_edge(x, w) == forbidden:
                        continue
                    if self.edge_rank(x, w) >= target_rank:
                        continue
                    if w in distances:
                        continue
                    distances[w] = distances[x] + 1
                    if w == v:
                        return False
                    next_frontier.append(w)
            frontier = next_frontier
        return True


@register("sparse-spanning")
def _make_sparse_spanning(
    graph: Graph, seed: SeedLike, radius: int = 3, **kwargs
) -> SparseSpanningSubgraphLCA:
    return SparseSpanningSubgraphLCA(graph, seed, radius=radius)
