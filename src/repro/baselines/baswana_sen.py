"""Global Baswana–Sen (2k−1)-spanner baseline.

This is the classical randomized algorithm (Baswana & Sen, 2007) the paper's
distributed and local constructions are modelled on.  It reads the whole
graph, so it is *not* an LCA; it serves as the folklore size/stretch
reference point for Table 1 ("who wins and by how much") and as an oracle for
tests (every LCA spanner should be within polylog factors of it in size on
the same instance).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from .distributed import ClusterSampler, adjacency_from_edges, simulate_baswana_sen

Edge = Tuple[int, int]


def baswana_sen_spanner(
    graph: Graph,
    stretch_parameter: int,
    seed: SeedLike = 0,
    independence: Optional[int] = None,
) -> Set[Edge]:
    """Compute a (2k−1)-spanner of the whole graph.

    Parameters
    ----------
    graph:
        Input graph.
    stretch_parameter:
        The ``k`` of the (2k−1) stretch guarantee.
    seed:
        Randomness seed (cluster sampling per level).
    independence:
        Hash-family independence (defaults to Θ(log n)).

    Returns
    -------
    set of edges
        The spanner edge set (canonical tuples).  Expected size is
        O(k · n^{1 + 1/k}).
    """
    sampler = ClusterSampler(
        Seed.of(seed).derive("baswana-sen-global"),
        stretch_parameter=stretch_parameter,
        num_vertices_global=graph.num_vertices,
        independence=independence,
    )
    adjacency = adjacency_from_edges(graph.vertices(), graph.edges())
    run = simulate_baswana_sen(adjacency, sampler)
    return run.all_edges()


def expected_size_bound(num_vertices: int, stretch_parameter: int) -> float:
    """The O(k · n^{1+1/k}) size bound (without constants), for reporting."""
    k = max(1, int(stretch_parameter))
    return k * float(num_vertices) ** (1.0 + 1.0 / k)
