"""Greedy (2k−1)-spanner baseline (Althöfer et al.).

The greedy algorithm scans the edges in a fixed order and keeps an edge
whenever the current spanner does not already provide a path of length at
most ``2k−1`` between its endpoints.  It produces spanners matching the
folklore size bound O(n^{1+1/k}) (with the best constants known), at the cost
of reading the entire graph — it is the quality yardstick against which the
LCA spanners' sizes are compared in the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.ids import canonical_edge
from ..graphs.graph import Graph

Edge = Tuple[int, int]


def _bounded_distance(
    adjacency: Dict[int, List[int]], source: int, target: int, limit: int
) -> Optional[int]:
    """Distance between two vertices in the partial spanner, capped at limit."""
    if source == target:
        return 0
    distances = {source: 0}
    queue = deque([source])
    while queue:
        x = queue.popleft()
        dx = distances[x]
        if dx >= limit:
            continue
        for w in adjacency.get(x, ()):  # adjacency of the partial spanner
            if w not in distances:
                distances[w] = dx + 1
                if w == target:
                    return dx + 1
                queue.append(w)
    return None


def greedy_spanner(
    graph: Graph,
    stretch_parameter: int,
    edge_order: Optional[Iterable[Edge]] = None,
) -> Set[Edge]:
    """Compute a greedy (2k−1)-spanner.

    Parameters
    ----------
    graph:
        Input graph.
    stretch_parameter:
        The ``k`` in the (2k−1) stretch target.
    edge_order:
        Optional explicit edge processing order; the default is the canonical
        edge order (sorted by endpoint IDs), which makes the output
        deterministic.

    Returns
    -------
    set of edges
        Spanner edges (canonical tuples).
    """
    limit = 2 * int(stretch_parameter) - 1
    edges = sorted(graph.edges()) if edge_order is None else list(edge_order)
    adjacency: Dict[int, List[int]] = {v: [] for v in graph.vertices()}
    spanner: Set[Edge] = set()
    for (u, v) in edges:
        within = _bounded_distance(adjacency, u, v, limit)
        if within is None:
            spanner.add(canonical_edge(u, v))
            adjacency[u].append(v)
            adjacency[v].append(u)
    return spanner


def greedy_size_bound(num_vertices: int, stretch_parameter: int) -> float:
    """The folklore O(n^{1+1/k}) size bound (without constants)."""
    k = max(1, int(stretch_parameter))
    return float(num_vertices) ** (1.0 + 1.0 / k)
