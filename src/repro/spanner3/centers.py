"""Multiple-center clustering (Idea I of the paper).

The key trick of the 3-spanner LCA is that every vertex ``v`` joins the
clusters of *all* sampled centers among its first ``t`` neighbors, rather
than a single cluster.  The "multiple-center set"

    S(v) = S ∩ {first min(deg(v), t) neighbors of v}

can then be tested for membership with a *single* ``Adjacency`` probe:
``w`` belongs to the cluster of ``s`` iff ``s`` appears within the first
``t`` positions of ``Γ(w)`` and ``s`` elected itself into ``S`` — the latter
is checked from ``s``'s ID alone (Observation 2.3).

:class:`PrefixCenterSystem` packages a center set together with its prefix
length and provides both operations with explicit probe costs.
"""

from __future__ import annotations

from typing import List

from ..core.oracle import AdjacencyListOracle
from ..core.seed import SeedLike
from ..rand.sampler import CenterSampler


class PrefixCenterSystem:
    """A center set ``S`` with prefix-based cluster membership.

    Parameters
    ----------
    seed:
        Seed material for the center election coin flips.
    probability:
        Election probability ``p``.
    prefix:
        The prefix length ``t``: ``S(v)`` consists of sampled vertices among
        the first ``min(deg(v), t)`` neighbors of ``v``.
    independence:
        Independence of the underlying hash family.
    """

    def __init__(
        self, seed: SeedLike, probability: float, prefix: int, independence: int
    ) -> None:
        self.prefix = max(1, int(prefix))
        self.sampler = CenterSampler(seed, probability, independence)

    # ------------------------------------------------------------------ #
    # Probe-free operations
    # ------------------------------------------------------------------ #
    def is_center(self, vertex: int) -> bool:
        """Whether ``vertex ∈ S`` (no probes; Observation 2.3)."""
        return self.sampler.is_center(vertex)

    def is_center_fast(self, oracle: AdjacencyListOracle, vertex: int) -> bool:
        """``is_center`` with the hash evaluation memoized on a cached oracle.

        The election status is a pure function of ``(seed, vertex)`` — its
        memo entry touches no graph state, so mutations never invalidate it;
        the k-wise hash evaluation behind it dominates cold query time, so
        cached oracles remember it per vertex.  Still probe-free.
        """
        if not oracle.supports_memo:
            return self.sampler.is_center(vertex)
        return oracle.cache.memoize(
            (self, "is-center"), vertex, lambda: self.sampler.is_center(vertex)
        )

    def prefix_sets(
        self, oracle: AdjacencyListOracle, vertex: int
    ) -> "tuple[tuple, frozenset, int]":
        """Memoized ``(ordered S(vertex), S(vertex) as a set, prefix length)``.

        Probe-free: reads the neighbor row straight from the oracle cache.
        Callers that expose a probe-counted operation must charge the cold
        schedule themselves (``center_set`` charges 1 Degree + ``scanned``
        Neighbor probes, a cluster-membership test charges 1 Adjacency).
        Requires a cached oracle.  The entry depends on the row of
        ``vertex`` only, so it is lazily invalidated when that row mutates.
        """

        def compute():
            row = oracle.cache.neighbors(vertex)
            scanned = min(len(row), self.prefix)
            ordered = tuple(
                w for w in row[:scanned] if self.is_center_fast(oracle, w)
            )
            return (ordered, frozenset(ordered), scanned)

        return oracle.cache.memoize((self, "prefix-sets"), vertex, compute)

    # ------------------------------------------------------------------ #
    # Probe-counted operations
    # ------------------------------------------------------------------ #
    def center_set(self, oracle: AdjacencyListOracle, vertex: int) -> List[int]:
        """The multiple-center set ``S(vertex)``.

        Costs one ``Degree`` probe plus ``min(deg, prefix)`` ``Neighbor``
        probes.
        """
        if oracle.supports_memo:
            ordered, _, scanned = self.prefix_sets(oracle, vertex)
            oracle.charge(degree=1, neighbor=scanned)
            return list(ordered)
        candidates = oracle.neighbors_prefix(vertex, self.prefix)
        return [w for w in candidates if self.is_center(w)]

    def in_cluster_of(
        self, oracle: AdjacencyListOracle, member: int, center: int
    ) -> bool:
        """Cluster-membership test: is ``center ∈ S(member)``?

        A single ``Adjacency`` probe: ``center`` must appear among the first
        ``prefix`` neighbors of ``member`` (Idea I).  The center's election
        status is checked without probes.
        """
        if not self.is_center_fast(oracle, center):
            return False
        index = oracle.adjacency(member, center)
        return index is not None and index < self.prefix

    def is_center_edge(
        self, oracle: AdjacencyListOracle, u: int, v: int
    ) -> bool:
        """Whether ``(u, v)`` is a center edge: ``v ∈ S(u)`` or ``u ∈ S(v)``.

        These are exactly the "connect every vertex to each of its centers"
        edges of the construction; two ``Adjacency`` probes suffice.
        """
        return self.in_cluster_of(oracle, u, v) or self.in_cluster_of(oracle, v, u)

    # ------------------------------------------------------------------ #
    # Global (probe-free) helpers for the reference construction and tests
    # ------------------------------------------------------------------ #
    def center_set_global(self, graph, vertex: int) -> List[int]:
        """``S(vertex)`` computed directly on the graph (verification only)."""
        neighbors = graph.neighbors(vertex)[: self.prefix]
        return [w for w in neighbors if self.is_center(w)]

    def in_cluster_of_global(self, graph, member: int, center: int) -> bool:
        """Cluster membership computed directly on the graph (verification)."""
        if not self.is_center(center):
            return False
        index = graph.adjacency_index(member, center)
        return index is not None and index < self.prefix
