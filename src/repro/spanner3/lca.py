"""The final 3-spanner LCA (Section 2.4, Theorem 1.1 with r = 2).

Given an edge ``(u, v)`` the algorithm answers YES when any of the following
holds:

1. ``deg(u) ≤ √n`` or ``deg(v) ≤ √n``                                  (H_low)
2. ``u ∈ S(v) ∪ S'(v)`` or ``v ∈ S(u) ∪ S'(u)``                (center edges)
3. the H_high scanning rule keeps the edge                            (H_high)
4. the H_super block rule keeps the edge                             (H_super)

The spanner is the union of the four sub-constructions; per Observation 2.2
its stretch is the maximum over components (3) and its size/probe costs add.
"""

from __future__ import annotations

from typing import Optional

from ..core.lca import CombinedLCA
from ..core.registry import register
from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from .centers import PrefixCenterSystem
from .components import (
    CenterEdgeComponent,
    HighDegreeComponent,
    LowDegreeComponent,
    SuperBlockComponent,
)
from .params import ThreeSpannerParams


class ThreeSpannerLCA(CombinedLCA):
    """LCA for 3-spanners with Õ(n^{3/2}) edges and Õ(n^{3/4}) probes."""

    name = "spanner3"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: Optional[ThreeSpannerParams] = None,
        hitting_constant: float = 2.0,
    ) -> None:
        seed = Seed.of(seed)
        if params is None:
            params = ThreeSpannerParams.for_graph(
                graph.num_vertices, hitting_constant=hitting_constant
            )
        self.params = params

        self.high_centers = PrefixCenterSystem(
            seed=seed.derive("spanner3/high-centers"),
            probability=params.high_center_probability,
            prefix=params.low_threshold,
            independence=params.independence,
        )
        self.super_centers = PrefixCenterSystem(
            seed=seed.derive("spanner3/super-centers"),
            probability=params.super_center_probability,
            prefix=params.super_threshold,
            independence=params.independence,
        )

        components = [
            LowDegreeComponent(graph, seed, threshold=params.low_threshold),
            CenterEdgeComponent(
                graph, seed, systems=[self.high_centers, self.super_centers]
            ),
            HighDegreeComponent(graph, seed, params=params, centers=self.high_centers),
            SuperBlockComponent(
                graph,
                seed,
                threshold=params.super_threshold,
                centers=self.super_centers,
            ),
        ]
        super().__init__(graph, seed, components)

    def stretch_bound(self) -> Optional[int]:
        return 3

    def _kernel_materialize(self, result) -> bool:
        """Array-at-once batched materialization via the numpy kernel layer.

        Evaluates all four components for every edge in one pass of array
        arithmetic (see :mod:`repro.kernels.spanner3`); edges, per-query
        probe totals, per-kind counts and phase attribution are bit-identical
        to the scalar batched engine.  Falls back (``False``) when no kernel
        is selected or the view cannot represent the graph.
        """
        oracle = self._oracle_for("cached")
        kern = oracle.kernel
        if kern is None:
            return False
        return kern.materialize_spanner3(self, oracle, result)


@register("spanner3")
def _make_three_spanner(graph: Graph, seed: SeedLike, **kwargs) -> ThreeSpannerLCA:
    return ThreeSpannerLCA(graph, seed, **kwargs)
