"""The three sub-constructions of the 3-spanner LCA (Sections 2.1–2.3).

Each component is itself a :class:`~repro.core.lca.SpannerLCA`; the final
3-spanner LCA is their union (Observation 2.2).  All components derive every
random choice from the master seed, so the union is consistent with one fixed
spanner.

* :class:`LowDegreeComponent` — H_low: keep every edge with a low-degree
  endpoint (two ``Degree`` probes).
* :class:`HighDegreeComponent` — H_high: multiple-center clustering over the
  first √n neighbors; an edge is kept when the far endpoint introduces a new
  cluster among the scanning endpoint's earlier neighbors.
* :class:`SuperBlockComponent` — H_super: neighborhood partitioning into
  blocks of size n^{3/4}; the new-cluster rule is applied within the block
  containing the far endpoint only.  The same component, instantiated with
  threshold ``n^{1-1/(2r)}``, is reused by the 5-spanner construction
  (Section 3) — the paper's "upon replacing the degree threshold" remark.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.lca import SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.seed import SeedLike
from ..graphs.graph import Graph
from ..rand.kwise import recommended_independence
from ..rand.sampler import hitting_probability
from .centers import PrefixCenterSystem
from .params import ThreeSpannerParams


def _new_cluster_scan_fast(
    oracle: AdjacencyListOracle,
    centers: PrefixCenterSystem,
    w: int,
    x: int,
    index: int,
    start: int,
    block: Optional[int] = None,
) -> bool:
    """The memoized new-cluster scan shared by H_high and H_super.

    Evaluates "does ``x`` (at position ``index`` of Γ(w)) introduce a center
    not covered by the neighbors at positions ``start .. index-1``?" on a
    cached oracle, charging exactly the cold probe schedule: the
    ``center_set(x)`` cost up front, then per scanned neighbor one
    ``Neighbor`` probe plus one ``Adjacency`` probe per still-remaining
    center (every remaining vertex is an elected center, so the cold
    ``in_cluster_of`` filter always spends its ``Adjacency`` probe).  The
    filter itself is a set difference against the memoized ``S(neighbor)``.

    ``block`` names the scan-window variant for the vectorized kernel
    (``None`` = whole-row H_high windows, else the H_super block size with
    ``start == (index // block) * block``); when a kernel is attached the
    answer and the exact charge schedule come from its precomputed tables.
    """
    kern = getattr(oracle, "kernel", None)
    if kern is not None:
        verdict = kern.scan_profile(oracle, centers, w, x, index, block)
        if verdict is not None:
            return verdict
    # Probe attribution: the whole scan window is the "neighbor-scan" phase.
    profiler = getattr(oracle, "profiler", None)
    frame = (
        profiler.begin_phase("neighbor-scan", oracle.counter)
        if profiler is not None
        else None
    )
    _, centers_of_x, scanned = centers.prefix_sets(oracle, x)
    oracle.charge(degree=1, neighbor=scanned)
    if not centers_of_x:
        if frame is not None:
            profiler.end_phase(frame)
        return False
    remaining = set(centers_of_x)
    row = oracle.cache.neighbors(w)
    neighbor_probes = 0
    adjacency_probes = 0
    for j in range(start, index):
        if not remaining:
            break
        neighbor_probes += 1
        adjacency_probes += len(remaining)
        remaining -= centers.prefix_sets(oracle, row[j])[1]
    oracle.charge(neighbor=neighbor_probes, adjacency=adjacency_probes)
    if frame is not None:
        profiler.end_phase(frame)
    return bool(remaining)


class LowDegreeComponent(SpannerLCA):
    """H_low: keep every edge incident to a vertex of degree ≤ threshold."""

    name = "spanner3-low"

    def __init__(self, graph: Graph, seed: SeedLike, threshold: int) -> None:
        super().__init__(graph, seed)
        self.threshold = int(threshold)

    def stretch_bound(self) -> Optional[int]:
        return 1

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return (
            oracle.degree(u) <= self.threshold
            or oracle.degree(v) <= self.threshold
        )


class CenterEdgeComponent(SpannerLCA):
    """Keep the edges connecting every vertex to each of its centers.

    This corresponds to the "u ∈ S(v) ∪ S'(v) (or vice versa)" clause of the
    final LCA in Section 2.4; it is shared by H_high and H_super, so it is a
    separate component that the combined LCA includes once.
    """

    name = "spanner3-center-edges"

    def __init__(
        self, graph: Graph, seed: SeedLike, systems: List[PrefixCenterSystem]
    ) -> None:
        super().__init__(graph, seed)
        self.systems = list(systems)

    def stretch_bound(self) -> Optional[int]:
        return 1

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return any(system.is_center_edge(oracle, u, v) for system in self.systems)


class HighDegreeComponent(SpannerLCA):
    """H_high (Section 2.2): new-cluster rule over the full neighbor list.

    The global construction: every vertex ``w`` with ``√n < deg(w) ≤ n^{3/4}``
    scans its neighbor list in order and keeps the edge to a neighbor that
    introduces a center not seen among earlier neighbors.  The LCA answers a
    query ``(u, v)`` by evaluating this rule in both directions.
    """

    name = "spanner3-high"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: ThreeSpannerParams,
        centers: PrefixCenterSystem,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.centers = centers

    def stretch_bound(self) -> Optional[int]:
        return 3

    # The scanning rule, evaluated for scanner ``w`` and far endpoint ``x``.
    def _kept_by_scan(self, oracle: AdjacencyListOracle, w: int, x: int) -> bool:
        if oracle.supports_memo:
            return self._kept_by_scan_fast(oracle, w, x)
        degree_w = oracle.degree(w)
        if not self.params.is_high_degree(degree_w):
            return False
        index = oracle.adjacency(w, x)
        if index is None:
            return False
        centers_of_x = self.centers.center_set(oracle, x)
        if not centers_of_x:
            return False
        remaining = set(centers_of_x)
        for j in range(index):
            if not remaining:
                return False
            earlier = oracle.neighbor(w, j)
            if earlier is None:
                break
            remaining = {
                s for s in remaining
                if not self.centers.in_cluster_of(oracle, earlier, s)
            }
        return bool(remaining)

    def _kept_by_scan_fast(self, oracle: AdjacencyListOracle, w: int, x: int) -> bool:
        """The scanning rule on a cached oracle (see _new_cluster_scan_fast)."""
        degree_w = oracle.degree(w)
        if not self.params.is_high_degree(degree_w):
            return False
        index = oracle.adjacency(w, x)
        if index is None:
            return False
        return _new_cluster_scan_fast(
            oracle, self.centers, w, x, index, 0, block=None
        )

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return self._kept_by_scan(oracle, u, v) or self._kept_by_scan(oracle, v, u)


class SuperBlockComponent(SpannerLCA):
    """H_super (Section 2.3): the new-cluster rule restricted to one block.

    Parameters
    ----------
    threshold:
        Block size and center-prefix length (``n^{3/4}`` for the 3-spanner,
        ``n^{1-1/(2r)}`` in the generalized use of Section 3).
    centers:
        The prefix center system built from ``S'``.
    """

    name = "spanner3-super"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        threshold: int,
        centers: PrefixCenterSystem,
    ) -> None:
        super().__init__(graph, seed)
        self.threshold = max(1, int(threshold))
        self.centers = centers

    def stretch_bound(self) -> Optional[int]:
        return 3

    @classmethod
    def with_defaults(
        cls,
        graph: Graph,
        seed: SeedLike,
        threshold: int,
        hitting_constant: float = 2.0,
        independence: Optional[int] = None,
        role: str = "super-centers",
    ) -> "SuperBlockComponent":
        """Build a standalone block component with its own center set ``S'``."""
        n = graph.num_vertices
        if independence is None:
            independence = recommended_independence(n)
        probability = hitting_probability(threshold, n, hitting_constant)
        centers = PrefixCenterSystem(
            seed=SeedLikeDeriver.derive(seed, role),
            probability=probability,
            prefix=threshold,
            independence=independence,
        )
        return cls(graph, seed, threshold, centers)

    def _kept_by_scan(self, oracle: AdjacencyListOracle, w: int, x: int) -> bool:
        if oracle.supports_memo:
            return self._kept_by_scan_fast(oracle, w, x)
        index = oracle.adjacency(w, x)
        if index is None:
            return False
        centers_of_x = self.centers.center_set(oracle, x)
        if not centers_of_x:
            return False
        block_start = (index // self.threshold) * self.threshold
        remaining = set(centers_of_x)
        for j in range(block_start, index):
            if not remaining:
                return False
            earlier = oracle.neighbor(w, j)
            if earlier is None:
                break
            remaining = {
                s for s in remaining
                if not self.centers.in_cluster_of(oracle, earlier, s)
            }
        return bool(remaining)

    def _kept_by_scan_fast(self, oracle: AdjacencyListOracle, w: int, x: int) -> bool:
        """Block-restricted scan on a cached oracle: starts at the block
        boundary instead of position 0 (see _new_cluster_scan_fast)."""
        index = oracle.adjacency(w, x)
        if index is None:
            return False
        block_start = (index // self.threshold) * self.threshold
        return _new_cluster_scan_fast(
            oracle, self.centers, w, x, index, block_start, block=self.threshold
        )

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return self._kept_by_scan(oracle, u, v) or self._kept_by_scan(oracle, v, u)


class SeedLikeDeriver:
    """Small helper turning any seed-like value into a derived child seed."""

    @staticmethod
    def derive(seed: SeedLike, label: str):
        from ..core.seed import Seed

        return Seed.of(seed).derive(label)
