"""LCA for 3-spanners (Section 2 of the paper; Theorem 1.1 with r = 2)."""

from .ablation import NaiveSingleCenterLCA, SingleCenterSystem
from .centers import PrefixCenterSystem
from .components import (
    CenterEdgeComponent,
    HighDegreeComponent,
    LowDegreeComponent,
    SuperBlockComponent,
)
from .lca import ThreeSpannerLCA
from .params import ThreeSpannerParams
from .reference import build_reference_spanner, classify_edges

__all__ = [
    "NaiveSingleCenterLCA",
    "SingleCenterSystem",
    "PrefixCenterSystem",
    "LowDegreeComponent",
    "CenterEdgeComponent",
    "HighDegreeComponent",
    "SuperBlockComponent",
    "ThreeSpannerLCA",
    "ThreeSpannerParams",
    "build_reference_spanner",
    "classify_edges",
]
