"""Global (non-local) reference construction of the 3-spanner.

The paper's LCA is *defined* through a global construction that is never
executed; the LCA answers queries consistently with it.  This module executes
that global construction directly on the full graph, using the same seed and
the same derived center sets as :class:`~repro.spanner3.lca.ThreeSpannerLCA`.
Tests compare the edge set produced here against the edge set obtained by
querying the LCA on every edge: the two must be identical, which is a strong
end-to-end check of the consistency contract.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..core.ids import canonical_edge
from ..graphs.graph import Graph
from .lca import ThreeSpannerLCA

Edge = Tuple[int, int]


def build_reference_spanner(lca: ThreeSpannerLCA) -> Set[Edge]:
    """Run the global Section-2 construction with the LCA's own randomness."""
    graph = lca.graph
    params = lca.params
    high_centers = lca.high_centers
    super_centers = lca.super_centers

    spanner: Set[Edge] = set()

    # ------------------------------------------------------------------ #
    # H_low: all edges with a low-degree endpoint.
    # ------------------------------------------------------------------ #
    for (u, v) in graph.edges():
        if (
            graph.degree(u) <= params.low_threshold
            or graph.degree(v) <= params.low_threshold
        ):
            spanner.add(canonical_edge(u, v))

    # ------------------------------------------------------------------ #
    # Center edges: v connected to every member of S(v) and S'(v).
    # ------------------------------------------------------------------ #
    for v in graph.vertices():
        for system in (high_centers, super_centers):
            for s in system.center_set_global(graph, v):
                spanner.add(canonical_edge(v, s))

    # Cache the multiple-center sets; they are reused many times below.
    high_sets: Dict[int, Set[int]] = {
        v: set(high_centers.center_set_global(graph, v)) for v in graph.vertices()
    }
    super_sets: Dict[int, Set[int]] = {
        v: set(super_centers.center_set_global(graph, v)) for v in graph.vertices()
    }

    # ------------------------------------------------------------------ #
    # H_high: every vertex of high (but not super-high) degree scans its
    # neighbor list and keeps edges to neighbors introducing a new center.
    # ------------------------------------------------------------------ #
    for w in graph.vertices():
        if not params.is_high_degree(graph.degree(w)):
            continue
        seen: Set[int] = set()
        for x in graph.neighbors(w):
            if high_sets[x] - seen:
                spanner.add(canonical_edge(w, x))
            seen |= high_sets[x]

    # ------------------------------------------------------------------ #
    # H_super: every vertex scans each block of size n^{3/4} independently.
    # ------------------------------------------------------------------ #
    block = params.super_threshold
    for w in graph.vertices():
        neighbors: List[int] = list(graph.neighbors(w))
        for start in range(0, len(neighbors), block):
            seen_block: Set[int] = set()
            for x in neighbors[start : start + block]:
                if super_sets[x] - seen_block:
                    spanner.add(canonical_edge(w, x))
                seen_block |= super_sets[x]

    return spanner


def classify_edges(lca: ThreeSpannerLCA) -> Dict[str, int]:
    """Count edges in each class of the Section 2.1 partition (for reports)."""
    graph = lca.graph
    params = lca.params
    counts = {"low": 0, "high": 0, "super": 0}
    for (u, v) in graph.edges():
        counts[params.classify_edge(graph.degree(u), graph.degree(v))] += 1
    return counts
