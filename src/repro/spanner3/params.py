"""Parameters of the 3-spanner LCA (Section 2).

The construction classifies vertices by degree:

* *low degree*: ``deg(v) ≤ √n`` — all incident edges are kept (H_low),
* *high degree*: ``√n < deg(v) ≤ n^{3/4}`` — handled by H_high,
* *super-high degree*: ``deg(v) > n^{3/4}`` — handled by H_super.

Two center sets are sampled: ``S`` with probability Θ(log n / √n) (so every
high-degree vertex sees Θ(log n) centers among its first √n neighbors) and
``S'`` with probability Θ(log n / n^{3/4}) (hitting the first n^{3/4}
neighbors of the super-high-degree vertices).

All thresholds and probabilities live in :class:`ThreeSpannerParams` so tests
can tighten or loosen the logarithmic constants; the defaults follow the
paper with a hitting constant of 2·ln n.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import ParameterError
from ..rand.kwise import recommended_independence
from ..rand.sampler import hitting_probability


@dataclass(frozen=True)
class ThreeSpannerParams:
    """Concrete thresholds and probabilities for a given graph size ``n``."""

    num_vertices: int
    #: Degree threshold √n below which every incident edge is kept (E_low).
    low_threshold: int
    #: Degree threshold n^{3/4} above which a vertex is "super-high degree".
    super_threshold: int
    #: Election probability of the center set S (Θ(log n / √n)).
    high_center_probability: float
    #: Election probability of the center set S' (Θ(log n / n^{3/4})).
    super_center_probability: float
    #: Independence of the hash families (Θ(log n), Section 5).
    independence: int

    @classmethod
    def for_graph(
        cls,
        num_vertices: int,
        hitting_constant: float = 2.0,
        independence: int | None = None,
    ) -> "ThreeSpannerParams":
        """Derive the paper's parameters from the graph size.

        Parameters
        ----------
        num_vertices:
            ``n``; known to the algorithm in the LCA model.
        hitting_constant:
            The constant ``c`` in the Θ(c·log n / Δ) sampling probabilities.
        independence:
            Hash-family independence; defaults to Θ(log n).
        """
        if num_vertices < 1:
            raise ParameterError("the graph must have at least one vertex")
        n = int(num_vertices)
        low = max(1, int(math.ceil(math.sqrt(n))))
        super_ = max(low, int(math.ceil(n ** 0.75)))
        if independence is None:
            independence = recommended_independence(n)
        return cls(
            num_vertices=n,
            low_threshold=low,
            super_threshold=super_,
            high_center_probability=hitting_probability(low, n, hitting_constant),
            super_center_probability=hitting_probability(super_, n, hitting_constant),
            independence=int(independence),
        )

    # ------------------------------------------------------------------ #
    # Degree classification helpers (Section 2.1)
    # ------------------------------------------------------------------ #
    def is_low_degree(self, degree: int) -> bool:
        """``deg(v) ≤ √n``."""
        return degree <= self.low_threshold

    def is_high_degree(self, degree: int) -> bool:
        """``√n < deg(v) ≤ n^{3/4}``."""
        return self.low_threshold < degree <= self.super_threshold

    def is_super_degree(self, degree: int) -> bool:
        """``deg(v) > n^{3/4}``."""
        return degree > self.super_threshold

    def classify_edge(self, degree_u: int, degree_v: int) -> str:
        """Return 'low', 'high' or 'super' per the E_low/E_high/E_super split."""
        minimum = min(degree_u, degree_v)
        if minimum <= self.low_threshold:
            return "low"
        if minimum <= self.super_threshold:
            return "high"
        return "super"

    # ------------------------------------------------------------------ #
    # Theoretical targets (used by benchmarks for the "shape" comparison)
    # ------------------------------------------------------------------ #
    def expected_edge_bound(self) -> float:
        """The Õ(n^{3/2}) target size (without logarithmic factors)."""
        return float(self.num_vertices) ** 1.5

    def expected_probe_bound(self) -> float:
        """The Õ(n^{3/4}) target probe complexity (without log factors)."""
        return float(self.num_vertices) ** 0.75
