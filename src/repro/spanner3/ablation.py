"""Ablation of Idea I: the naïve single-center construction.

Section 1.2.1 of the paper first describes "the naïve approach for
3-spanners and its shortcoming": give every high-degree vertex a *single*
cluster center (its first sampled neighbor) and connect each vertex to the
first neighbor of every cluster it sees.  The construction is correct, but a
cluster-membership test then costs Θ(√n) probes (one has to scan the first
√n neighbors of the candidate looking for its center), so a query costs
Θ(deg(v) · √n) probes.  Idea I — letting every vertex join *all* sampled
centers among its first √n neighbors — brings the membership test down to a
single ``Adjacency`` probe.

This module implements the naïve variant so the benchmark
``bench_ablation_ideas`` can measure the probe gap directly; it is not part
of the recommended API.
"""

from __future__ import annotations

from typing import Optional

from ..core.lca import CombinedLCA, SpannerLCA
from ..core.oracle import AdjacencyListOracle
from ..core.registry import register
from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from .centers import PrefixCenterSystem
from .components import CenterEdgeComponent, LowDegreeComponent
from .params import ThreeSpannerParams


class SingleCenterSystem:
    """Single-center clustering: c(v) = first sampled vertex in Γ(v)'s prefix.

    Unlike :class:`PrefixCenterSystem`, testing whether ``w`` belongs to the
    cluster of ``s`` requires recomputing ``c(w)``, i.e. scanning ``w``'s
    prefix — Θ(√n) probes instead of one.
    """

    def __init__(self, seed: SeedLike, probability: float, prefix: int, independence: int) -> None:
        self._prefix_system = PrefixCenterSystem(seed, probability, prefix, independence)
        self.prefix = self._prefix_system.prefix

    def is_center(self, vertex: int) -> bool:
        return self._prefix_system.is_center(vertex)

    def center_of(self, oracle: AdjacencyListOracle, vertex: int) -> Optional[int]:
        """The single center of ``vertex``: its first sampled prefix neighbor."""
        for neighbor in oracle.neighbors_prefix(vertex, self.prefix):
            if self.is_center(neighbor):
                return neighbor
        return None

    def in_cluster_of(self, oracle: AdjacencyListOracle, member: int, center: int) -> bool:
        """Membership test by recomputation — the Θ(√n)-probe operation."""
        return self.center_of(oracle, member) == center

    def is_center_edge(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return self.center_of(oracle, u) == v or self.center_of(oracle, v) == u


class NaiveHighDegreeComponent(SpannerLCA):
    """The naïve scanning rule: keep (w, x) when x's *single* cluster is new."""

    name = "spanner3-naive-high"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: ThreeSpannerParams,
        centers: SingleCenterSystem,
    ) -> None:
        super().__init__(graph, seed)
        self.params = params
        self.centers = centers

    def stretch_bound(self) -> Optional[int]:
        return 3

    def _kept_by_scan(self, oracle: AdjacencyListOracle, w: int, x: int) -> bool:
        degree_w = oracle.degree(w)
        if degree_w <= self.params.low_threshold:
            return False
        if degree_w > self.params.super_threshold:
            return False
        index = oracle.adjacency(w, x)
        if index is None:
            return False
        center_x = self.centers.center_of(oracle, x)
        if center_x is None:
            return False
        # Is x the first neighbor of w whose (single) cluster is center_x?
        for j in range(index):
            earlier = oracle.neighbor(w, j)
            if earlier is None:
                break
            if self.centers.in_cluster_of(oracle, earlier, center_x):
                return False
        return True

    def _decide(self, oracle: AdjacencyListOracle, u: int, v: int) -> bool:
        return self._kept_by_scan(oracle, u, v) or self._kept_by_scan(oracle, v, u)


class NaiveSingleCenterLCA(CombinedLCA):
    """The full naïve 3-spanner LCA used as an ablation baseline.

    Correct (stretch ≤ 3 for the edges it is responsible for, E_low and
    center edges keep the rest at small scale) but with Θ(deg · √n) probe
    cost per query — the quantity Idea I removes.
    """

    name = "spanner3-naive"

    def __init__(
        self,
        graph: Graph,
        seed: SeedLike,
        params: Optional[ThreeSpannerParams] = None,
        hitting_constant: float = 2.0,
    ) -> None:
        seed = Seed.of(seed)
        if params is None:
            params = ThreeSpannerParams.for_graph(
                graph.num_vertices, hitting_constant=hitting_constant
            )
        self.params = params
        self.centers = SingleCenterSystem(
            seed=seed.derive("spanner3-naive/centers"),
            probability=params.high_center_probability,
            prefix=params.low_threshold,
            independence=params.independence,
        )
        components = [
            LowDegreeComponent(graph, seed, threshold=params.low_threshold),
            _SingleCenterEdges(graph, seed, self.centers),
            NaiveHighDegreeComponent(graph, seed, params=params, centers=self.centers),
        ]
        super().__init__(graph, seed, components)

    def stretch_bound(self) -> Optional[int]:
        return 3


class _SingleCenterEdges(CenterEdgeComponent):
    """Center edges of the single-center system (interface-compatible)."""

    name = "spanner3-naive-center-edges"

    def __init__(self, graph: Graph, seed: SeedLike, system: SingleCenterSystem) -> None:
        super().__init__(graph, seed, systems=[system])


@register("spanner3-naive")
def _make_naive_three_spanner(
    graph: Graph, seed: SeedLike, **kwargs
) -> NaiveSingleCenterLCA:
    return NaiveSingleCenterLCA(graph, seed, **kwargs)
