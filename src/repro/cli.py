"""Command-line interface.

The CLI wraps the most common workflows so the library can be exercised
without writing Python:

* ``repro-lca query``      — answer spanner queries for specific edges,
* ``repro-lca materialize``— query every edge and report/export the spanner,
* ``repro-lca evaluate``   — materialize + verify an LCA on a graph,
* ``repro-lca generate``   — write one of the built-in synthetic workloads,
* ``repro-lca sweep``      — size/probe scaling sweep with exponent fits,
* ``repro-lca lowerbound`` — the Theorem 1.3 distinguishing experiment,
* ``repro-lca serve-bench``— run the online query service on a workload,
* ``repro-lca mutate``     — apply edge mutations to a graph file,
* ``repro-lca report``     — run declarative scenario specs and render the
  Markdown report (``report run`` / ``report render``, see ``docs/reports.md``),
* ``repro-lca trace``      — summarize a JSONL span trace and/or convert it
  to Chrome ``trace_event`` JSON (see ``docs/observability.md``),
* ``repro-lca lint``       — AST contract checker enforcing the repo's
  determinism/observability/layering invariants (see ``docs/lint.md``),
* ``repro-lca list``       — list the registered constructions.

Graphs are read from edge-list files (see :mod:`repro.graphs.io`) or
generated on the fly with ``--generate``.

Usage examples::

    python -m repro.cli list
    python -m repro.cli generate --family gnp --n 400 --density 0.1 --out g.txt
    python -m repro.cli evaluate --graph g.txt --algorithm spanner3 --seed 7
    python -m repro.cli evaluate --graph g.txt --backend csr --query-mode batched
    python -m repro.cli query --graph g.txt --algorithm spanner5 --edge 3,17 --edge 5,8
    python -m repro.cli query --graph g.txt --query-mode cold --edge 3,17
    python -m repro.cli sweep --algorithm spanner3 --sizes 200,400,800
    python -m repro.cli lowerbound --n 202 --budget 14 --trials 10
    python -m repro.cli materialize --generate gnp --n 400 --density 0.1 \
        --algorithm spanner3 --executor process --workers 4
    python -m repro.cli serve-bench --generate gnp --n 300 --density 0.08 \
        --workload zipf --requests 2000 --shards 4 --batch-size 32 \
        --executor thread
    python -m repro.cli serve-bench --generate gnp --n 300 --density 0.08 \
        --workload churn --requests 2000 --shards 4 --replication 2 \
        --crashes 4 --flaky 2 --fault-seed 9
    python -m repro.cli serve-bench --generate gnp --n 300 --density 0.08 \
        --workload zipf --requests 2000 --shards 4 \
        --trace-out spans.jsonl --trace-chrome trace.json --metrics-out m.json
    python -m repro.cli trace spans.jsonl --chrome trace.json
    python -m repro.cli report run scenarios/smoke.toml --smoke
    python -m repro.cli report render --out report.md

``--backend {dict,csr}`` picks the graph storage backend,
``--query-mode {cold,cached,batched}`` the query engine, and
``--executor {serial,thread,process}`` / ``--workers N`` the parallel
execution backend (``serve-bench`` accepts serial/thread); all are
performance knobs only — answers and probe accounting are identical.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from . import graphs
from .analysis import evaluate_lca, exponent_row, format_table, run_sweep
from .core.errors import GraphError, UnknownVertexError
from .core.registry import available, create
from .exec import EXECUTOR_BACKENDS, PINNED_BACKENDS
from .faults import FaultPlan, FaultPlanError
from .graphs.io import read_edge_list, write_edge_list
from .kernels import KERNELS, KernelUnavailableError
from .lowerbound import run_distinguishing_experiment
from .service import (
    DEGRADED_MODES,
    ROUTING_POLICIES,
    WORKLOAD_KINDS,
    ServiceConfig,
    ServiceEngine,
    make_workload,
)


# --------------------------------------------------------------------------- #
# Graph acquisition
# --------------------------------------------------------------------------- #
#: The named graph families, shared with the experiment plane
#: (:mod:`repro.graphs.generators` owns the registry).
GENERATORS = graphs.FAMILY_BUILDERS


def _load_graph(args) -> graphs.Graph:
    if getattr(args, "mmap", None):
        if getattr(args, "graph", None) or getattr(args, "generate", None):
            raise SystemExit("--mmap loads a CSR snapshot; drop --graph/--generate")
        if getattr(args, "backend", None):
            raise SystemExit(
                "--mmap maps a read-only CSR snapshot in place; drop --backend"
            )
        from .scale import load_csr_snapshot

        try:
            return load_csr_snapshot(args.mmap)
        except (RuntimeError, GraphError) as exc:
            raise SystemExit(f"--mmap: {exc}")
    if getattr(args, "graph", None):
        if getattr(args, "stream", False):
            raise SystemExit(
                "--stream selects a chunk-emitting generator family; it does "
                "not apply to --graph files (see read_edge_list_stream)"
            )
        graph = read_edge_list(args.graph)
    else:
        family = getattr(args, "generate", None) or "gnp"
        if getattr(args, "stream", False) and not family.endswith("-stream"):
            candidate = f"{family}-stream"
            if candidate not in GENERATORS:
                raise SystemExit(
                    f"--stream: family {family!r} has no streaming variant; "
                    f"streaming families: {sorted(graphs.STREAM_FAMILIES)}"
                )
            family = candidate
        if family not in GENERATORS:
            raise SystemExit(
                f"unknown graph family {family!r}; choices: {sorted(GENERATORS)}"
            )
        graph = graphs.build_family(family, args.n, density=args.density, seed=args.seed)
    backend = getattr(args, "backend", None)
    if backend:
        graph = graph.to_backend(backend)
    return graph


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (--workers, --max-inflight).

    Rejecting 0/negative values here turns what used to be a deep traceback
    from the executor layer into a one-line argparse usage error.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_edges(values: Sequence[str]) -> List[Tuple[int, int]]:
    edges = []
    for value in values:
        parts = value.replace(",", " ").split()
        if len(parts) != 2:
            raise SystemExit(f"cannot parse edge {value!r}; expected 'u,v'")
        edges.append((int(parts[0]), int(parts[1])))
    return edges


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def cmd_list(_args) -> int:
    rows = [{"algorithm": name} for name in available()]
    print(format_table(rows, title="Registered LCA constructions"))
    return 0


def cmd_generate(args) -> int:
    if not args.out and not args.snapshot_out:
        raise SystemExit("generate: pass --out and/or --snapshot-out")
    graph = _load_graph(args)
    if args.out:
        write_edge_list(graph, args.out)
        print(f"wrote {graph} to {args.out}")
    if args.snapshot_out:
        from .scale import save_csr_snapshot

        save_csr_snapshot(graph, args.snapshot_out)
        print(f"wrote CSR snapshot of {graph} to {args.snapshot_out}")
    return 0


def cmd_query(args) -> int:
    graph = _load_graph(args)
    lca = _apply_kernel(create(args.algorithm, graph, seed=args.seed), args)
    lca = _apply_memo_cap(lca, args)
    # "batched" is a materialization engine; individual queries fall back to
    # the cached engine (same answers, same per-query probe accounting).
    lca.set_query_mode("cold" if args.query_mode == "cold" else "cached")
    edges = _parse_edges(args.edge) if args.edge else list(graph.edges())[: args.count]
    rows = []
    for (u, v) in edges:
        outcome = lca.query_with_stats(u, v)
        rows.append(
            {
                "edge": f"({u}, {v})",
                "in spanner": outcome.in_spanner,
                "probes": outcome.probe_total,
            }
        )
    print(format_table(rows, title=f"{args.algorithm} on {graph}"))
    return 0


def _check_executor_mode(args) -> None:
    if args.executor and args.query_mode != "batched":
        raise SystemExit(
            "--executor always runs the batched engine; drop --query-mode "
            f"{args.query_mode!r} or drop --executor"
        )


def cmd_materialize(args) -> int:
    _check_executor_mode(args)
    graph = _load_graph(args)
    lca = _apply_kernel(create(args.algorithm, graph, seed=args.seed), args)
    lca = _apply_memo_cap(lca, args)
    if args.executor:
        spanner = lca.materialize(executor=args.executor, workers=args.workers)
    else:
        spanner = lca.materialize(mode=args.query_mode)
    stats = spanner.probe_stats
    rows = [
        {
            "algorithm": spanner.algorithm,
            "n": graph.num_vertices,
            "m": graph.num_edges,
            "|H|": spanner.num_edges,
            "executor": args.executor or "in-process",
            "max probes": stats.max,
            "mean probes": round(stats.mean, 1),
        }
    ]
    print(format_table(rows, title=f"{args.algorithm} materialization"))
    if args.out:
        write_edge_list(spanner.as_graph(graph), args.out)
        print(f"wrote spanner edge list ({spanner.num_edges} edges) to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    _check_executor_mode(args)
    graph = _load_graph(args)
    lca = _apply_kernel(create(args.algorithm, graph, seed=args.seed), args)
    lca = _apply_memo_cap(lca, args)
    report = evaluate_lca(
        lca,
        sample_stretch_edges=args.stretch_sample,
        mode=args.query_mode,
        executor=args.executor,
        workers=args.workers,
    )
    print(format_table([report.as_row()], title=f"{args.algorithm} evaluation"))
    if not report.stretch_ok:
        print("WARNING: measured stretch exceeds the declared bound", file=sys.stderr)
        return 1
    return 0


def cmd_sweep(args) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    sweep = run_sweep(
        args.algorithm,
        lca_factory=lambda g, s: create(args.algorithm, g, seed=s),
        graph_factory=lambda n, s: graphs.gnp_graph(n, args.density, seed=s),
        sizes=sizes,
        seed=args.seed,
        materialize=False,
        probe_queries=args.queries,
    )
    print(format_table(sweep.rows(), title=f"{args.algorithm} scaling sweep"))
    print(
        format_table(
            [
                exponent_row(
                    sweep,
                    target_size_exponent=args.target_size_exponent,
                    target_probe_exponent=args.target_probe_exponent,
                )
            ],
            title="Fitted exponents",
        )
    )
    return 0


def _build_fault_plan(args) -> Optional[FaultPlan]:
    """Resolve serve-bench fault flags into a plan (file wins over knobs)."""
    if args.fault_plan:
        try:
            return FaultPlan.from_file(args.fault_plan)
        except (FaultPlanError, OSError, ValueError) as exc:
            raise SystemExit(f"serve-bench: --fault-plan: {exc}")
    if args.crashes or args.shard_losses or args.slow or args.flaky:
        return FaultPlan.generate(
            args.fault_seed,
            num_shards=args.shards,
            replication=args.replication,
            horizon=args.fault_horizon,
            crashes=args.crashes,
            shard_losses=args.shard_losses,
            slow=args.slow,
            flaky=args.flaky,
        )
    return None


def cmd_serve_bench(args) -> int:
    graph = _load_graph(args)
    workload_options = {}
    if args.workload == "trace":
        if not args.trace:
            raise SystemExit("--trace FILE is required for the trace workload")
        workload_options["path"] = args.trace
    if args.workload == "zipf":
        workload_options["skew"] = args.skew
    if args.workload == "churn":
        workload_options["write_ratio"] = args.write_ratio
    try:
        workload = make_workload(
            args.workload,
            graph,
            num_requests=args.requests,
            seed=args.workload_seed,
            **workload_options,
        )
    except OSError as exc:
        raise SystemExit(f"serve-bench: cannot read trace: {exc}")
    except ValueError as exc:
        raise SystemExit(f"serve-bench: {exc}")
    fault_plan = _build_fault_plan(args)
    config = ServiceConfig(
        num_shards=args.shards,
        routing=args.routing,
        batch_size=args.batch_size,
        max_queue_depth=args.queue_depth,
        arrival_burst=args.arrival_burst,
        coalesce=not args.no_coalesce,
        record=False,
        executor=args.executor,
        workers=args.workers,
        max_inflight=args.max_inflight,
        replication=args.replication,
        fault_plan=fault_plan,
        max_retries=args.max_retries,
        timeout_ticks=args.timeout_ticks,
        degraded_mode=args.degraded_mode,
        kernel=args.kernel,
    )
    try:
        engine = ServiceEngine(
            graph, lambda g: create(args.algorithm, g, seed=args.seed), config
        )
    except KernelUnavailableError as exc:
        raise SystemExit(f"serve-bench: {exc}")
    tracer = profiler = None
    if args.trace_out or args.trace_chrome:
        from .obs import SpanTracer

        tracer = SpanTracer()
    if args.metrics_out:
        from .obs import ProbeProfiler

        profiler = ProbeProfiler()
    try:
        report = engine.run(workload, tracer=tracer, profiler=profiler)
    except FaultPlanError as exc:
        raise SystemExit(f"serve-bench: {exc}")
    print(format_table([report.as_row()], title="Service run"))
    shard_rows = [
        {
            "shard": r.shard_id,
            "requests": r.requests,
            "probes": r.probes.total,
            "cache hits": r.cache_hits,
            "hit rate": round(r.cache_hit_rate, 3),
        }
        for r in report.shard_reports
    ]
    print(format_table(shard_rows, title="Per-shard telemetry"))
    if report.faults:
        fault_row = {"availability": round(report.availability, 4)}
        fault_row.update(report.faults)
        print(format_table([fault_row], title="Fault plane"))
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"wrote report to {args.json}")
    try:
        if args.trace_out:
            from .obs import write_trace_jsonl

            count = write_trace_jsonl(args.trace_out, tracer)
            print(f"wrote {count} spans to {args.trace_out}")
        if args.trace_chrome:
            from .obs import write_chrome_trace

            count = write_chrome_trace(args.trace_chrome, tracer)
            print(f"wrote Chrome trace ({count} events) to {args.trace_chrome}")
        if args.metrics_out:
            import json

            from .obs import collect_run_metrics

            snapshot = collect_run_metrics(report, profiler).snapshot()
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(
                f"wrote {len(snapshot['metrics'])} metrics to {args.metrics_out}"
            )
    except OSError as exc:
        raise SystemExit(f"serve-bench: {exc}")
    return 0


def cmd_trace(args) -> int:
    from .obs import read_trace_jsonl, summarize_spans, write_chrome_trace

    try:
        records = read_trace_jsonl(args.file)
    except ValueError as exc:
        raise SystemExit(f"trace: {exc}")
    rows = [
        {
            "cat": row["cat"],
            "span": row["name"],
            "count": row["count"],
            "ticks": row["ticks"],
            "max ticks": row["max_ticks"],
        }
        for row in summarize_spans(records)
    ]
    if rows:
        print(format_table(rows, title=f"Trace summary ({len(records)} spans)"))
    else:
        print("trace summary: 0 spans")
    if args.chrome:
        try:
            count = write_chrome_trace(args.chrome, records)
        except OSError as exc:
            raise SystemExit(f"trace: {exc}")
        print(f"wrote Chrome trace ({count} events) to {args.chrome}")
    return 0


def cmd_mutate(args) -> int:
    graph = _load_graph(args)
    ops: List[Tuple[str, int, int]] = []
    if args.ops:
        from .service import read_trace_ops

        ops.extend(
            (record.op, record.u, record.v)
            for record in read_trace_ops(args.ops)
            if record.is_mutation
        )
    for value in args.add or []:
        (edge,) = _parse_edges([value])
        ops.append(("add", edge[0], edge[1]))
    for value in args.remove or []:
        (edge,) = _parse_edges([value])
        ops.append(("remove", edge[0], edge[1]))
    if not ops:
        raise SystemExit("mutate needs at least one --add, --remove or --ops")
    before_edges = graph.num_edges
    try:
        for (op, u, v) in ops:
            graph.apply_mutation(op, u, v)
    except (GraphError, UnknownVertexError) as exc:
        raise SystemExit(f"mutate: {exc}")
    graph.compact()
    rows = [
        {
            "n": graph.num_vertices,
            "m before": before_edges,
            "m after": graph.num_edges,
            "applied": len(ops),
            "epoch": graph.epoch,
        }
    ]
    print(format_table(rows, title="Graph mutation"))
    if args.out:
        write_edge_list(graph, args.out)
        print(f"wrote mutated graph ({graph.num_edges} edges) to {args.out}")
    return 0


def cmd_report_run(args) -> int:
    from .reports import (
        ResultStore,
        SpecError,
        load_scenarios,
        run_scenario,
        wall_timer,
    )

    try:
        specs = load_scenarios(args.specs)
    except SpecError as exc:
        raise SystemExit(f"report run: {exc}")
    store = ResultStore(args.results)
    trace_dir = None
    if args.trace_dir:
        from pathlib import Path

        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    for spec in specs:
        tracer = None
        if (
            trace_dir is not None
            and spec.observability is not None
            and spec.observability.trace
            and spec.workload is not None
        ):
            from .obs import SpanTracer

            tracer = SpanTracer(capacity=spec.observability.capacity)
        try:
            with wall_timer() as timer:
                result = run_scenario(spec, smoke=args.smoke, tracer=tracer)
        except OSError as exc:
            raise SystemExit(f"report run: {spec.name}: {exc}")
        except (FaultPlanError, ValueError) as exc:
            raise SystemExit(f"report run: {spec.name}: {exc}")
        path = store.save(result, wall_seconds=timer.seconds)
        sizes = ", ".join(str(row.n) for row in result.sizes)
        phases = [f"n = {sizes}"] + (["service"] if result.service is not None else [])
        print(f"ran {spec.name} ({'; '.join(phases)}) -> {path}")
        if tracer is not None:
            from .obs import write_chrome_trace, write_trace_jsonl

            try:
                count = write_trace_jsonl(
                    trace_dir / f"{spec.name}.trace.jsonl", tracer
                )
                write_chrome_trace(trace_dir / f"{spec.name}.trace.json", tracer)
            except OSError as exc:
                raise SystemExit(f"report run: {spec.name}: {exc}")
            print(
                f"wrote {count} spans to {trace_dir / (spec.name + '.trace.jsonl')} "
                f"(+ Chrome trace)"
            )
    return 0


def cmd_report_render(args) -> int:
    from .reports import ResultStore, StoreError, render_report

    store = ResultStore(args.results)
    try:
        payloads = store.load_all()
    except StoreError as exc:
        raise SystemExit(f"report render: {exc}")
    if not payloads:
        raise SystemExit(
            f"report render: no results under {store.root}; run "
            "`repro report run scenarios/...` first"
        )
    markdown = render_report(payloads)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote report for {len(payloads)} scenario(s) to {args.out}")
    else:
        print(markdown, end="")
    return 0


def cmd_lint(args) -> int:
    from .lint import BaselineError, format_json, format_text, load_baseline, run_lint

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, BaselineError) as exc:
            raise SystemExit(f"lint: {exc}")
    try:
        report = run_lint(
            root=args.root, paths=args.paths or None, baseline=baseline
        )
    except (OSError, BaselineError) as exc:
        raise SystemExit(f"lint: {exc}")
    if args.format == "json":
        print(format_json(report), end="")
    else:
        print(format_text(report), end="")
    return 0 if report.clean else 1


def cmd_lowerbound(args) -> int:
    result = run_distinguishing_experiment(
        num_vertices=args.n,
        degree=args.degree,
        probe_budget=args.budget,
        trials=args.trials,
        seed=args.seed,
    )
    rows = [
        {
            "n": result.num_vertices,
            "d": result.degree,
            "probe budget": result.probe_budget,
            "threshold min(sqrt(n), n/d)": round(result.theory_threshold, 1),
            "success rate": round(result.success_rate, 3),
            "advantage": round(result.advantage, 3),
        }
    ]
    print(format_table(rows, title="Theorem 1.3 distinguishing experiment"))
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _add_graph_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", help="edge-list file to read the graph from")
    parser.add_argument(
        "--generate",
        choices=sorted(GENERATORS),
        help="generate a synthetic graph instead of reading one",
    )
    parser.add_argument("--n", type=int, default=300, help="generated graph size")
    parser.add_argument(
        "--density", type=float, default=0.1, help="generated graph density parameter"
    )
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument(
        "--stream",
        action="store_true",
        help="build the generated family through the chunked streaming path "
        "(maps --generate gnp to gnp-stream etc.); the graph goes straight "
        "into flat CSR arrays without a Python edge list",
    )
    parser.add_argument(
        "--mmap",
        metavar="PATH",
        default=None,
        help="memory-map a read-only CSR snapshot written by "
        "'generate --snapshot-out' instead of reading or generating a graph",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(graphs.BACKENDS),
        default=None,
        help="graph storage backend: 'dict' (adjacency dicts) or 'csr' "
        "(flat compressed-sparse-row arrays); probe behavior is identical. "
        "Default: the process-wide default (REPRO_GRAPH_BACKEND, else dict)",
    )


def _add_executor_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTOR_BACKENDS),
        default=None,
        help="parallel execution backend for materialization: 'serial' "
        "(plan pipeline, inline), 'thread' (shared-memory threads) or "
        "'process' (multi-core workers attached to a shared-memory CSR "
        "export); answers and probe accounting are identical to the "
        "in-process engine. Default: in-process (no executor)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker count for --executor (default: CPU count)",
    )


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default=None,
        help="probe-kernel implementation: 'python' (scalar loops), 'numpy' "
        "(vectorized array kernels over CSR; requires numpy) or 'auto' "
        "(numpy when available). Answers and probe accounting are identical "
        "under every kernel; only wall-clock time changes. "
        "Default: auto (also settable via REPRO_KERNEL)",
    )


def _apply_kernel(lca, args):
    """Apply ``--kernel`` to an LCA, exiting with a one-line message when
    the requested kernel cannot be loaded (numpy missing)."""
    if getattr(args, "kernel", None) is None:
        return lca
    try:
        return lca.set_kernel(args.kernel)
    except KernelUnavailableError as exc:
        raise SystemExit(f"{args.command}: {exc}")


def _add_memo_cap_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--memo-cap",
        type=_positive_int,
        default=None,
        metavar="N",
        help="bound the cached engine's resident memo state to N entries "
        "(LRU eviction; per-query random tapes are recomputed from k-wise "
        "seeds instead of stored). Answers and probe accounting are "
        "identical to the unbounded cache; only resident memory and "
        "re-derivation time change. Default: unbounded",
    )


def _apply_memo_cap(lca, args):
    """Apply ``--memo-cap`` to an LCA (one-line error on --query-mode cold)."""
    cap = getattr(args, "memo_cap", None)
    if cap is None:
        return lca
    if getattr(args, "query_mode", None) == "cold":
        raise SystemExit(
            "--memo-cap bounds the cached engine; the cold mode has no memo "
            "to cap — drop one of them"
        )
    return lca.set_memo_cap(cap)


def _add_query_mode_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--query-mode",
        choices=["cold", "cached", "batched"],
        default="batched",
        help="query engine: 'cold' re-derives all state per query, 'cached' "
        "memoizes per-vertex state across queries, 'batched' additionally "
        "streams materialization; answers and probe accounting are identical "
        "in every mode (only wall-clock time changes)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the full ``repro-lca`` argument parser (all sub-commands)."""
    parser = argparse.ArgumentParser(
        prog="repro-lca",
        description="Local computation algorithms for graph spanners (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered LCA constructions").set_defaults(
        handler=cmd_list
    )

    generate = sub.add_parser("generate", help="write a synthetic workload graph")
    _add_graph_options(generate)
    generate.add_argument("--family", dest="generate", choices=sorted(GENERATORS))
    generate.add_argument("--out", default=None, help="output edge-list path")
    generate.add_argument(
        "--snapshot-out",
        default=None,
        metavar="PATH",
        help="also (or instead) save the graph as a memory-mappable CSR "
        "snapshot for --mmap loading",
    )
    generate.set_defaults(handler=cmd_generate)

    query = sub.add_parser("query", help="answer spanner queries for edges")
    _add_graph_options(query)
    query.add_argument("--algorithm", default="spanner3", help="registered LCA name")
    query.add_argument(
        "--edge", action="append", help="edge to query as 'u,v' (repeatable)"
    )
    query.add_argument(
        "--count", type=int, default=10, help="query the first COUNT edges when --edge is absent"
    )
    _add_query_mode_option(query)
    _add_kernel_option(query)
    _add_memo_cap_option(query)
    query.set_defaults(handler=cmd_query)

    materialize = sub.add_parser(
        "materialize",
        help="query every edge and report (optionally export) the spanner",
    )
    _add_graph_options(materialize)
    materialize.add_argument("--algorithm", default="spanner3")
    materialize.add_argument(
        "--out", help="also write the spanner as an edge-list file"
    )
    _add_query_mode_option(materialize)
    _add_executor_options(materialize)
    _add_kernel_option(materialize)
    _add_memo_cap_option(materialize)
    materialize.set_defaults(handler=cmd_materialize)

    evaluate = sub.add_parser("evaluate", help="materialize and verify an LCA")
    _add_graph_options(evaluate)
    evaluate.add_argument("--algorithm", default="spanner3")
    evaluate.add_argument(
        "--stretch-sample",
        type=int,
        default=None,
        help="verify stretch on a sample of edges instead of all of them",
    )
    _add_query_mode_option(evaluate)
    _add_executor_options(evaluate)
    _add_kernel_option(evaluate)
    _add_memo_cap_option(evaluate)
    evaluate.set_defaults(handler=cmd_evaluate)

    sweep = sub.add_parser("sweep", help="size/probe scaling sweep")
    sweep.add_argument("--algorithm", default="spanner3")
    sweep.add_argument("--sizes", default="200,400,800")
    sweep.add_argument("--density", type=float, default=0.12)
    sweep.add_argument("--queries", type=int, default=80)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--target-size-exponent", type=float, default=1.5)
    sweep.add_argument("--target-probe-exponent", type=float, default=0.75)
    sweep.set_defaults(handler=cmd_sweep)

    serve = sub.add_parser(
        "serve-bench",
        help="run the online query service (sharded pool + scheduler) on a workload",
    )
    _add_graph_options(serve)
    serve.add_argument("--algorithm", default="spanner3", help="registered LCA name")
    serve.add_argument(
        "--workload",
        choices=sorted(WORKLOAD_KINDS),
        default="uniform",
        help="request-stream kind",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=None,
        help="number of requests to serve (default: 1000 for generative "
        "workloads; trace workloads replay the whole recording)",
    )
    serve.add_argument(
        "--workload-seed", type=int, default=0, help="request-stream random seed"
    )
    serve.add_argument(
        "--skew", type=float, default=1.1, help="zipf workload skew exponent"
    )
    serve.add_argument(
        "--write-ratio", type=float, default=0.1,
        help="churn workload write fraction: probability that a request is "
        "a graph mutation instead of a read (ignored by other workloads)",
    )
    serve.add_argument("--trace", help="JSONL trace file (trace workload)")
    serve.add_argument("--shards", type=int, default=4, help="oracle pool size")
    serve.add_argument(
        "--routing", choices=sorted(ROUTING_POLICIES), default="hash",
        help="vertex-to-shard routing policy",
    )
    serve.add_argument("--batch-size", type=int, default=32, help="coalesced batch size")
    serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="admission-control queue depth limit",
    )
    serve.add_argument(
        "--arrival-burst", type=int, default=None,
        help="arrivals per scheduling cycle (default: batch size; larger "
        "values model ingress overload and trigger load shedding)",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="serve request-by-request instead of coalescing batches per shard",
    )
    serve.add_argument(
        "--executor", choices=sorted(PINNED_BACKENDS), default="serial",
        help="shard-worker backend: 'serial' (inline, reference) or "
        "'thread' (one dedicated worker per shard; shards execute "
        "concurrently). Answers and probe totals are identical",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker-thread cap for --executor thread (default: one per shard)",
    )
    serve.add_argument(
        "--max-inflight", type=_positive_int, default=1,
        help="dispatched-but-uncompleted batch limit (pipelining depth)",
    )
    serve.add_argument(
        "--replication", type=_positive_int, default=1,
        help="replicas per shard (replica sets with automatic failover; "
        "answers are identical at any replication factor)",
    )
    serve.add_argument(
        "--fault-plan",
        help="JSON fault plan to inject (see docs/faults.md); overrides the "
        "--crashes/--shard-losses/--slow/--flaky generator knobs",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the generated fault plan",
    )
    serve.add_argument(
        "--fault-horizon", type=_positive_int, default=64,
        help="scheduling-cycle horizon fault events are drawn from",
    )
    serve.add_argument(
        "--crashes", type=int, default=0,
        help="replica crashes to inject (generated plan)",
    )
    serve.add_argument(
        "--shard-losses", type=int, default=0,
        help="whole-shard outages to inject (generated plan)",
    )
    serve.add_argument(
        "--slow", type=int, default=0,
        help="slow-batch events to inject (generated plan)",
    )
    serve.add_argument(
        "--flaky", type=int, default=0,
        help="transient oracle errors to inject (generated plan)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2,
        help="resubmissions per batch on transient failure",
    )
    serve.add_argument(
        "--timeout-ticks", type=_positive_int, default=64,
        help="virtual-time budget after which a batch counts as hung",
    )
    serve.add_argument(
        "--degraded-mode", choices=sorted(DEGRADED_MODES), default="answer",
        help="all replicas of a shard down: 'answer' (explicit degraded "
        "answers) or 'shed' (reject with a distinct reason code)",
    )
    serve.add_argument("--json", help="also write the full report to this JSON file")
    serve.add_argument(
        "--trace-out",
        help="record the run with the deterministic span tracer and write "
        "the JSONL span stream here (see docs/observability.md)",
    )
    serve.add_argument(
        "--trace-chrome",
        help="also write the trace as Chrome trace_event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    serve.add_argument(
        "--metrics-out",
        help="write the unified metrics snapshot (service/cache/probe/"
        "executor/fault metrics under one naming scheme) to this JSON file",
    )
    _add_kernel_option(serve)
    serve.set_defaults(handler=cmd_serve_bench)

    trace = sub.add_parser(
        "trace",
        help="summarize a JSONL span trace; optionally convert it to "
        "Chrome trace_event JSON",
    )
    trace.add_argument("file", help="JSONL trace written by --trace-out")
    trace.add_argument(
        "--chrome",
        help="write the Chrome trace_event conversion here "
        "(open in Perfetto / chrome://tracing)",
    )
    trace.set_defaults(handler=cmd_trace)

    mutate = sub.add_parser(
        "mutate",
        help="apply edge mutations (add/remove) to a graph and write the result",
    )
    _add_graph_options(mutate)
    mutate.add_argument(
        "--add", action="append", metavar="U,V",
        help="edge to add as 'u,v' (repeatable; applied after --ops)",
    )
    mutate.add_argument(
        "--remove", action="append", metavar="U,V",
        help="edge to remove as 'u,v' (repeatable; applied after --add)",
    )
    mutate.add_argument(
        "--ops",
        help="JSONL trace whose add/remove records are applied first "
        "(query records are ignored)",
    )
    mutate.add_argument("--out", help="write the mutated graph edge list here")
    mutate.set_defaults(handler=cmd_mutate)

    report = sub.add_parser(
        "report",
        help="declarative experiment suite: run scenario specs, render Markdown",
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    report_run = report_sub.add_parser(
        "run", help="run scenario spec files/directories and store results"
    )
    report_run.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="scenario spec file (.toml/.json) or directory of specs",
    )
    report_run.add_argument(
        "--results", default="results",
        help="results directory (default: results/)",
    )
    report_run.add_argument(
        "--smoke", action="store_true",
        help="shrink every scenario to CI size (smallest graph size, "
        "capped requests and churn)",
    )
    report_run.add_argument(
        "--trace-dir", default=None,
        help="export the span trace of every [observability]-traced "
        "scenario into this directory (<name>.trace.jsonl + Chrome "
        "<name>.trace.json)",
    )
    report_run.set_defaults(handler=cmd_report_run)
    report_render = report_sub.add_parser(
        "render", help="render stored results as one Markdown report"
    )
    report_render.add_argument(
        "--results", default="results",
        help="results directory to read (default: results/)",
    )
    report_render.add_argument(
        "--out", default=None,
        help="write the report here instead of printing it",
    )
    report_render.set_defaults(handler=cmd_report_render)

    lint = sub.add_parser(
        "lint",
        help="AST contract checker: determinism, observability, layering "
        "rules over src/ benchmarks/ scripts/ examples/ (see docs/lint.md)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src benchmarks "
        "scripts examples under --root)",
    )
    lint.add_argument(
        "--root", default=".",
        help="repository root; relative findings paths and the default "
        "baseline resolve against it (default: cwd)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is byte-stable: sorted findings, "
        "sorted keys)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline TOML overriding <root>/lint-baseline.toml",
    )
    lint.set_defaults(handler=cmd_lint)

    lower = sub.add_parser("lowerbound", help="Theorem 1.3 distinguishing experiment")
    lower.add_argument("--n", type=int, default=202)
    lower.add_argument("--degree", type=int, default=3)
    lower.add_argument("--budget", type=int, default=14)
    lower.add_argument("--trials", type=int, default=10)
    lower.add_argument("--seed", type=int, default=1)
    lower.set_defaults(handler=cmd_lowerbound)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
