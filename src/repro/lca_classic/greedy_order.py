"""Random-order greedy simulation — the core of the classic LCAs.

The classic LCAs for maximal independent set, maximal matching and vertex
cover (Rubinfeld et al., Alon et al., Nguyen–Onak) all share one idea: impose
a random permutation on the vertices (or edges) and answer queries by
simulating the greedy algorithm restricted to the query's "dependency cone" —
the neighbors that come earlier in the permutation, their earlier neighbors,
and so on.  The expected size of the cone is bounded for constant Δ but grows
exponentially with Δ, which is exactly the pain point the paper's
introduction contrasts with its polynomial-in-Δ spanner LCAs.

The random order is realized with a Θ(log n)-wise independent hash of the
vertex/edge identifier so queries are consistent.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Tuple

from ..core.seed import Seed, SeedLike
from ..rand.kwise import KWiseHash, recommended_independence


class RandomOrder:
    """A consistent random total order over hashable identifiers."""

    def __init__(self, seed: SeedLike, num_items_hint: int) -> None:
        independence = recommended_independence(max(2, num_items_hint))
        self._hash = KWiseHash(Seed.of(seed), independence)

    def key(self, identifier: int) -> Tuple[int, int]:
        """Order key: hash value with the identifier as a tie breaker."""
        identifier = int(identifier)
        return (self._hash.value(identifier), identifier)

    def comes_before(self, first: int, second: int) -> bool:
        return self.key(first) < self.key(second)


class MemoizedRecursion:
    """Helper for the recursive greedy simulations with per-query memoization.

    The recursion on "earlier" items is a DAG (the random order is acyclic),
    so simple memoization both guarantees termination and keeps the probe
    count equal to the size of the explored dependency cone.
    """

    def __init__(self, compute: Callable[[Hashable, "MemoizedRecursion"], bool]) -> None:
        self._compute = compute
        self._memo: Dict[Hashable, bool] = {}

    def __call__(self, item: Hashable) -> bool:
        if item not in self._memo:
            self._memo[item] = self._compute(item, self)
        return self._memo[item]
