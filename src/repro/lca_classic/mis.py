"""Classic LCA for Maximal Independent Set (random-order greedy).

A vertex is in the MIS iff none of its neighbors that precede it in the
random order is in the MIS — the textbook recursive rule of Rubinfeld et al.
and Nguyen–Onak.  Queries are consistent with the single MIS produced by the
sequential greedy algorithm run in the random order.

This is *not* part of the spanner constructions; it is included because the
paper's introduction positions its results against exactly this family of
LCAs, whose probe complexity is exponential in Δ.  The benchmark
``bench_classic_lcas`` measures that growth empirically.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import UnknownVertexError
from ..core.oracle import AdjacencyListOracle
from ..core.probes import ProbeCounter, ProbeStatistics
from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from .greedy_order import MemoizedRecursion, RandomOrder


class MaximalIndependentSetLCA:
    """LCA answering "is vertex v in the maximal independent set?"."""

    name = "lca-mis"

    def __init__(self, graph: Graph, seed: SeedLike) -> None:
        self._graph = graph
        self._order = RandomOrder(
            Seed.of(seed).derive("lca-mis/order"), graph.num_vertices
        )
        self._counter = ProbeCounter()
        self._oracle = AdjacencyListOracle(graph, self._counter)
        self.probe_stats = ProbeStatistics()

    @property
    def graph(self) -> Graph:
        return self._graph

    def query(self, vertex: int) -> bool:
        """Whether ``vertex`` belongs to the MIS (probes are counted)."""
        if not self._graph.has_vertex(vertex):
            raise UnknownVertexError(vertex)
        with self._counter.measure() as measurement:
            answer = self._simulate(vertex)
        self.probe_stats.add(measurement.total)
        return answer

    def _simulate(self, vertex: int) -> bool:
        oracle = self._oracle
        order = self._order

        def compute(v: int, recurse: MemoizedRecursion) -> bool:
            for w in oracle.all_neighbors(v):
                if order.comes_before(w, v) and recurse(w):
                    return False
            return True

        return MemoizedRecursion(compute)(vertex)

    def materialize(self) -> set:
        """The full MIS, obtained by querying every vertex."""
        return {v for v in self._graph.vertices() if self.query(v)}


def greedy_mis_reference(graph: Graph, lca: MaximalIndependentSetLCA) -> set:
    """Sequential greedy MIS in the LCA's random order (verification only)."""
    order = sorted(graph.vertices(), key=lca._order.key)
    chosen = set()
    blocked = set()
    for v in order:
        if v in blocked:
            continue
        chosen.add(v)
        blocked.update(graph.neighbors(v))
    return chosen
