"""Classic LCAs for maximal matching and vertex cover (random-order greedy).

An edge is in the greedy maximal matching iff none of its adjacent edges that
precede it in a random edge order is in the matching; the matched endpoints
(doubled) form a 2-approximate vertex cover.  As with the MIS LCA these serve
as the exponential-in-Δ reference point the paper improves upon for the
spanner problem.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..core.errors import NotAnEdgeError, UnknownVertexError
from ..core.ids import canonical_edge
from ..core.oracle import AdjacencyListOracle
from ..core.probes import ProbeCounter, ProbeStatistics
from ..core.seed import Seed, SeedLike
from ..graphs.graph import Graph
from .greedy_order import MemoizedRecursion, RandomOrder

Edge = Tuple[int, int]


def _edge_key(u: int, v: int) -> int:
    a, b = canonical_edge(u, v)
    return (a << 32) ^ b


class MaximalMatchingLCA:
    """LCA answering "is the edge (u, v) in the maximal matching?"."""

    name = "lca-matching"

    def __init__(self, graph: Graph, seed: SeedLike) -> None:
        self._graph = graph
        self._order = RandomOrder(
            Seed.of(seed).derive("lca-matching/order"), max(2, graph.num_edges)
        )
        self._counter = ProbeCounter()
        self._oracle = AdjacencyListOracle(graph, self._counter)
        self.probe_stats = ProbeStatistics()

    @property
    def graph(self) -> Graph:
        return self._graph

    def query(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` is in the maximal matching."""
        if not self._graph.has_edge(u, v):
            raise NotAnEdgeError(u, v)
        with self._counter.measure() as measurement:
            answer = self._simulate(canonical_edge(u, v))
        self.probe_stats.add(measurement.total)
        return answer

    def _simulate(self, edge: Edge) -> bool:
        oracle = self._oracle
        order = self._order

        def compute(e: Edge, recurse: MemoizedRecursion) -> bool:
            key = _edge_key(*e)
            for endpoint in e:
                for w in oracle.all_neighbors(endpoint):
                    other = canonical_edge(endpoint, w)
                    if other == e:
                        continue
                    if order.comes_before(_edge_key(*other), key) and recurse(other):
                        return False
            return True

        return MemoizedRecursion(compute)(edge)

    def materialize(self) -> Set[Edge]:
        """The full maximal matching, obtained by querying every edge."""
        return {edge for edge in self._graph.edges() if self.query(*edge)}


class VertexCoverLCA:
    """LCA for a 2-approximate vertex cover: matched vertices are in the cover."""

    name = "lca-vertex-cover"

    def __init__(self, graph: Graph, seed: SeedLike) -> None:
        self._matching = MaximalMatchingLCA(graph, seed)

    @property
    def graph(self) -> Graph:
        return self._matching.graph

    @property
    def probe_stats(self) -> ProbeStatistics:
        return self._matching.probe_stats

    def query(self, vertex: int) -> bool:
        """Whether ``vertex`` belongs to the vertex cover."""
        graph = self._matching.graph
        if not graph.has_vertex(vertex):
            raise UnknownVertexError(vertex)
        return any(self._matching.query(vertex, w) for w in graph.neighbors(vertex))

    def materialize(self) -> Set[int]:
        return {v for v in self.graph.vertices() if self.query(v)}


def greedy_matching_reference(graph: Graph, lca: MaximalMatchingLCA) -> Set[Edge]:
    """Sequential greedy matching in the LCA's edge order (verification only)."""
    edges = sorted(graph.edges(), key=lambda e: lca._order.key(_edge_key(*e)))
    matched_vertices: Set[int] = set()
    matching: Set[Edge] = set()
    for (u, v) in edges:
        if u in matched_vertices or v in matched_vertices:
            continue
        matching.add(canonical_edge(u, v))
        matched_vertices.add(u)
        matched_vertices.add(v)
    return matching
