"""Classic LCAs (MIS, maximal matching, vertex cover) used as context."""

from .greedy_order import MemoizedRecursion, RandomOrder
from .matching import (
    MaximalMatchingLCA,
    VertexCoverLCA,
    greedy_matching_reference,
)
from .mis import MaximalIndependentSetLCA, greedy_mis_reference

__all__ = [
    "RandomOrder",
    "MemoizedRecursion",
    "MaximalIndependentSetLCA",
    "greedy_mis_reference",
    "MaximalMatchingLCA",
    "VertexCoverLCA",
    "greedy_matching_reference",
]
