"""Samplers built on top of the d-wise independent hash families.

Three sampling idioms recur throughout the paper and are factored out here:

* :class:`CenterSampler` — "each vertex elects itself into the center set S
  independently with probability p"; locally checkable from the vertex ID
  without probes (Observation 2.3).
* :class:`RankAssigner` — the random rank ``r(v) ∈ [0, 1)`` of Section 4.3.4,
  realized with the block-concatenated construction of Section 5.2 so only
  O(log² n) random bits are consumed.
* :class:`IndexSampler` — "pick Θ(log n) random indices of the neighbor list"
  used to compute the representative sets ``Reps(v)`` in Section 3.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..core.errors import ParameterError
from ..core.seed import Seed, SeedLike
from .kwise import KWiseHash, KWiseHashFamily, concatenated_rank


class CenterSampler:
    """Locally-checkable Bernoulli(p) membership in a center set.

    Parameters
    ----------
    seed:
        Seed material (role-specific; derive one per center set).
    probability:
        Election probability ``p`` (clamped to ``[0, 1]``).
    independence:
        Independence of the underlying hash family (Θ(log n) suffices).
    """

    def __init__(self, seed: SeedLike, probability: float, independence: int) -> None:
        probability = min(1.0, max(0.0, float(probability)))
        self.probability = probability
        self._hash = KWiseHash(Seed.of(seed), independence)

    def is_center(self, vertex: int) -> bool:
        """Whether ``vertex`` elected itself (no probes are needed)."""
        return self._hash.bernoulli(vertex, self.probability)

    def centers_among(self, vertices: Sequence[int]) -> List[int]:
        """Filter a vertex sequence down to the elected centers."""
        return [v for v in vertices if self.is_center(v)]

    def expected_count(self, num_vertices: int) -> float:
        """Expected number of centers among ``num_vertices`` vertices."""
        return self.probability * num_vertices


class RankAssigner:
    """Random ranks of Voronoi-cell centers (Sections 4.3.4 and 5.2).

    The rank of a center ``v`` is the concatenation of ``num_blocks`` blocks
    of ``bits_per_block`` bits, each produced by its own Θ(log n)-wise
    independent hash function.  Lower rank means "preferred" in the
    connection rules of ``H^B_dense``.
    """

    def __init__(
        self,
        seed: SeedLike,
        num_blocks: int,
        bits_per_block: int,
        independence: int,
    ) -> None:
        if num_blocks < 1:
            raise ParameterError("num_blocks must be at least 1")
        if bits_per_block < 1:
            raise ParameterError("bits_per_block must be at least 1")
        self.num_blocks = int(num_blocks)
        self.bits_per_block = int(bits_per_block)
        family = KWiseHashFamily(Seed.of(seed), independence)
        self._hashes = family.members("rank-block", self.num_blocks)

    def rank(self, vertex: int) -> int:
        """Integer rank of ``vertex``; lower is better."""
        return concatenated_rank(self._hashes, vertex, self.bits_per_block)

    def rank_fraction(self, vertex: int) -> float:
        """The rank normalized into ``[0, 1)`` (handy for reporting)."""
        total_bits = self.num_blocks * self.bits_per_block
        return self.rank(vertex) / float(1 << total_bits)

    def block(self, vertex: int, index: int) -> int:
        """The ``index``-th (0-based) block ``R_{index+1}(v)`` of the rank."""
        if not 0 <= index < self.num_blocks:
            raise ParameterError("block index out of range")
        return self._hashes[index].bits(vertex, self.bits_per_block)

    @classmethod
    def for_graph(
        cls, seed: SeedLike, num_vertices: int, stretch_parameter: int, independence: int
    ) -> "RankAssigner":
        """Build the rank function the paper uses for an n-vertex graph.

        ``T = k`` blocks of ``N = ⌈log₂(n)/k⌉`` bits each, mirroring
        Section 5.2.
        """
        num_blocks = max(1, int(stretch_parameter))
        bits = max(1, int(math.ceil(math.log2(max(2, num_vertices)) / num_blocks)))
        return cls(seed, num_blocks, bits, independence)


class IndexSampler:
    """Θ(log n) random indices of a neighbor list (``Reps`` computation).

    For a vertex ``v`` the sampler returns ``count`` (not necessarily
    distinct) indices in ``[0, upper)`` determined by the seed and ``v``; the
    representative set ``Reps(v)`` is then the set of neighbors at those
    indices whose degree exceeds the Δ_super threshold (Section 3).
    """

    def __init__(self, seed: SeedLike, count: int, independence: int) -> None:
        if count < 1:
            raise ParameterError("count must be at least 1")
        self.count = int(count)
        family = KWiseHashFamily(Seed.of(seed), independence)
        self._hashes = family.members("index", self.count)

    def indices(self, vertex: int, upper: int) -> List[int]:
        """``count`` indices in ``[0, upper)`` for ``vertex`` (with repeats)."""
        if upper <= 0:
            return []
        return [h.integer(vertex, upper) for h in self._hashes]

    def distinct_indices(self, vertex: int, upper: int) -> List[int]:
        """The same indices, deduplicated and sorted (order-independent)."""
        return sorted(set(self.indices(vertex, upper)))


def log_count(num_vertices: int, multiplier: float = 2.0, minimum: int = 2) -> int:
    """A convenience Θ(log n) count: ``max(minimum, ⌈multiplier · ln n⌉)``."""
    if num_vertices < 2:
        return minimum
    return max(minimum, int(math.ceil(multiplier * math.log(num_vertices))))


def hitting_probability(threshold: float, num_vertices: int, multiplier: float = 2.0) -> float:
    """The hitting-set probability ``Θ(log n / Δ)`` of Observation 2.3.

    Parameters
    ----------
    threshold:
        The degree threshold Δ whose neighborhoods must be hit.
    num_vertices:
        Graph size ``n``.
    multiplier:
        The hidden constant; 2·ln n gives a comfortable failure probability
        of ``n^{-2}`` per neighborhood via the standard union bound.
    """
    if threshold <= 0:
        return 1.0
    probability = multiplier * math.log(max(2, num_vertices)) / float(threshold)
    return min(1.0, probability)
