"""d-wise independent hash families.

Section 5 of the paper shows that all its LCAs succeed with Θ(log n)-wise
independent hash functions, which (Lemma 5.2, quoting Vadhan's Corollary
3.34) can be sampled with ``d · max(γ, β)`` random bits and evaluated in
polynomial time.  The standard construction is a random polynomial of degree
``d − 1`` over a prime field: for coefficients ``a_0 .. a_{d-1}`` drawn
uniformly from ``GF(p)``,

    h(x) = a_0 + a_1 x + ... + a_{d-1} x^{d-1}   (mod p)

is a d-wise independent function ``GF(p) → GF(p)``.  We use the Mersenne
prime ``p = 2^61 − 1`` so ``h`` comfortably covers O(log n)-bit identifiers
and outputs.

The coefficients themselves are derived deterministically from a
:class:`~repro.core.seed.Seed` via SHA-256, which stands in for the "tape of
random bits" of the model; what matters for the reproduction is that (a) the
family is d-wise independent over the choice of coefficients and (b) each
evaluation is a pure function of ``(seed, x)`` so LCA answers are consistent.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from ..core.errors import ParameterError
from ..core.seed import Seed, SeedLike

#: Mersenne prime 2^61 - 1; field size for the polynomial hash family.
MERSENNE_PRIME = (1 << 61) - 1


def _derive_coefficients(seed: Seed, degree: int) -> List[int]:
    """Derive ``degree`` field elements deterministically from ``seed``."""
    coefficients: List[int] = []
    counter = 0
    while len(coefficients) < degree:
        payload = f"kwise:{seed.value}:{counter}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        # Each 32-byte digest yields four 8-byte candidates.
        for offset in range(0, 32, 8):
            candidate = int.from_bytes(digest[offset : offset + 8], "big")
            coefficients.append(candidate % MERSENNE_PRIME)
            if len(coefficients) == degree:
                break
        counter += 1
    return coefficients


class KWiseHash:
    """A single function drawn from a d-wise independent family.

    Parameters
    ----------
    seed:
        Seed material selecting the function from the family.
    independence:
        The independence parameter ``d`` (the polynomial degree is ``d − 1``).
        The paper uses ``d = Θ(log n)``.
    """

    __slots__ = ("seed", "independence", "_coefficients")

    def __init__(self, seed: SeedLike, independence: int) -> None:
        if independence < 1:
            raise ParameterError("independence must be at least 1")
        self.seed = Seed.of(seed)
        self.independence = int(independence)
        self._coefficients = _derive_coefficients(self.seed, self.independence)

    # ------------------------------------------------------------------ #
    # Raw evaluations
    # ------------------------------------------------------------------ #
    def value(self, x: int) -> int:
        """Evaluate the hash at ``x``; result is uniform in ``[0, p)``."""
        x = int(x) % MERSENNE_PRIME
        acc = 0
        # Horner evaluation of the degree-(d-1) polynomial.
        for coefficient in reversed(self._coefficients):
            acc = (acc * x + coefficient) % MERSENNE_PRIME
        return acc

    def __call__(self, x: int) -> int:
        return self.value(x)

    # ------------------------------------------------------------------ #
    # Derived distributions
    # ------------------------------------------------------------------ #
    def uniform(self, x: int) -> float:
        """Map the hash value to a float in ``[0, 1)``."""
        return self.value(x) / MERSENNE_PRIME

    def bernoulli(self, x: int, probability: float) -> bool:
        """A Bernoulli(probability) coin determined by ``x``.

        Distinct inputs behave d-wise independently; the same input always
        yields the same outcome — exactly the "coin flip determined by the
        vertex ID and the random tape" idiom of Observation 2.3.
        """
        if not 0.0 <= probability <= 1.0:
            raise ParameterError("probability must lie in [0, 1]")
        return self.uniform(x) < probability

    def integer(self, x: int, modulus: int) -> int:
        """An integer in ``[0, modulus)`` determined by ``x``.

        The modular reduction introduces a bias of at most ``modulus / p``,
        which is negligible for the modulus sizes used here (≤ n² « 2^61).
        """
        if modulus <= 0:
            raise ParameterError("modulus must be positive")
        return self.value(x) % modulus

    def bits(self, x: int, num_bits: int) -> int:
        """The low ``num_bits`` bits of the hash value (``{0,1}^num_bits``)."""
        if num_bits <= 0:
            raise ParameterError("num_bits must be positive")
        if num_bits > 60:
            raise ParameterError("num_bits must be at most 60")
        return self.value(x) & ((1 << num_bits) - 1)


class KWiseHashFamily:
    """A labelled collection of independent :class:`KWiseHash` functions.

    Constructions frequently need several independent hash functions (one per
    role, or one per level ``h_1 .. h_T`` as in Section 5.2).  The family
    derives each member from a common seed and a role label so the whole
    construction remains a deterministic function of one master seed.
    """

    def __init__(self, seed: SeedLike, independence: int) -> None:
        self.seed = Seed.of(seed)
        self.independence = int(independence)

    def member(self, label: str) -> KWiseHash:
        """The family member associated with ``label``."""
        return KWiseHash(self.seed.derive(label), self.independence)

    def members(self, label: str, count: int) -> List[KWiseHash]:
        """``count`` independent members ``label#0 .. label#(count-1)``."""
        return [
            KWiseHash(self.seed.derive_indexed(label, index), self.independence)
            for index in range(count)
        ]


def recommended_independence(num_vertices: int, multiplier: float = 2.0) -> int:
    """The Θ(log n) independence used by the paper (Section 5).

    Parameters
    ----------
    num_vertices:
        Graph size ``n``.
    multiplier:
        Constant in front of ``log₂ n``; 2 is comfortable for all the
        concentration arguments used here.
    """
    if num_vertices < 2:
        return 2
    import math

    return max(2, int(math.ceil(multiplier * math.log2(num_vertices))))


def seed_bit_cost(num_vertices: int, independence: int) -> int:
    """Number of random bits Lemma 5.2 charges for one family member.

    ``d · max(γ, β)`` with γ = β = ⌈log₂ n⌉; reported by the benchmarks to
    substantiate the "O(log² n) random bits" claims of Theorems 1.1 and 1.2.
    """
    import math

    gamma = max(1, int(math.ceil(math.log2(max(2, num_vertices)))))
    return int(independence) * gamma


def concatenated_rank(
    hashes: Sequence[KWiseHash], identifier: int, bits_per_block: int
) -> int:
    """The block-concatenated rank of Section 5.2.

    ``r(v) = h_1(ID(v)) ∘ h_2(ID(v)) ∘ ... ∘ h_T(ID(v))`` where each block has
    ``bits_per_block`` bits.  Returned as an integer so ranks compare with the
    natural ``<`` order (block 1 is the most significant).
    """
    rank = 0
    for member in hashes:
        rank = (rank << bits_per_block) | member.bits(identifier, bits_per_block)
    return rank
