"""Bounded-independence randomness (Section 5 of the paper)."""

from .kwise import (
    KWiseHash,
    KWiseHashFamily,
    MERSENNE_PRIME,
    concatenated_rank,
    recommended_independence,
    seed_bit_cost,
)
from .sampler import (
    CenterSampler,
    IndexSampler,
    RankAssigner,
    hitting_probability,
    log_count,
)

__all__ = [
    "KWiseHash",
    "KWiseHashFamily",
    "MERSENNE_PRIME",
    "concatenated_rank",
    "recommended_independence",
    "seed_bit_cost",
    "CenterSampler",
    "IndexSampler",
    "RankAssigner",
    "hitting_probability",
    "log_count",
]
