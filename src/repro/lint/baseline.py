"""The lint baseline: reviewed, directory-level exceptions in TOML.

``lint-baseline.toml`` (repository root) holds the *deliberate* exceptions
to the lint contracts — the places where a rule's contract legitimately
does not apply (benchmarks exist to read the wall clock; the result store
owns the environment fingerprint).  Every entry must carry a ``reason``:
an unexplained grant is a validation error, which keeps the baseline from
silting up with unreviewed suppressions.

Format::

    schema = 1

    [[allow]]
    code = "DET001"
    path = "benchmarks/*.py"
    reason = "benchmarks exist to measure wall-clock time"

``path`` is an :mod:`fnmatch` glob over repository-relative POSIX paths.
Parsed with :mod:`tomllib` on 3.11+; on 3.10 a subset parser covering
exactly this shape (scalar keys + ``[[allow]]`` tables) keeps the linter
stdlib-only, mirroring the fallback in :mod:`repro.reports.spec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Union

#: Baseline document version accepted by :func:`load_baseline`.
BASELINE_SCHEMA = 1


class BaselineError(ValueError):
    """The baseline file is missing, malformed or under-explained."""


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed exception: a rule code granted to a path glob."""

    code: str
    path: str
    reason: str

    def matches(self, code: str, path: str) -> bool:
        return code == self.code and fnmatchcase(path, self.path)


@dataclass
class Baseline:
    """The parsed allowlist; empty by default."""

    entries: List[BaselineEntry]

    def suppresses(self, code: str, path: str) -> bool:
        return any(entry.matches(code, path) for entry in self.entries)


EMPTY_BASELINE = Baseline(entries=[])


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Read and validate one baseline document."""
    path = Path(path)
    try:
        data = _load_toml(path)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from None
    schema = data.get("schema")
    if schema != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: baseline schema {schema!r}; this build reads {BASELINE_SCHEMA}"
        )
    raw_entries = data.get("allow", [])
    if not isinstance(raw_entries, list):
        raise BaselineError(f"{path}: 'allow' must be an array of tables")
    entries: List[BaselineEntry] = []
    for position, raw in enumerate(raw_entries):
        where = f"{path}: allow[{position}]"
        if not isinstance(raw, dict):
            raise BaselineError(f"{where}: expected a table")
        unknown = sorted(set(raw) - {"code", "path", "reason"})
        if unknown:
            raise BaselineError(f"{where}: unknown keys {', '.join(unknown)}")
        for key in ("code", "path", "reason"):
            value = raw.get(key)
            if not isinstance(value, str) or not value.strip():
                raise BaselineError(f"{where}: {key!r} must be a non-empty string")
        entries.append(
            BaselineEntry(code=raw["code"], path=raw["path"], reason=raw["reason"])
        )
    return Baseline(entries=entries)


# --------------------------------------------------------------------------- #
# TOML loading: stdlib tomllib, else the 3.10 subset parser below.
# --------------------------------------------------------------------------- #
def _load_toml(path: Path) -> Dict[str, object]:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        return _parse_toml_subset(path.read_text(encoding="utf-8"), str(path))
    with open(path, "rb") as handle:
        try:
            return tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise BaselineError(f"{path}: invalid TOML: {exc}") from None


def _parse_toml_subset(text: str, where: str) -> Dict[str, object]:
    """Parse the baseline subset of TOML: scalars and ``[[allow]]`` tables."""
    document: Dict[str, object] = {}
    current = document
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            tables = document.setdefault(name, [])
            if not isinstance(tables, list):
                raise BaselineError(f"{where}:{lineno}: {name!r} is not an array")
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            raise BaselineError(
                f"{where}:{lineno}: only [[name]] tables are supported"
            )
        key, sep, value = line.partition("=")
        if not sep:
            raise BaselineError(f"{where}:{lineno}: expected 'key = value'")
        current[key.strip()] = _scalar(value.strip(), f"{where}:{lineno}")
    return document


def _strip_comment(line: str) -> str:
    in_string = False
    for position, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:position]
    return line


def _scalar(text: str, where: str) -> object:
    if len(text) >= 2 and text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        raise BaselineError(f"{where}: unsupported value {text!r}") from None
