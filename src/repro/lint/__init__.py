"""``repro lint`` — the AST-based contract checker.

The reproduction's guarantees (byte-identical reports, bit-identical
probes across kernels × backends × executors, answer-invisible
observability and replication) rest on source-level contracts that the
test suite can only probe dynamically: no wall-clock in deterministic
paths, all randomness through seeded streams, tracer hooks guarded and
pure, plan types picklable, layering intact.  This package makes those
contracts machine-checked at lint time — pure stdlib :mod:`ast`, no
required dependencies.

Front doors:

>>> from repro.lint import run_lint
>>> report = run_lint(".")          # doctest: +SKIP
>>> report.clean                    # doctest: +SKIP
True

or ``repro lint --format json`` from the command line.  Rule codes,
the baseline/pragma workflow and the how-to-add-a-rule recipe are
documented in ``docs/lint.md``.
"""

from __future__ import annotations

from .baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    BaselineError,
    load_baseline,
)
from .context import FileContext, ProjectContext
from .engine import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_TARGETS,
    LINT_SCHEMA,
    LintReport,
    discover_files,
    format_json,
    format_text,
    run_lint,
)
from .findings import Finding
from .pragmas import PragmaIndex, scan_pragmas
from .rules import ALL_RULES, build_rules, rule_index

__all__ = [
    "ALL_RULES",
    "BASELINE_SCHEMA",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_TARGETS",
    "FileContext",
    "Finding",
    "LINT_SCHEMA",
    "LintReport",
    "PragmaIndex",
    "ProjectContext",
    "build_rules",
    "discover_files",
    "format_json",
    "format_text",
    "load_baseline",
    "rule_index",
    "run_lint",
    "scan_pragmas",
]
