"""The lint engine: discover, parse, check, suppress, report.

:func:`run_lint` is the one entry point (the CLI, the tests and the
``check_docs`` shim all go through it): walk the scanned trees in sorted
order, parse each file once, run every registered rule, then subtract the
two suppression layers — same-line/file pragmas
(:mod:`repro.lint.pragmas`) and the reviewed baseline
(:mod:`repro.lint.baseline`).  What survives is the *new-findings set*:
non-empty ⇒ exit 1.

Everything about a run is deterministic: file order is sorted, rule order
is fixed by the registry, findings sort by position, and the JSON format
is ``sort_keys`` with a trailing newline — two runs over the same tree are
byte-identical, which CI and the test suite rely on (the same contract the
report renderer honors).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .baseline import EMPTY_BASELINE, Baseline, load_baseline
from .context import FileContext, ProjectContext
from .findings import Finding
from .pragmas import scan_pragmas

#: Output document version for ``--format json``.
LINT_SCHEMA = 1

#: Trees scanned when no explicit paths are given (those that exist).
DEFAULT_TARGETS = ("src", "benchmarks", "scripts", "examples")

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: Default baseline filename, resolved against the scan root.
DEFAULT_BASELINE_NAME = "lint-baseline.toml"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    suppressed_pragma: int = 0
    suppressed_baseline: int = 0
    rule_codes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def discover_files(root: Path, paths: Optional[Sequence[Union[str, Path]]]) -> List[Path]:
    """The sorted ``.py`` file set one run scans.

    ``paths`` may name files or directories (relative to ``root``); when
    omitted, the :data:`DEFAULT_TARGETS` that exist under ``root`` are
    scanned, falling back to the root itself for non-repo layouts.
    """
    if paths:
        targets = [root / p if not Path(p).is_absolute() else Path(p) for p in paths]
    else:
        targets = [root / name for name in DEFAULT_TARGETS if (root / name).is_dir()]
        if not targets:
            targets = [root]
    files = set()
    for target in targets:
        if target.is_file():
            files.add(target.resolve())
        elif target.is_dir():
            for path in target.rglob("*.py"):
                if not SKIP_DIRS.intersection(path.parts):
                    files.add(path.resolve())
        else:
            raise FileNotFoundError(f"lint target {target} does not exist")
    return sorted(files)


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    root: Union[str, Path] = ".",
    paths: Optional[Sequence[Union[str, Path]]] = None,
    baseline: Optional[Union[str, Path, Baseline]] = None,
) -> LintReport:
    """Run every registered rule over the tree; returns the report.

    ``baseline`` may be a parsed :class:`~repro.lint.baseline.Baseline`, a
    path to a TOML baseline, or ``None`` — which loads
    ``<root>/lint-baseline.toml`` when present and an empty baseline
    otherwise.
    """
    from .rules import build_rules  # late: rule modules import this module's types

    root = Path(root)
    if isinstance(baseline, Baseline):
        resolved_baseline = baseline
    elif baseline is not None:
        resolved_baseline = load_baseline(baseline)
    elif (root / DEFAULT_BASELINE_NAME).is_file():
        resolved_baseline = load_baseline(root / DEFAULT_BASELINE_NAME)
    else:
        resolved_baseline = EMPTY_BASELINE

    rules = build_rules()
    contexts: List[FileContext] = []
    raw: List[Finding] = []
    for path in discover_files(root, paths):
        rel_path = _relative(path, root)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    code="LINT000",
                    path=rel_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        contexts.append(
            FileContext(
                root=root,
                path=path,
                rel_path=rel_path,
                source=source,
                tree=tree,
                pragmas=scan_pragmas(source),
            )
        )

    for ctx in contexts:
        for rule in rules:
            raw.extend(rule.check(ctx))
    project = ProjectContext(root=root, files=contexts)
    for rule in rules:
        raw.extend(rule.finalize(project))

    pragma_index = {ctx.rel_path: ctx.pragmas for ctx in contexts}
    findings: List[Finding] = []
    suppressed_pragma = 0
    suppressed_baseline = 0
    for finding in sorted(set(raw), key=lambda f: f.sort_key):
        pragmas = pragma_index.get(finding.path)
        if pragmas is not None and pragmas.suppresses(finding.code, finding.line):
            suppressed_pragma += 1
            continue
        if resolved_baseline.suppresses(finding.code, finding.path):
            suppressed_baseline += 1
            continue
        findings.append(finding)
    return LintReport(
        findings=findings,
        files_checked=len(contexts),
        suppressed_pragma=suppressed_pragma,
        suppressed_baseline=suppressed_baseline,
        rule_codes=sorted(rule.code for rule in rules),
    )


# --------------------------------------------------------------------------- #
# Output formats (both byte-stable across runs)
# --------------------------------------------------------------------------- #
def format_text(report: LintReport) -> str:
    """Human-readable listing plus a one-line summary."""
    lines = [finding.render() for finding in report.findings]
    lines.append(
        f"repro lint: {len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s) "
        f"({report.suppressed_baseline} baselined, "
        f"{report.suppressed_pragma} pragma-suppressed)"
    )
    return "\n".join(lines) + "\n"


def format_json(report: LintReport) -> str:
    """Machine-readable document; byte-identical for identical trees."""
    document = {
        "schema": LINT_SCHEMA,
        "files_checked": report.files_checked,
        "findings": [finding.as_dict() for finding in report.findings],
        "rules": report.rule_codes,
        "suppressed": {
            "baseline": report.suppressed_baseline,
            "pragma": report.suppressed_pragma,
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
