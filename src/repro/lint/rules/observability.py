"""OBS001: observability calls in hot paths stay behind enabled-guards.

The observability plane's contract (``docs/observability.md``) is that
tracing and metrics are *pure observation*: attaching a tracer changes no
answer, probe count or latency stamp, and the disabled path costs one
attribute check per site.  That second half is a source-level discipline —
every ``tracer.span/instant/begin/end`` (and registry ``counter/gauge/
observe``) call in the hot packages (``core/``, ``kernels/``, ``exec/``,
``service/``) must sit behind an ``if tracer.enabled``-style guard or be
made on a receiver that defaults to :data:`repro.obs.tracer.NULL_TRACER`.

The guard check is a small module-level taint analysis, matching the idioms
the codebase actually uses:

* direct guards — ``if tracer is not None and tracer.enabled:``;
* hoisted flags — ``tracing = tracer is not None and tracer.enabled`` then
  ``if tracing:`` (and derived flags like ``fold_trace = tracing and ...``);
* handle guards — ``span = tracer.begin(...)`` under a guard, later
  ``if span is not None: tracer.end(span)``;
* null-object receivers — names assigned from ``NULL_TRACER`` (or defaulted
  to it) may be called unguarded, that being the point of the pattern.

Backed dynamically by ``tests/test_obs_integration.py`` (answer/probe/
latency invariance) and ``benchmarks/bench_obs.py`` (the <=5% null-tracer
overhead floor); this rule keeps new instrumentation sites honest.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..context import FileContext
from ..findings import Finding
from .base import Rule, ancestors, dotted_name

#: Repo-relative packages whose call sites are on the measured hot path.
HOT_PACKAGES = (
    "src/repro/core",
    "src/repro/kernels",
    "src/repro/exec",
    "src/repro/service",
)

#: Tracer methods that emit events.
TRACER_METHODS = frozenset({"span", "instant", "begin", "end"})
#: Registry methods that record metrics.
METRIC_METHODS = frozenset({"counter", "gauge", "observe"})


def _receiver_kind(func: ast.Attribute) -> str:
    """'tracer' / 'metrics' / '' by the receiver's dotted source name."""
    receiver = dotted_name(func.value)
    if receiver is None:
        return ""
    lowered = receiver.lower()
    if func.attr in TRACER_METHODS and "tracer" in lowered:
        return "tracer"
    if func.attr in METRIC_METHODS and (
        "metrics" in lowered or "registry" in lowered
    ):
        return "metrics"
    return ""


def _mentions(node: ast.AST, names: Set[str]) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "enabled":
            return True
        if isinstance(child, ast.Name) and child.id in names:
            return True
    return False


def _tainted_names(tree: ast.Module) -> Set[str]:
    """Names carrying guard state: derived from ``.enabled``, a tracer
    handle (``x = tracer.begin(...)``), ``NULL_TRACER`` or another such name."""
    tainted: Set[str] = {"NULL_TRACER"}
    assignments = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            assignments.append((node.targets, node.value))
        elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)) and node.value:
            assignments.append(([node.target], node.value))
    changed = True
    while changed:
        changed = False
        for targets, value in assignments:
            guardy = _mentions(value, tainted)
            if not guardy and isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Attribute) and _receiver_kind(func):
                    guardy = True
            if not guardy:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in tainted:
                    tainted.add(target.id)
                    changed = True
    return tainted


def _null_safe_map(tree: ast.Module) -> dict:
    """Scope id → names bound (or defaulted) to ``NULL_TRACER`` there.

    Keyed by ``id(function_node)`` (``None`` for module scope) so that one
    function defaulting ``tracer=NULL_TRACER`` does not whitelist the name
    for every *other* function in the module.  Requires parent links
    (:meth:`FileContext.walk` ran first).
    """
    safe: dict = {None: set()}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if any(
                isinstance(child, ast.Name) and child.id == "NULL_TRACER"
                for child in ast.walk(node.value)
            ):
                scope = _enclosing_scope(node)
                safe.setdefault(scope, set()).update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            scoped = safe.setdefault(id(node), set())
            for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                    args.defaults):
                if isinstance(default, ast.Name) and default.id == "NULL_TRACER":
                    scoped.add(arg.arg)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if isinstance(default, ast.Name) and default.id == "NULL_TRACER":
                    scoped.add(arg.arg)
    return safe


def _enclosing_scope(node: ast.AST):
    for parent in ancestors(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return id(parent)
    return None


def _null_safe_for(call: ast.Call, safe_map: dict) -> Set[str]:
    """Null-safe names visible at one call site: module + enclosing scopes."""
    names = set(safe_map.get(None, ()))
    for parent in ancestors(call):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names |= safe_map.get(id(parent), set())
    return names


class GuardedObservabilityRule(Rule):
    """OBS001: hot-path tracer/metrics calls are guarded or null-object."""

    code = "OBS001"
    name = "guarded-observability"
    contract = (
        "tracer/metrics calls in core/, kernels/, exec/, service/ sit "
        "behind an enabled-guard or use the NULL_TRACER pattern"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if not ctx.under(*HOT_PACKAGES):
            return []
        tainted = None
        null_safe_map = None
        findings: List[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            kind = _receiver_kind(func)
            if not kind:
                continue
            if tainted is None:
                tainted = _tainted_names(ctx.tree)
                null_safe_map = _null_safe_map(ctx.tree)
            receiver = dotted_name(func.value) or ""
            receiver_head = receiver.split(".", 1)[0]
            null_safe = _null_safe_for(node, null_safe_map)
            if receiver in null_safe or receiver_head in null_safe:
                continue
            if self._guarded(node, tainted | {receiver, receiver_head}):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"unguarded {kind} call {receiver}.{func.attr}() on a hot "
                    "path; guard with 'if tracer.enabled:' (or a flag derived "
                    "from it) or default the receiver to NULL_TRACER",
                )
            )
        return findings

    @staticmethod
    def _guarded(call: ast.Call, guard_names: Set[str]) -> bool:
        child: ast.AST = call
        for parent in ancestors(call):
            if isinstance(parent, (ast.If, ast.While)) and child is not parent.test:
                if _mentions(parent.test, guard_names):
                    return True
            elif isinstance(parent, ast.IfExp) and child is not parent.test:
                if _mentions(parent.test, guard_names):
                    return True
            elif isinstance(parent, ast.BoolOp):
                # ``tracing and tracer.instant(...)`` — the call's siblings
                # to the left act as the guard.
                for value in parent.values:
                    if value is child:
                        break
                    if _mentions(value, guard_names):
                        return True
            child = parent
        return False
