"""MET001: metric names validate at lint time, not first use.

:class:`repro.obs.metrics.MetricsRegistry` validates every metric name
against the ``plane.subsystem.metric`` grammar — at runtime, on first use.
A misspelled name in a rarely-taken branch (a fault path, a degraded mode)
therefore only explodes when that branch finally runs.  This rule applies
the *same* compiled grammar (imported from the registry module, so the two
can never drift) to every string literal passed to ``counter``/``gauge``/
``observe`` on a registry-like receiver.  For f-strings the literal
fragments are checked against the grammar's alphabet — a typo like an
uppercase plane or a stray space is still caught, while the interpolated
holes are left to the runtime check.
"""

from __future__ import annotations

import ast
import re
from typing import List

from ...obs.metrics import METRIC_NAME_PATTERN
from ..context import FileContext
from ..findings import Finding
from .base import Rule, dotted_name

#: Registry methods whose first argument is a metric name.
REGISTRY_METHODS = frozenset({"counter", "gauge", "observe"})

#: Characters an f-string's literal fragments may contribute to a name.
_FRAGMENT_PATTERN = re.compile(r"^[a-z0-9_.]*$")


class MetricNameRule(Rule):
    """MET001: literal metric names match ``plane.subsystem.metric``."""

    code = "MET001"
    name = "metric-name-grammar"
    contract = (
        "metric-name literals passed to MetricsRegistry match the "
        "plane.subsystem.metric grammar at lint time"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in REGISTRY_METHODS:
                continue
            receiver = (dotted_name(func.value) or "").lower()
            if "registry" not in receiver and "metrics" not in receiver:
                continue
            name_arg = self._name_argument(node)
            if name_arg is None:
                continue
            findings.extend(self._check_name(ctx, func.attr, name_arg))
        return findings

    @staticmethod
    def _name_argument(call: ast.Call):
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "name":
                return keyword.value
        return None

    def _check_name(self, ctx: FileContext, method: str, node: ast.AST):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if not METRIC_NAME_PATTERN.match(node.value):
                yield self.finding(
                    ctx,
                    node,
                    f"metric name {node.value!r} passed to .{method}() does "
                    "not match the plane.subsystem.metric grammar "
                    "(lowercase dotted segments, two or more)",
                )
        elif isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    if not _FRAGMENT_PATTERN.match(value.value):
                        yield self.finding(
                            ctx,
                            node,
                            f"metric-name fragment {value.value!r} contains "
                            "characters outside the plane.subsystem.metric "
                            "alphabet ([a-z0-9_.])",
                        )
