"""IMP001: layering — import direction and the numpy boundary.

Two structural contracts keep the codebase's layers honest:

* **Import direction.**  ``graphs/`` and ``core/`` are the foundation every
  other plane builds on; the service, report and CLI layers sit above them.
  An import from ``repro.graphs``/``repro.core`` *up* into ``repro.service``,
  ``repro.reports`` or ``repro.cli`` inverts the architecture (and usually
  announces itself later as an import cycle).
* **The numpy boundary.**  numpy is an optional ``[fast]`` extra: the
  library must import and answer bit-identically without it
  (``docs/kernels.md``).  Only ``kernels/`` may import numpy, and only
  inside a ``try``/``except ImportError`` fallback guard, so a
  numpy-less host degrades to the scalar kernels instead of failing at
  import time.

Backed dynamically by the CI matrix (the main tests job deliberately runs
without numpy); this rule catches a stray top-level ``import numpy`` on any
host, including the ones where numpy happens to be installed.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..context import FileContext
from ..findings import Finding
from .base import Rule, ancestors

#: Foundation packages (module-name prefixes) with restricted imports.
FOUNDATION_PREFIXES = ("repro.graphs", "repro.core")
#: Upper layers the foundation must not reach into.
UPPER_LAYERS = ("repro.service", "repro.reports", "repro.cli")
#: The only package allowed to import numpy (fallback-guarded).
KERNELS_DIR = "src/repro/kernels"


def _absolute_module(node: ast.AST, package: Optional[str]) -> List[str]:
    """Absolute dotted module names imported by an Import/ImportFrom node."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level == 0:
            return [node.module] if node.module else []
        if package is None:
            return []
        base = package.split(".")
        # level=1 is the current package; each extra level climbs one parent.
        climb = node.level - 1
        if climb > len(base):
            return []
        prefix = base[: len(base) - climb]
        if node.module:
            return [".".join(prefix + node.module.split("."))]
        # ``from .. import service`` — each alias is a submodule.
        return [".".join(prefix + [alias.name]) for alias in node.names]
    return []


def _in_import_error_guard(node: ast.AST) -> bool:
    for parent in ancestors(node):
        if isinstance(parent, ast.Try):
            for handler in parent.handlers:
                caught = handler.type
                names = []
                if caught is None:
                    return True
                if isinstance(caught, ast.Tuple):
                    names = [
                        n.id for n in caught.elts if isinstance(n, ast.Name)
                    ]
                elif isinstance(caught, ast.Name):
                    names = [caught.id]
                if any(
                    name in ("ImportError", "ModuleNotFoundError", "Exception")
                    for name in names
                ):
                    return True
    return False


class LayeringRule(Rule):
    """IMP001: foundation imports point down; numpy stays behind kernels/."""

    code = "IMP001"
    name = "layering"
    contract = (
        "graphs/ and core/ never import service/reports/cli; numpy is "
        "imported only inside kernels/ fallback guards"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        module = ctx.module_name
        # The defining package of a relative import: for a module file the
        # containing package, for a package __init__ the package itself.
        package = None
        if module is not None:
            package = module if ctx.rel_path.endswith("__init__.py") else (
                module.rpartition(".")[0] or None
            )
        in_foundation = module is not None and any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in FOUNDATION_PREFIXES
        )
        findings: List[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _absolute_module(node, package):
                if in_foundation and any(
                    target == layer or target.startswith(layer + ".")
                    for layer in UPPER_LAYERS
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"foundation module {module} imports upper layer "
                            f"{target}; graphs/ and core/ must not depend on "
                            "service/, reports/ or the CLI",
                        )
                    )
                if target == "numpy" or target.startswith("numpy."):
                    if not ctx.under(KERNELS_DIR):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "numpy import outside kernels/; numpy is an "
                                "optional [fast] extra — go through "
                                "repro.kernels instead",
                            )
                        )
                    elif not _in_import_error_guard(node):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "unguarded numpy import in kernels/; wrap it "
                                "in the try/except ImportError fallback so "
                                "numpy-less hosts degrade to scalar kernels",
                            )
                        )
        return findings
