"""PLAN001: executor plans reference only module-level callables.

The process executor ships :class:`repro.exec.plan.ChunkPlan` /
:class:`repro.core.lca.LCASpec` objects to pool workers by pickling.
Pickle serializes functions and classes *by qualified name*, so a lambda
or a function defined inside another function (a closure) breaks the
process backend at runtime — typically long after the plan-building code
was written, and only on multi-core hosts.  This rule rejects those at
lint time: any argument to a plan-type constructor (or plan builder) that
contains a ``lambda`` or names a nested function is a finding.

Backed dynamically by ``tests/test_exec_backends.py`` (the serial/thread/
process equivalence matrix); this rule fails the build before a
single-vCPU CI host lets an unpicklable plan slip through.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..context import FileContext
from ..findings import Finding
from .base import Rule, dotted_name

#: Constructors/builders whose arguments end up inside pickled plans.
PLAN_CONSTRUCTORS = frozenset(
    {
        "ChunkPlan",
        "ChunkResult",
        "LCASpec",
        "InlineGraphRef",
        "SharedGraphRef",
        "build_chunk_plans",
    }
)


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside other functions (closures)."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.ClassDef):
                # Methods are reachable by qualified name; only functions
                # nested under a *function* scope are unpicklable.
                visit(child, inside_function)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return nested


class PicklablePlanRule(Rule):
    """PLAN001: no lambdas/closures inside executor plan constructors."""

    code = "PLAN001"
    name = "picklable-plans"
    contract = (
        "executor plan constructors receive only module-level "
        "callables/classes — lambdas and closures break process-pool pickling"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        nested = None
        findings: List[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] not in PLAN_CONSTRUCTORS:
                continue
            if nested is None:
                nested = _nested_function_names(ctx.tree)
            short = callee.split(".")[-1]
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                for child in ast.walk(argument):
                    if isinstance(child, ast.Lambda):
                        findings.append(
                            self.finding(
                                ctx,
                                child,
                                f"lambda passed into {short}(...); plans are "
                                "pickled to process workers — use a "
                                "module-level callable",
                            )
                        )
                    elif isinstance(child, ast.Name) and child.id in nested:
                        findings.append(
                            self.finding(
                                ctx,
                                child,
                                f"nested function {child.id!r} passed into "
                                f"{short}(...); closures cannot be pickled to "
                                "process workers — hoist it to module level",
                            )
                        )
        return findings
