"""EXC001: no silent exception swallowing in the resilience layers.

``service/``, ``faults/`` and ``exec/`` are exactly the places that *handle*
failure — replica failover, retries, degraded modes — and their contracts
depend on every failure being either resolved or surfaced: the engine keeps
an exact shed ledger, the retry helper re-raises exhausted transients, the
injector's storms are accounted fault-by-fault.  A bare ``except:`` (which
also eats ``KeyboardInterrupt``) or an ``except Exception: pass`` silently
converts an accounted failure into a lie in the availability numbers.

Findings: any bare ``except:``, and any handler catching ``Exception`` /
``BaseException`` whose body does nothing (only ``pass``/``...``/
``continue``).  Handlers that narrow the type, re-raise, mirror the error
to a caller or record it are fine.
"""

from __future__ import annotations

import ast
from typing import List

from ..context import FileContext
from ..findings import Finding
from .base import Rule, dotted_name

#: Packages whose error handling must stay honest.
GUARDED_PACKAGES = ("src/repro/service", "src/repro/faults", "src/repro/exec")

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _is_noop(statement: ast.stmt) -> bool:
    if isinstance(statement, (ast.Pass, ast.Continue)):
        return True
    return isinstance(statement, ast.Expr) and isinstance(
        statement.value, ast.Constant
    )


class SilentExceptRule(Rule):
    """EXC001: no bare/blanket-and-silent except in service/, faults/, exec/."""

    code = "EXC001"
    name = "no-silent-except"
    contract = (
        "service/, faults/ and exec/ never use bare except: or a "
        "broad except whose body silently swallows the error"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if not ctx.under(*GUARDED_PACKAGES):
            return []
        findings: List[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "bare 'except:' also catches KeyboardInterrupt/"
                        "SystemExit; name the exception types",
                    )
                )
                continue
            caught = dotted_name(node.type)
            if caught in _BROAD_TYPES and all(_is_noop(s) for s in node.body):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"'except {caught}:' swallows the failure silently; "
                        "narrow the type, re-raise, or record the error",
                    )
                )
        return findings
