"""Shared rule machinery: the Rule protocol and small AST utilities.

Every rule is a class with a ``code`` (``DET001``-style, stable, documented
in ``docs/lint.md``), a one-line ``contract`` and a per-file :meth:`check`.
Rules that need a whole-tree view (DOC001's entry-point coverage) override
:meth:`finalize`, which runs once after every file was checked.

The helpers here implement the two resolutions most rules need:

* :class:`ImportMap` — what does a bare name mean in this module?  Built
  from the module's ``import``/``from .. import`` statements, it canonises
  ``_time.perf_counter`` and ``from time import perf_counter`` to the same
  dotted string ``time.perf_counter``.
* :func:`dotted_name` — the source-level dotted chain of a ``Name`` /
  ``Attribute`` node (``self._tracer.instant`` → that string), or ``None``
  for dynamic receivers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from ..context import FileContext, ProjectContext
from ..findings import Finding


class Rule:
    """Base class for lint rules; subclasses set the class attributes."""

    #: Stable finding code, e.g. ``"DET001"``.
    code: str = "LINT000"
    #: Short slug used in listings.
    name: str = "rule"
    #: One-line statement of the contract the rule enforces.
    contract: str = ""

    def check(self, ctx: FileContext) -> List[Finding]:
        """Findings for one parsed file (default: none)."""
        return []

    def finalize(self, project: ProjectContext) -> List[Finding]:
        """Whole-tree findings, after every file was checked (default: none)."""
        return []

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """The dotted source text of a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias → canonical dotted module/attribute map for one module."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b.
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, via the imports.

        ``_time.perf_counter`` (after ``import time as _time``) resolves to
        ``time.perf_counter``; an unimported base name resolves to itself so
        rules can still match plain module-level usage.
        """
        source = dotted_name(node)
        if source is None:
            return None
        head, _, rest = source.partition(".")
        canonical_head = self.aliases.get(head, head)
        return f"{canonical_head}.{rest}" if rest else canonical_head


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk parent links installed by :meth:`FileContext.walk`."""
    current = getattr(node, "_repro_lint_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_lint_parent", None)
