"""The rule registry: every contract ``repro lint`` enforces.

Rules are registered here in code order; the engine instantiates the
registry once per run.  Adding a rule is three steps (``docs/lint.md``):
write the class in a module under this package, import and list it in
:data:`ALL_RULES`, and document its code + fixture tests.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Rule
from .determinism import AmbientRandomRule, WallClockRule
from .docs import DocCoverageRule
from .exceptions import SilentExceptRule
from .imports import LayeringRule
from .metrics import MetricNameRule
from .observability import GuardedObservabilityRule
from .plans import PicklablePlanRule

#: Every registered rule class, in reporting-code order.
ALL_RULES = [
    WallClockRule,
    AmbientRandomRule,
    DocCoverageRule,
    SilentExceptRule,
    LayeringRule,
    MetricNameRule,
    GuardedObservabilityRule,
    PicklablePlanRule,
]


def build_rules() -> List[Rule]:
    """Fresh rule instances for one lint run."""
    return [rule_class() for rule_class in ALL_RULES]


def rule_index() -> Dict[str, Rule]:
    """Code → rule instance, for listings and documentation checks."""
    return {rule.code: rule for rule in build_rules()}
