"""DOC001: docstring coverage for modules and public entry points.

The lint-framework home of what ``scripts/check_docs.py`` used to do on its
own (the script is now a thin shim over this rule, so CI wiring and the
``repro lint`` front door see the same check):

* **Module docstrings** — every scanned module (including package
  ``__init__.py`` files) opens with a docstring.  Checked on the AST, so
  nothing is imported and import-time side effects cannot hide a miss.
* **Public entry points** — the load-bearing classes/functions a new user
  meets first (the quickstart API, the CLI, the planes' front doors) each
  carry a docstring.  Checked by importing :mod:`repro` once per run, so
  the list below breaks loudly if an entry point is renamed.  This half
  only runs when the scanned root actually contains the repro package
  (fixture trees in tests skip it).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List

from ..context import FileContext, ProjectContext
from ..findings import Finding
from .base import Rule

#: Dotted names of the top public entry points (module:attribute).
ENTRY_POINTS = [
    "repro.graphs.graph:Graph",
    "repro.graphs.csr:CSRGraph",
    "repro.graphs.generators:build_family",
    "repro.core.lca:SpannerLCA",
    "repro.core.lca:SpannerLCA.materialize",
    "repro.core.oracle:CachedOracle",
    "repro.core.registry:create",
    "repro.analysis.harness:evaluate_lca",
    "repro.service.engine:ServiceEngine",
    "repro.service.workload:make_workload",
    "repro.faults.plan:FaultPlan",
    "repro.faults.plan:FaultPlan.generate",
    "repro.faults.injector:FaultInjector",
    "repro.exec.backends:call_with_retries",
    "repro.obs.tracer:SpanTracer",
    "repro.obs.metrics:MetricsRegistry",
    "repro.obs.metrics:collect_run_metrics",
    "repro.obs.profiler:ProbeProfiler",
    "repro.obs.export:write_trace_jsonl",
    "repro.obs.export:chrome_trace",
    "repro.core.lca:SpannerLCA.attach_profiler",
    "repro.reports.spec:ScenarioSpec",
    "repro.reports.runner:run_scenario",
    "repro.reports.render:render_report",
    "repro.cli:build_parser",
    "repro.lint:run_lint",
    "repro.graphs.csr:CSRGraph.from_arrays",
    "repro.graphs.generators:EdgeChunkStream",
    "repro.graphs.io:read_edge_list_stream",
    "repro.scale.stream:build_csr_from_chunks",
    "repro.scale.stream:build_stream_family",
    "repro.scale.snapshot:save_csr_snapshot",
    "repro.scale.snapshot:load_csr_snapshot",
    "repro.scale.snapshot:MappedCSRGraph",
    "repro.core.cache:BoundedOracleCache",
    "repro.core.lca:SpannerLCA.set_memo_cap",
]


def _is_private(rel_path: str) -> bool:
    return any(
        part.startswith("_") and part != "__init__.py"
        for part in rel_path.split("/")
    )


def _module_path(root: Path, module_name: str) -> str:
    """Repo-relative source path of a dotted module (file or package)."""
    base = "src/" + module_name.replace(".", "/")
    for candidate in (base + ".py", base + "/__init__.py"):
        if (root / candidate).exists():
            return candidate
    return "src/repro"


def entry_point_failures() -> List[str]:
    """The importing half of the check, shared with ``scripts/check_docs.py``.

    Returns human-readable failure lines (empty when everything passes).
    """
    import importlib

    failures: List[str] = []
    for dotted in ENTRY_POINTS:
        module_name, _, attribute_path = dotted.partition(":")
        try:
            target = importlib.import_module(module_name)
            for attribute in attribute_path.split("."):
                target = getattr(target, attribute)
        except (ImportError, AttributeError) as exc:
            failures.append(f"{dotted}: cannot resolve entry point ({exc})")
            continue
        if not (getattr(target, "__doc__", None) or "").strip():
            failures.append(f"{dotted}: public entry point has no docstring")
    return failures


class DocCoverageRule(Rule):
    """DOC001: module docstrings everywhere, docstrings on public entry points."""

    code = "DOC001"
    name = "doc-coverage"
    contract = (
        "every scanned module opens with a docstring and every public "
        "entry point documents itself"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        if _is_private(ctx.rel_path):
            return []
        if ast.get_docstring(ctx.tree) is None:
            return [
                Finding(
                    code=self.code,
                    path=ctx.rel_path,
                    line=1,
                    col=0,
                    message="module has no docstring",
                )
            ]
        return []

    def finalize(self, project: ProjectContext) -> List[Finding]:
        if not (project.root / "src" / "repro" / "cli.py").exists():
            return []
        findings: List[Finding] = []
        for failure in entry_point_failures():
            dotted = failure.split(":", 1)[0]
            findings.append(
                Finding(
                    code=self.code,
                    path=_module_path(project.root, dotted),
                    line=1,
                    col=0,
                    message=failure,
                )
            )
        return findings
