"""DET001/DET002: no wall clock, no ambient randomness.

The reproduction's headline guarantee — byte-identical reports and
bit-identical probe accounting across kernels × backends × executors — only
holds if deterministic paths never consult sources that vary between runs:

* **DET001** — wall-clock and entropy reads (``time.time``,
  ``time.perf_counter``, ``datetime.now``, ``os.urandom``, ``uuid.uuid4``,
  anything in :mod:`secrets`).  Benchmarks *measure* wall-clock time and
  the result store records it as provenance; those grants live in
  ``lint-baseline.toml`` with reasons, everywhere else is a finding.
* **DET002** — ambient randomness: calls through the module-level
  :mod:`random` singleton (``random.random()``, ``from random import
  choice``), unseeded ``random.Random()`` and ``random.SystemRandom``.
  All randomness must flow through :class:`repro.core.seed.Seed` or a
  namespaced seeded stream (``random.Random(f"zipf:{seed}")``), which is
  what makes every draw a pure function of the master seed.

Backed dynamically by ``tests/test_service_parallel.py`` (the broken-clock
audit) and the cross-run byte-compare jobs in CI; this rule catches the
careless import before those tests have to.
"""

from __future__ import annotations

import ast
from typing import List

from ..context import FileContext
from ..findings import Finding
from .base import ImportMap, Rule

#: Canonical dotted names whose *reading* makes a path nondeterministic.
WALL_CLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: ``random`` module attributes that are fine to reference.
_RANDOM_ALLOWED = frozenset({"random.Random"})


class WallClockRule(Rule):
    """DET001: no wall-clock or entropy source outside allowlisted modules."""

    code = "DET001"
    name = "no-wall-clock"
    contract = (
        "deterministic paths never read the wall clock or OS entropy; "
        "wall-clock provenance is confined to baselined modules"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ctx.walk():
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node, ast.Name) and node.id not in imports.aliases:
                continue
            canonical = imports.resolve(node)
            if canonical is None:
                continue
            if canonical in WALL_CLOCK_NAMES or canonical.startswith("secrets."):
                # Attribute sub-chains resolve to prefixes (``datetime.datetime``)
                # which are not in the banned set, so each source reference is
                # reported exactly once, at the full chain.
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"reads nondeterministic source {canonical}; inject a "
                        "clock/seed or add a reasoned baseline entry",
                    )
                )
        return findings


class AmbientRandomRule(Rule):
    """DET002: all randomness flows through seeded, namespaced streams."""

    code = "DET002"
    name = "no-ambient-random"
    contract = (
        "no module-level random usage and no unseeded Random(); randomness "
        "derives from core.seed.Seed / namespaced seeded streams"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings: List[Finding] = []
        for node in ctx.walk():
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ("Random",):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"imports random.{alias.name}, the shared "
                                "module-level stream; construct a seeded "
                                "random.Random(namespace) instead",
                            )
                        )
                continue
            if isinstance(node, ast.Call):
                canonical = imports.resolve(node.func)
                if canonical == "random.Random" and not (node.args or node.keywords):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "unseeded random.Random() is seeded from OS "
                            "entropy; pass a namespaced seed",
                        )
                    )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            canonical = imports.resolve(node)
            if canonical is None or not canonical.startswith("random."):
                continue
            if canonical in _RANDOM_ALLOWED:
                continue
            if canonical == "random.SystemRandom":
                message = "random.SystemRandom draws OS entropy; use a seeded Random"
            else:
                attribute = canonical.partition(".")[2]
                message = (
                    f"module-level random.{attribute} uses the shared global "
                    "stream; use a seeded namespaced random.Random instead"
                )
            findings.append(self.finding(ctx, node, message))
        return findings
