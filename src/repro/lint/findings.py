"""Lint findings: one frozen record per contract violation.

A :class:`Finding` pins a rule code to a file position with a one-line
message.  Findings sort by ``(path, line, col, code, message)`` — a total
order over every field — so a lint run over the same tree always reports in
the same order, which is what lets the test suite byte-pin the JSON output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position.

    ``path`` is repository-root-relative with POSIX separators, so findings
    (and their baseline globs) mean the same thing on every platform.
    """

    code: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.code, self.message)

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
