"""In-source suppression pragmas for ``repro lint``.

Two forms, mirroring the usual linter conventions:

* ``# repro-lint: disable=CODE1,CODE2`` — suppresses those codes on the
  *same physical line* the comment sits on (use it on the exact line a
  finding anchors to; multi-line statements anchor findings at the
  offending node's own line, not the statement head).
* ``# repro-lint: disable-file=CODE1,CODE2`` — suppresses those codes for
  the whole file (conventionally placed near the top).

Anything after the code list is free-form justification text, e.g.::

    clock=time.perf_counter,  # repro-lint: disable=DET001 - live default

Pragmas are an escape hatch for *deliberate, explained* exceptions; the
baseline file (:mod:`repro.lint.baseline`) covers directory-level grants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Set

#: ``disable=`` / ``disable-file=`` followed by a comma-separated code list.
_PRAGMA_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
)


@dataclass
class PragmaIndex:
    """Per-file map of suppressed codes: by line, plus file-wide."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def suppresses(self, code: str, line: int) -> bool:
        if code in self.file_wide:
            return True
        return code in self.by_line.get(line, ())


def scan_pragmas(source: str) -> PragmaIndex:
    """Collect every suppression pragma in ``source``.

    The scan is line-based on the raw text (comments never reach the AST).
    A pragma-looking string *inside a string literal* would be picked up
    too; that is acceptable for a lint suppressor — it can only ever hide
    findings on its own line, never invent them.
    """
    index = PragmaIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _PRAGMA_PATTERN.finditer(text):
            codes = {code.strip() for code in match.group(2).split(",")}
            if match.group(1) == "disable-file":
                index.file_wide.update(codes)
            else:
                index.by_line.setdefault(lineno, set()).update(codes)
    return index
