"""Parse contexts handed to lint rules: one per file, one per run.

A :class:`FileContext` bundles everything a per-file rule reads — the
repo-relative POSIX path, raw source, parsed AST and the suppression
pragmas — plus lazily-computed extras (parent links for ancestor walks).
A :class:`ProjectContext` is the whole scanned set, for rules that check
cross-file contracts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .pragmas import PragmaIndex


@dataclass
class FileContext:
    """One parsed source file under lint."""

    root: Path
    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    pragmas: PragmaIndex
    _parents_installed: bool = field(default=False, repr=False)

    def walk(self):
        """``ast.walk`` over the tree with parent links installed once.

        Rules use :func:`repro.lint.rules.base.ancestors` to walk upward.
        """
        if not self._parents_installed:
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    child._repro_lint_parent = node  # type: ignore[attr-defined]
            self._parents_installed = True
        return ast.walk(self.tree)

    def under(self, *prefixes: str) -> bool:
        """Is this file inside any of the given repo-relative directories?"""
        return any(
            self.rel_path == prefix or self.rel_path.startswith(prefix + "/")
            for prefix in prefixes
        )

    @property
    def module_name(self) -> Optional[str]:
        """Dotted import name for files under ``src/`` (else ``None``)."""
        if not self.rel_path.startswith("src/"):
            return None
        parts = self.rel_path[len("src/"):].removesuffix(".py").split("/")
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


@dataclass
class ProjectContext:
    """The whole scanned tree: root plus every parsed file, sorted by path."""

    root: Path
    files: List[FileContext]
