"""repro — Local Computation Algorithms for Graph Spanners.

A faithful, laptop-scale reproduction of

    Parter, Rubinfeld, Vakilian, Yodpinyanee:
    "Local Computation Algorithms for Spanners" (2019).

The public API is re-exported here for convenience:

* graph substrate and generators        — :mod:`repro.graphs`
* probe oracle and LCA framework        — :mod:`repro.core`
* bounded-independence randomness       — :mod:`repro.rand`
* the three spanner LCAs                — :mod:`repro.spanner3`,
                                          :mod:`repro.spanner5`,
                                          :mod:`repro.spannerk`
* global baselines                      — :mod:`repro.baselines`
* classic LCAs (MIS, matching)          — :mod:`repro.lca_classic`
* lower-bound constructions             — :mod:`repro.lowerbound`
* verification / benchmarking harness   — :mod:`repro.analysis`
* parallel execution plane (executor backends, shared-memory plans)
                                        — :mod:`repro.exec`
* online query service (shards, scheduler, workloads)
                                        — :mod:`repro.service`
* experiment & reporting plane (scenario specs, Markdown reports)
                                        — :mod:`repro.reports`

Quickstart
----------
>>> from repro import graphs, ThreeSpannerLCA, evaluate_lca
>>> graph = graphs.gnp_graph(300, 0.2, seed=1)
>>> lca = ThreeSpannerLCA(graph, seed=7)
>>> isinstance(lca.query(*next(iter(graph.edges()))), bool)
True
"""

from . import (
    analysis,
    baselines,
    core,
    exec,
    graphs,
    lca_classic,
    lowerbound,
    rand,
    reports,
    service,
)
from .analysis import (
    EvaluationReport,
    check_consistency,
    evaluate_lca,
    evaluate_materialized,
    format_table,
    measure_stretch,
    verify_spanner,
)
from .core import (
    AdjacencyListOracle,
    CachedOracle,
    CombinedLCA,
    MaterializedSpanner,
    ProbeCounter,
    ProbeStatistics,
    Seed,
    SpannerLCA,
)
from .core.registry import available as available_lcas
from .core.registry import create as create_lca
from .service import (
    ServiceConfig,
    ServiceEngine,
    ServiceReport,
    ShardedOraclePool,
    make_workload,
    serve_workload,
)
from .graphs import CSRGraph, Graph
from .spanner3 import ThreeSpannerLCA, ThreeSpannerParams
from .spanner5 import FiveSpannerLCA, FiveSpannerParams
from .spannerk import KSquaredParams, KSquaredSpannerLCA

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis",
    "baselines",
    "core",
    "exec",
    "graphs",
    "lca_classic",
    "lowerbound",
    "rand",
    "reports",
    "Graph",
    "CSRGraph",
    "Seed",
    "SpannerLCA",
    "CombinedLCA",
    "AdjacencyListOracle",
    "CachedOracle",
    "ProbeCounter",
    "ProbeStatistics",
    "MaterializedSpanner",
    "ThreeSpannerLCA",
    "ThreeSpannerParams",
    "FiveSpannerLCA",
    "FiveSpannerParams",
    "KSquaredSpannerLCA",
    "KSquaredParams",
    "EvaluationReport",
    "evaluate_lca",
    "evaluate_materialized",
    "check_consistency",
    "measure_stretch",
    "verify_spanner",
    "format_table",
    "available_lcas",
    "create_lca",
    "service",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceReport",
    "ShardedOraclePool",
    "serve_workload",
    "make_workload",
]
