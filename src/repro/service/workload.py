"""Open-loop request-stream generators: workload kinds as a first-class axis.

A workload turns "materialize every edge once" into "serve a stream of
requests": each request is one ``(u, v) ∈ spanner?`` question, and different
kinds stress different parts of the serving stack —

``uniform``
    Edges sampled independently and uniformly (with replacement).  The
    baseline: every shard and every memo entry is equally likely to be hit.
``zipf``
    Endpoints follow a Zipf law over the degree ranking: a few hot vertices
    (the high-degree hubs) receive most of the traffic, as in real social /
    web query logs.  Stresses shard load balance and rewards per-vertex
    memoization.
``adaptive``
    Queries follow the answers: after an edge is reported in the spanner,
    later requests explore edges incident to its endpoints (a client walking
    the spanner).  This is the many-adaptive-queries regime of the
    space-efficient LCA line of work — the stream depends on earlier
    answers, so it cannot be pre-generated.
``churn``
    A read/write mix: with probability ``write_ratio`` the next request is a
    graph *mutation* (a random edge insertion or deletion, emitted as a
    :class:`~repro.service.trace.TraceOp`), otherwise a uniform read.  The
    workload keeps an internal mirror of the edge set — every emitted
    mutation is valid against the state all earlier emitted mutations
    produce, which the engine guarantees by applying writes in stream order
    and never shedding them.  This is the live-traffic regime the
    epoch-based cache invalidation exists for.
``trace``
    Replay of a recorded request log (JSONL, see :mod:`repro.service.trace`)
    — the regression-testing workhorse: identical byte streams across runs.
    Traces replay queries *and* recorded mutations losslessly.

All workloads draw from a private :class:`random.Random` seeded explicitly,
so a (kind, graph, seed, size) tuple always reproduces the same stream —
adaptive streams additionally require the same answer sequence, which the
LCA purity contract guarantees.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.ids import canonical_edge
from ..graphs.graph import Graph
from .trace import TraceOp, read_trace_ops

Edge = Tuple[int, int]

#: What a workload emits: plain query edges, or TraceOp records for streams
#: that carry mutations.
Request = Union[Edge, TraceOp]

#: Registered workload kinds (the scenario axis).
WORKLOAD_KINDS = ("uniform", "zipf", "adaptive", "churn", "trace")


class Workload:
    """Base class: a pull-based request stream with an answer feedback hook.

    The engine pulls requests with :meth:`next_request` (``None`` ends the
    stream) and reports each served answer back through :meth:`observe`.
    Open-loop kinds ignore the feedback; the adaptive kind uses it to steer.
    """

    kind: str = "abstract"

    def __init__(self, num_requests: int) -> None:
        self.num_requests = int(num_requests)
        self._emitted = 0

    def next_request(self) -> Optional[Edge]:
        if self._emitted >= self.num_requests:
            return None
        self._emitted += 1
        return self._generate()

    def _generate(self) -> Edge:
        raise NotImplementedError

    def observe(self, edge: Edge, in_spanner: bool) -> None:
        """Feedback hook: called once per *served* request (not rejected)."""

    def __iter__(self) -> Iterator[Edge]:
        while True:
            edge = self.next_request()
            if edge is None:
                return
            yield edge


def _oriented(rng: random.Random, u: int, v: int) -> Edge:
    """Randomly orient an edge — clients ask either direction."""
    return (u, v) if rng.random() < 0.5 else (v, u)


class UniformWorkload(Workload):
    """Edges sampled uniformly with replacement."""

    kind = "uniform"

    def __init__(self, graph: Graph, num_requests: int, seed: int = 0) -> None:
        super().__init__(num_requests)
        self._edges = graph.edge_list()
        if not self._edges:
            raise ValueError("graph has no edges to sample requests from")
        # String seeds hash deterministically (sha512), unlike tuples whose
        # seeding goes through the per-process salted hash().
        self._rng = random.Random(f"uniform:{seed}")

    def _generate(self) -> Edge:
        rng = self._rng
        u, v = self._edges[rng.randrange(len(self._edges))]
        return _oriented(rng, u, v)


class ZipfWorkload(Workload):
    """Endpoint popularity follows a Zipf law over the degree ranking.

    Vertex of degree-rank ``r`` (1 = highest degree) is chosen with
    probability proportional to ``1 / r**skew``; the request edge is a
    uniformly random edge incident to the chosen vertex.
    """

    kind = "zipf"

    def __init__(
        self, graph: Graph, num_requests: int, seed: int = 0, skew: float = 1.1
    ) -> None:
        super().__init__(num_requests)
        if skew <= 0:
            raise ValueError("skew must be positive")
        self._graph = graph
        self._rng = random.Random(f"zipf:{seed}")
        ranked = [v for v in graph.vertices() if graph.degree(v) > 0]
        if not ranked:
            raise ValueError("graph has no edges to sample requests from")
        # Stable hot set: order by (degree desc, id) so the ranking — and
        # therefore the whole stream — is independent of dict order.
        ranked.sort(key=lambda v: (-graph.degree(v), v))
        self._ranked = ranked
        weights: List[float] = []
        acc = 0.0
        for rank in range(1, len(ranked) + 1):
            acc += 1.0 / rank ** skew
            weights.append(acc)
        self._cumulative = weights
        self.skew = skew

    def _generate(self) -> Edge:
        rng = self._rng
        pick = rng.random() * self._cumulative[-1]
        idx = bisect.bisect_left(self._cumulative, pick)
        v = self._ranked[min(idx, len(self._ranked) - 1)]
        neighbors = self._graph.neighbors(v)
        w = neighbors[rng.randrange(len(neighbors))]
        return _oriented(rng, v, w)


class AdaptiveWorkload(Workload):
    """Query neighbors of previously answered requests.

    Keeps a bounded frontier of endpoints from edges recently reported *in*
    the spanner; with probability ``follow`` the next request explores a
    random edge incident to a frontier vertex, otherwise (or when the
    frontier is empty) it restarts from a uniformly random edge.
    """

    kind = "adaptive"

    def __init__(
        self,
        graph: Graph,
        num_requests: int,
        seed: int = 0,
        follow: float = 0.75,
        frontier_size: int = 64,
    ) -> None:
        super().__init__(num_requests)
        if not 0.0 <= follow <= 1.0:
            raise ValueError("follow must be in [0, 1]")
        self._graph = graph
        self._edges = graph.edge_list()
        if not self._edges:
            raise ValueError("graph has no edges to sample requests from")
        self._rng = random.Random(f"adaptive:{seed}")
        self._frontier: List[int] = []
        self._frontier_size = int(frontier_size)
        self.follow = follow

    def _generate(self) -> Edge:
        rng = self._rng
        if self._frontier and rng.random() < self.follow:
            v = self._frontier[rng.randrange(len(self._frontier))]
            neighbors = self._graph.neighbors(v)
            if neighbors:
                w = neighbors[rng.randrange(len(neighbors))]
                return _oriented(rng, v, w)
        u, v = self._edges[rng.randrange(len(self._edges))]
        return _oriented(rng, u, v)

    def observe(self, edge: Edge, in_spanner: bool) -> None:
        if not in_spanner:
            return
        frontier = self._frontier
        for endpoint in edge:
            frontier.append(endpoint)
        overflow = len(frontier) - self._frontier_size
        if overflow > 0:
            del frontier[:overflow]


class ChurnWorkload(Workload):
    """Uniform reads interleaved with random graph mutations.

    With probability ``write_ratio`` the next request is a mutation: an
    edge deletion (a uniformly random current edge) or an insertion (a
    uniformly random current non-edge between existing vertices), each with
    probability 1/2 — so the edge count performs an unbiased random walk
    around its starting point.  Reads sample uniformly from the *current*
    edge set as the workload's internal mirror tracks it.

    The mirror assumes every emitted mutation is applied exactly once, in
    stream order, before any later read executes — the contract the service
    engine provides (writes are never shed and act as scheduling barriers).
    """

    kind = "churn"

    #: Rejection-sampling bound for drawing a non-edge; graphs dense enough
    #: to exhaust it fall back to emitting a deletion instead.
    _ADD_ATTEMPTS = 64

    def __init__(
        self,
        graph: Graph,
        num_requests: int,
        seed: int = 0,
        write_ratio: float = 0.1,
    ) -> None:
        super().__init__(num_requests)
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        edges = [canonical_edge(u, v) for (u, v) in graph.edges()]
        if not edges:
            raise ValueError("graph has no edges to sample requests from")
        self._edges = edges
        self._edge_set = set(edges)
        self._vertices = graph.vertices()
        self._rng = random.Random(f"churn:{seed}")
        self.write_ratio = float(write_ratio)
        self.mutations_emitted = 0

    def _random_non_edge(self) -> Optional[Edge]:
        rng = self._rng
        vertices = self._vertices
        for _ in range(self._ADD_ATTEMPTS):
            u = vertices[rng.randrange(len(vertices))]
            v = vertices[rng.randrange(len(vertices))]
            if u == v:
                continue
            key = canonical_edge(u, v)
            if key not in self._edge_set:
                return key
        return None

    def _emit_add(self) -> Optional[TraceOp]:
        key = self._random_non_edge()
        if key is None:
            return None
        self._edge_set.add(key)
        self._edges.append(key)
        return TraceOp("add", key[0], key[1])

    def _emit_remove(self) -> Optional[TraceOp]:
        if not self._edges:
            return None
        rng = self._rng
        position = rng.randrange(len(self._edges))
        key = self._edges[position]
        # Swap-remove keeps deletion O(1); list order is irrelevant to
        # uniform sampling.
        self._edges[position] = self._edges[-1]
        self._edges.pop()
        self._edge_set.discard(key)
        return TraceOp("remove", key[0], key[1])

    def _generate(self) -> Request:
        rng = self._rng
        if rng.random() < self.write_ratio:
            mutation = (
                self._emit_add() if rng.random() < 0.5 else self._emit_remove()
            )
            if mutation is None:  # saturated graph / no edges left
                mutation = self._emit_remove() or self._emit_add()
            if mutation is not None:
                self.mutations_emitted += 1
                return mutation
        if not self._edges:
            # The mirror drained to zero edges: a read is impossible, so
            # force an insertion instead (always possible — an empty edge
            # set on the ≥2 vertices the constructor guaranteed cannot be
            # complete).
            mutation = self._emit_add()
            self.mutations_emitted += 1
            return mutation
        u, v = self._edges[rng.randrange(len(self._edges))]
        return _oriented(rng, u, v)


class TraceWorkload(Workload):
    """Replay a recorded request stream (queries and mutations) losslessly."""

    kind = "trace"

    def __init__(
        self,
        graph: Graph,
        num_requests: Optional[int] = None,
        seed: int = 0,  # accepted for interface uniformity; replay is exact
        path: Optional[str] = None,
        edges: Optional[Sequence] = None,
    ) -> None:
        if path is None and edges is None:
            raise ValueError("trace workload needs a path or an edge sequence")
        if edges is not None:
            replay: List[Request] = [
                item if isinstance(item, TraceOp) else (int(item[0]), int(item[1]))
                for item in edges
            ]
        else:
            replay = [
                record if record.is_mutation else record.edge
                for record in read_trace_ops(path)
            ]
        if num_requests is not None:
            replay = replay[: int(num_requests)]
        super().__init__(len(replay))
        self._replay = replay
        self._cursor = 0

    def _generate(self) -> Request:
        item = self._replay[self._cursor]
        self._cursor += 1
        return item


WORKLOADS: Dict[str, type] = {
    "uniform": UniformWorkload,
    "zipf": ZipfWorkload,
    "adaptive": AdaptiveWorkload,
    "churn": ChurnWorkload,
    "trace": TraceWorkload,
}


def make_workload(
    kind: str,
    graph: Graph,
    num_requests: Optional[int] = None,
    seed: int = 0,
    **options,
) -> Workload:
    """Instantiate a workload by kind name (the CLI / benchmark entry point).

    ``num_requests=None`` means 1000 for the generative kinds and "the whole
    recording" for trace replay.
    """
    key = kind.strip().lower()
    if key not in WORKLOADS:
        raise ValueError(
            f"unknown workload kind {kind!r}; choices: {sorted(WORKLOADS)}"
        )
    if key != "trace" and num_requests is None:
        num_requests = 1000
    return WORKLOADS[key](graph, num_requests=num_requests, seed=seed, **options)
