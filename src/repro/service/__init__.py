"""Online query serving: sharded oracle pool, request scheduler, workloads.

This package treats each ``(u, v) ∈ spanner?`` question as a *request* in an
open-loop stream rather than an iteration of an offline materialization
loop — the regime the LCA model is actually designed for ("we never
construct the full, global spanner at any point").  It consists of:

* :mod:`repro.service.shards` — ``N`` independent cached-oracle shards
  behind a hash/range vertex router (memo state is partitioned, answers are
  provably identical to a single oracle);
* :mod:`repro.service.engine` — a bounded-queue scheduler with admission
  control and per-shard batch coalescing through the streaming query path;
* :mod:`repro.service.workload` — uniform / Zipf / adaptive / trace-replay
  request generators (the scenario axis);
* :mod:`repro.service.trace` — JSONL request-trace recording and replay;
* :mod:`repro.service.metrics` — per-request latency percentiles,
  throughput, per-shard probe counts and cache hit rates.

Quickstart
----------
>>> from repro import graphs, service
>>> from repro.core.registry import create
>>> graph = graphs.gnp_graph(200, 0.1, seed=1)
>>> workload = service.make_workload("zipf", graph, num_requests=500, seed=2)
>>> config = service.ServiceConfig(num_shards=4, batch_size=32)
>>> report = service.serve_workload(
...     graph, lambda g: create("spanner3", g, seed=7), workload, config)
>>> report.served
500
"""

from .engine import (
    DEGRADED_MODES,
    SHED_REASONS,
    RequestRecord,
    ServiceConfig,
    ServiceEngine,
    serve_workload,
)
from .metrics import LATENCY_PERCENTILES, LatencyStats, ServiceReport
from .shards import (
    ROUTING_POLICIES,
    OracleShard,
    ReplicaSet,
    ShardReport,
    ShardRouter,
    ShardedOraclePool,
)
from .trace import (
    MUTATION_OPS,
    TRACE_OPS,
    TraceOp,
    as_trace_op,
    iter_trace,
    iter_trace_ops,
    read_trace,
    read_trace_ops,
    write_trace,
)
from .workload import (
    WORKLOAD_KINDS,
    AdaptiveWorkload,
    ChurnWorkload,
    TraceWorkload,
    UniformWorkload,
    Workload,
    ZipfWorkload,
    make_workload,
)

__all__ = [
    "ServiceConfig",
    "ServiceEngine",
    "RequestRecord",
    "serve_workload",
    "ServiceReport",
    "LatencyStats",
    "LATENCY_PERCENTILES",
    "ShardRouter",
    "ShardReport",
    "ShardedOraclePool",
    "OracleShard",
    "ReplicaSet",
    "ROUTING_POLICIES",
    "DEGRADED_MODES",
    "SHED_REASONS",
    "Workload",
    "UniformWorkload",
    "ZipfWorkload",
    "AdaptiveWorkload",
    "ChurnWorkload",
    "TraceWorkload",
    "WORKLOAD_KINDS",
    "make_workload",
    "write_trace",
    "read_trace",
    "iter_trace",
    "TraceOp",
    "TRACE_OPS",
    "MUTATION_OPS",
    "as_trace_op",
    "read_trace_ops",
    "iter_trace_ops",
]
