"""JSONL request traces: record streams once, replay them forever.

A trace is a line-delimited JSON file with one request per line::

    {"u": 3, "v": 17}
    {"u": 5, "v": 8}

Orientation is preserved — ``{"u": 17, "v": 3}`` replays as the query
``(17, 3)`` — because the LCA answers are orientation-invariant but probe
*schedules* need not be, and bit-identical replay is the whole point of a
trace.  Unknown extra keys are ignored so traces can carry annotations
(timestamps, client ids) without breaking replay.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

Edge = Tuple[int, int]
PathLike = Union[str, Path]


def write_trace(path: PathLike, edges: Iterable[Edge]) -> int:
    """Write a request stream as a JSONL trace; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for (u, v) in edges:
            handle.write(json.dumps({"u": int(u), "v": int(v)}) + "\n")
            count += 1
    return count


def iter_trace(path: PathLike) -> Iterator[Edge]:
    """Stream requests from a JSONL trace (blank lines are skipped)."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield (int(record["u"]), int(record["v"]))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace record") from exc


def read_trace(path: PathLike) -> List[Edge]:
    """Load a whole JSONL trace into memory."""
    return list(iter_trace(path))
