"""JSONL request traces: record streams once, replay them forever.

A trace is a line-delimited JSON file with one request per line.  Query
records carry just the edge; mutation records additionally carry their op
kind::

    {"u": 3, "v": 17}
    {"op": "add", "u": 2, "v": 9}
    {"op": "remove", "u": 5, "v": 8}
    {"op": "query", "u": 17, "v": 3}

Orientation is preserved — ``{"u": 17, "v": 3}`` replays as the query
``(17, 3)`` — because the LCA answers are orientation-invariant but probe
*schedules* need not be, and bit-identical replay is the whole point of a
trace.  Mutation records round-trip losslessly (op kind, endpoints and
stream position all survive :func:`write_trace` → :func:`read_trace_ops`),
which is what makes recorded churn workloads replayable.  Unknown extra
keys are ignored so traces can carry annotations (timestamps, client ids)
without breaking replay.

:func:`read_trace` / :func:`iter_trace` are the query-only legacy readers:
they yield plain edges and refuse mixed traces instead of silently dropping
the writes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

Edge = Tuple[int, int]
PathLike = Union[str, Path]

#: Op kinds a trace record may carry.  "query" is implicit when absent.
TRACE_OPS = ("query", "add", "remove")

#: The op kinds that mutate the graph.
MUTATION_OPS = ("add", "remove")


@dataclass(frozen=True)
class TraceOp:
    """One replayable request: a query or a graph mutation.

    ``op`` is one of :data:`TRACE_OPS`.  Frozen (hashable, picklable) so
    records can key memo tables and travel through executor futures.
    """

    op: str
    u: int
    v: int

    @property
    def edge(self) -> Edge:
        return (self.u, self.v)

    @property
    def is_mutation(self) -> bool:
        return self.op in MUTATION_OPS


def as_trace_op(item) -> TraceOp:
    """Normalize a request item — a ``(u, v)`` pair or a :class:`TraceOp`."""
    if isinstance(item, TraceOp):
        return item
    u, v = item
    return TraceOp("query", int(u), int(v))


def write_trace(path: PathLike, items: Iterable) -> int:
    """Write a request stream as a JSONL trace; returns the record count.

    Accepts plain ``(u, v)`` query pairs and :class:`TraceOp` records in any
    mix.  Query records are written in the historical ``{"u": ..., "v": ...}``
    shape (byte-compatible with pre-mutation traces); mutation records gain
    an ``op`` key.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for item in items:
            record = as_trace_op(item)
            if record.op == "query":
                payload = {"u": record.u, "v": record.v}
            elif record.op in MUTATION_OPS:
                payload = {"op": record.op, "u": record.u, "v": record.v}
            else:
                raise ValueError(
                    f"unknown trace op {record.op!r}; choices: {TRACE_OPS}"
                )
            handle.write(json.dumps(payload) + "\n")
            count += 1
    return count


def iter_trace_ops(path: PathLike) -> Iterator[TraceOp]:
    """Stream :class:`TraceOp` records from a JSONL trace (lossless)."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                op = str(record.get("op", "query"))
                u, v = int(record["u"]), int(record["v"])
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace record") from exc
            if op not in TRACE_OPS:
                raise ValueError(
                    f"{path}:{lineno}: unknown trace op {op!r}; "
                    f"choices: {TRACE_OPS}"
                )
            yield TraceOp(op, u, v)


def read_trace_ops(path: PathLike) -> List[TraceOp]:
    """Load a whole JSONL trace (queries and mutations) into memory."""
    return list(iter_trace_ops(path))


def iter_trace(path: PathLike) -> Iterator[Edge]:
    """Stream query edges from a query-only JSONL trace.

    Raises on mutation records: a caller expecting plain edges would
    otherwise silently drop the writes that the recorded answers depend on.
    Use :func:`iter_trace_ops` for mixed traces.
    """
    for record in iter_trace_ops(path):
        if record.is_mutation:
            raise ValueError(
                f"{path}: trace contains {record.op!r} mutation records; "
                "replay it with read_trace_ops/iter_trace_ops"
            )
        yield record.edge


def read_trace(path: PathLike) -> List[Edge]:
    """Load a whole query-only JSONL trace into memory."""
    return list(iter_trace(path))
