"""Sharded oracle pool: vertex-partitioned CachedOracle instances + a router.

The LCA contract (Definition 1.4) makes every answer a pure function of
``(graph, seed, query)``, so *any* number of independently instantiated LCAs
with the same seed agree on every query.  That freedom is what makes
horizontal sharding trivial to get right: a :class:`ShardedOraclePool` holds
``N`` independent LCA instances — one per shard, each with its own
:class:`~repro.core.oracle.CachedOracle`, probe counter and
:class:`~repro.core.cache.OracleCache` memo state — and a router maps each
query edge to the shard that *owns* its canonical first endpoint.

Sharding therefore partitions the **memo state**, not the graph: every shard
can read the whole graph (the cache layer is probe-free; the model cost is
charged per query exactly as a single oracle would charge it), but a vertex's
derived state (center sets, cluster memberships, representatives) is only
ever materialized on the one shard that owns the vertex, so memory scales
down per shard and shards never contend on shared mutable state — the layout
a real multi-process deployment would use.

That no-shared-state layout is also what lets shards *execute* concurrently:
the request engine pins every shard to one dedicated worker
(:class:`repro.exec.PinnedWorkers`), so a shard's memo state is only ever
touched from a single thread while distinct shards overlap.  Answers and
per-request probe totals are identical either way — the engine's equivalence
tests pin serial and threaded serving against the same single-oracle
baseline.

Routing policies
----------------
``hash``
    ``owner = mix(u) % N`` with a splitmix-style integer mix — spreads
    consecutive vertex ids across shards (good load balance for skewed
    workloads whose hot vertices have nearby ids).
``range``
    ``owner = rank(u) * N // n`` over the sorted vertex id space —
    contiguous vertex ranges per shard (locality: neighboring vertices tend
    to co-locate, which helps the per-shard memo when workloads walk
    neighborhoods).

Both are pure functions of the vertex id, so a router can be recomputed
anywhere (client-side routing) and answers never depend on the policy.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.lca import BatchQueryResult, SpannerLCA
from ..core.probes import ProbeSnapshot
from ..graphs.graph import Graph

Edge = Tuple[int, int]

#: Supported routing policies.
ROUTING_POLICIES = ("hash", "range")


def _splitmix(x: int) -> int:
    """Deterministic 64-bit integer mix (splitmix64 finalizer).

    Python's ``hash(int)`` is the identity for small ints, which would make
    "hash" routing degenerate to modulo; this mix decorrelates vertex ids
    from shard ids.
    """
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class ShardRouter:
    """Maps vertices (and query edges) to shard ids.

    A query ``(u, v)`` is owned by the shard of its canonical first endpoint
    ``min(u, v)``, so both orientations of an edge route identically and a
    repeat query always lands on the shard holding its memoized state.

    ``vertices`` is either the vertex count (ids assumed ``0 .. n-1``) or
    the actual id sequence; range routing partitions the *sorted id space*
    into contiguous blocks, so graphs with arbitrary (sparse, offset) ids
    still spread across all shards instead of clamping onto the last one.
    """

    def __init__(
        self,
        num_shards: int,
        vertices: Union[int, Sequence[int]],
        policy: str = "hash",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choices: {ROUTING_POLICIES}"
            )
        self.num_shards = int(num_shards)
        if isinstance(vertices, int):
            self.num_vertices = vertices
            self._sorted_ids: Optional[List[int]] = None
        else:
            self._sorted_ids = sorted(int(v) for v in vertices)
            self.num_vertices = len(self._sorted_ids)
        self.policy = policy

    def shard_of_vertex(self, v: int) -> int:
        if self.policy == "hash":
            return _splitmix(int(v)) % self.num_shards
        # range: contiguous blocks of the sorted vertex id space, by rank.
        if self.num_vertices <= 0:
            return 0
        if self._sorted_ids is None:
            rank = min(max(int(v), 0), self.num_vertices - 1)
        else:
            rank = min(
                bisect.bisect_left(self._sorted_ids, int(v)), self.num_vertices - 1
            )
        return rank * self.num_shards // self.num_vertices

    def shard_of_edge(self, u: int, v: int) -> int:
        return self.shard_of_vertex(u if u <= v else v)


@dataclass
class ShardReport:
    """Telemetry for one shard of the pool."""

    shard_id: int
    requests: int
    probes: ProbeSnapshot
    cache_hits: int
    cache_misses: int
    mutations: int = 0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "requests": self.requests,
            "probes": self.probes.as_dict(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "mutations": self.mutations,
        }


class OracleShard:
    """One shard: an independent LCA instance plus request accounting.

    The shard serves queries either one at a time (:meth:`serve_one`, the
    pre-existing per-query API with its per-request measure context) or as a
    coalesced batch (:meth:`serve_batch`, the streaming
    :meth:`~repro.core.lca.SpannerLCA.query_batch` fast path).  Both produce
    identical answers and identical per-query probe totals.
    """

    __slots__ = ("shard_id", "lca", "requests", "mutations")

    def __init__(self, shard_id: int, lca: SpannerLCA) -> None:
        self.shard_id = shard_id
        self.lca = lca.set_query_mode("cached")
        self.requests = 0
        self.mutations = 0

    def serve_one(self, u: int, v: int) -> Tuple[bool, int]:
        """Serve a single request; returns ``(answer, probe_total)``."""
        self.requests += 1
        outcome = self.lca.query_with_stats(u, v)
        return outcome.in_spanner, outcome.probe_total

    def serve_batch(self, edges: Sequence[Edge], validate: bool = True) -> BatchQueryResult:
        """Serve a coalesced batch through the streaming engine."""
        self.requests += len(edges)
        return self.lca.query_batch(edges, validate=validate)

    def apply_mutation(self, op: str, u: int, v: int) -> int:
        """Apply one graph mutation on behalf of the pool; returns the epoch.

        The graph object is shared by every shard, so the write executes
        once — on the owning shard's worker, while no read batch is in
        flight (the engine's write barrier).  Sibling shards need no
        notification: their memo entries check the shared graph's vertex
        epochs on their next lookup and discard themselves lazily.
        """
        self.mutations += 1
        graph = self.lca.graph
        graph.apply_mutation(op, u, v)
        return graph.epoch

    def telemetry(self) -> Tuple[int, ProbeSnapshot, int, int, int]:
        """Lifetime counters ``(requests, probes, cache_hits, cache_misses,
        mutations)``; pass to :meth:`report` as a baseline to get per-run
        deltas."""
        cache = self.lca.oracle_cache
        return (
            self.requests,
            self.lca.probe_counter.snapshot(),
            cache.stats.hits if cache is not None else 0,
            cache.stats.misses if cache is not None else 0,
            self.mutations,
        )

    def report(
        self, since: Optional[Tuple[int, ProbeSnapshot, int, int, int]] = None
    ) -> ShardReport:
        """Telemetry since ``since`` (a :meth:`telemetry` baseline), or since
        shard creation when omitted."""
        requests, probes, hits, misses, mutations = self.telemetry()
        if since is not None:
            base_requests, base_probes, base_hits, base_misses, base_mutations = since
            requests -= base_requests
            probes = probes - base_probes
            hits -= base_hits
            misses -= base_misses
            mutations -= base_mutations
        return ShardReport(
            shard_id=self.shard_id,
            requests=requests,
            probes=probes,
            cache_hits=hits,
            cache_misses=misses,
            mutations=mutations,
        )


class ReplicaSet:
    """The replicas of one shard: interchangeable same-seed LCA instances.

    The LCA purity contract is what makes replication cheap to get right:
    every replica is an independent instance built by the same factory
    (same seed, same parameters), so all replicas agree on every answer
    *by construction* — failover changes which memo cache serves a read,
    never the read's answer or its cold-schedule probe total.

    What replicas do **not** automatically share is warm memo state.  The
    set therefore keeps one *checkpoint*: a portable
    :class:`~repro.core.cache.CacheSnapshot` exported by the serving
    primary (:meth:`checkpoint`).  A replica promoted after a crash — or
    rejoining after recovery — merges the latest checkpoint it has not
    seen (:meth:`sync`), inheriting the primary's memo entries.  Merged
    entries are epoch-stamped (see :mod:`repro.core.cache`), so a
    checkpoint taken before a graph mutation is still safe to merge after
    it: stale entries discard themselves on their next lookup.

    Checkpoints are **full** snapshots, not incremental ones — cursor
    deltas assume append-only memo tables, which churn workloads violate
    (lazy invalidation shrinks them).
    """

    __slots__ = ("shard_id", "replicas", "_checkpoint", "_version", "_synced")

    def __init__(self, shard_id: int, replicas: Sequence[OracleShard]) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self._checkpoint: Optional[Tuple[int, object]] = None  # (source, snap)
        self._version = 0
        self._synced = [0] * len(self.replicas)

    def __len__(self) -> int:
        return len(self.replicas)

    @property
    def primary(self) -> OracleShard:
        """The at-rest primary (replica 0); live routing is the engine's."""
        return self.replicas[0]

    def checkpoint(self, replica_idx: int) -> int:
        """Export ``replica_idx``'s memo state as the set's checkpoint.

        Returns the checkpoint version.  Runs on the replica's pinned
        worker (the engine submits it there), so the export never races
        that replica's in-flight batches.
        """
        oracle = self.replicas[replica_idx].lca.ensure_cached_oracle()
        self._version += 1
        self._checkpoint = (replica_idx, oracle.snapshot_state())
        self._synced[replica_idx] = self._version
        return self._version

    def sync(self, replica_idx: int) -> bool:
        """Merge the latest unseen checkpoint into ``replica_idx``.

        Called on promotion (the new primary inherits the crashed
        primary's warm state) and on rejoin after recovery.  A no-op when
        the replica exported the checkpoint itself or has already merged
        it; returns whether a merge happened.
        """
        if self._checkpoint is None:
            return False
        source, snapshot = self._checkpoint
        if source == replica_idx or self._synced[replica_idx] >= self._version:
            return False
        replica = self.replicas[replica_idx]
        replica.lca.ensure_cached_oracle().merge_state(snapshot)
        self._synced[replica_idx] = self._version
        return True

    def telemetry(self) -> Tuple[int, ProbeSnapshot, int, int, int]:
        """Aggregate lifetime counters across the set's replicas."""
        requests = hits = misses = mutations = 0
        probes = ProbeSnapshot()
        for replica in self.replicas:
            r, p, h, m, mu = replica.telemetry()
            requests += r
            probes = probes + p
            hits += h
            misses += m
            mutations += mu
        return (requests, probes, hits, misses, mutations)

    def report(
        self, since: Optional[Tuple[int, ProbeSnapshot, int, int, int]] = None
    ) -> ShardReport:
        """One aggregated :class:`ShardReport` for the whole replica set."""
        requests, probes, hits, misses, mutations = self.telemetry()
        if since is not None:
            base_requests, base_probes, base_hits, base_misses, base_mut = since
            requests -= base_requests
            probes = probes - base_probes
            hits -= base_hits
            misses -= base_misses
            mutations -= base_mut
        return ShardReport(
            shard_id=self.shard_id,
            requests=requests,
            probes=probes,
            cache_hits=hits,
            cache_misses=misses,
            mutations=mutations,
        )


class ShardedOraclePool:
    """``N`` independent LCA shards behind a vertex router.

    Parameters
    ----------
    graph:
        The input graph (shared, read-only).
    lca_factory:
        Callable ``graph -> SpannerLCA``.  It must bake in the seed (and any
        parameters) so that every shard's instance answers identically —
        which the LCA purity contract then guarantees.
    num_shards:
        Number of independent shards.
    routing:
        ``"hash"`` or ``"range"`` (see module docstring).
    replication:
        Replicas per shard (default 1 — no redundancy).  Each replica is an
        independent same-seed LCA instance inside a :class:`ReplicaSet`;
        the request engine routes reads to the current live primary and
        fails over when faults take it down.

    ``pool.shards`` exposes the at-rest primaries (replica 0), which keeps
    every pre-replication caller — and the fault-free fast path — working
    unchanged; replica-aware code goes through ``pool.replica_sets``.
    """

    def __init__(
        self,
        graph: Graph,
        lca_factory: Callable[[Graph], SpannerLCA],
        num_shards: int = 1,
        routing: str = "hash",
        replication: int = 1,
    ) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.graph = graph
        self.router = ShardRouter(num_shards, graph.vertices(), routing)
        self.replication = int(replication)
        self.replica_sets = [
            ReplicaSet(
                i, [OracleShard(i, lca_factory(graph)) for _ in range(replication)]
            )
            for i in range(num_shards)
        ]
        self.shards = [replica_set.primary for replica_set in self.replica_sets]
        name = self.shards[0].lca.name
        if any(
            replica.lca.name != name
            for replica_set in self.replica_sets
            for replica in replica_set.replicas
        ):
            raise ValueError("lca_factory produced differently named LCAs")
        self.algorithm = name

    @property
    def num_shards(self) -> int:
        return len(self.replica_sets)

    def replica(self, shard_id: int, replica_idx: int) -> OracleShard:
        """The ``replica_idx``-th replica of shard ``shard_id``."""
        return self.replica_sets[shard_id].replicas[replica_idx]

    def shard_for(self, u: int, v: int) -> OracleShard:
        return self.shards[self.router.shard_of_edge(u, v)]

    def serve_one(self, u: int, v: int) -> Tuple[bool, int]:
        """Route and serve a single request (the unbatched path)."""
        return self.shard_for(u, v).serve_one(u, v)

    def apply_mutation(self, op: str, u: int, v: int) -> int:
        """Route a graph mutation to its owning shard; returns the epoch."""
        return self.shard_for(u, v).apply_mutation(op, u, v)

    def partition(
        self, edges: Sequence[Edge]
    ) -> List[Tuple[int, List[Edge], List[int]]]:
        """Split a batch by owning shard in one routing pass.

        Returns ``(shard_id, group_edges, batch_positions)`` triples in
        first-seen shard order (deterministic for a given batch); the
        positions let per-shard results scatter straight back into batch
        order.  This is the routing half of :meth:`serve_grouped`, exposed
        separately so the request engine can submit each group to its
        shard's worker as an independent future.
        """
        shard_of = self.router.shard_of_edge
        groups: Dict[int, List[Edge]] = {}
        slots: Dict[int, List[int]] = {}
        for position, (u, v) in enumerate(edges):
            shard_id = shard_of(u, v)
            if shard_id in groups:
                groups[shard_id].append((u, v))
                slots[shard_id].append(position)
            else:
                groups[shard_id] = [(u, v)]
                slots[shard_id] = [position]
        return [
            (shard_id, group, slots[shard_id])
            for shard_id, group in groups.items()
        ]

    def serve_grouped(
        self, edges: Sequence[Edge], validate: bool = True
    ) -> List[Tuple[bool, int]]:
        """Route a coalesced batch: group by shard, stream each group.

        Returns one ``(answer, probe_total)`` per input edge, in input
        order, regardless of how the batch was split across shards.
        """
        if not edges:
            return []
        out: List[Tuple[bool, int]] = [None] * len(edges)  # type: ignore[list-item]
        for shard_id, group, positions in self.partition(edges):
            result = self.shards[shard_id].serve_batch(group, validate=validate)
            for position, answer, total in zip(
                positions, result.answers, result.probe_totals
            ):
                out[position] = (answer, total)
        return out

    def telemetry(self) -> List[Tuple[int, ProbeSnapshot, int, int, int]]:
        """Per-shard lifetime counters, aggregated across each shard's
        replicas (a baseline for :meth:`reports`)."""
        return [replica_set.telemetry() for replica_set in self.replica_sets]

    def reports(
        self, since: Optional[List[Tuple[int, ProbeSnapshot, int, int, int]]] = None
    ) -> List[ShardReport]:
        if since is None:
            return [replica_set.report() for replica_set in self.replica_sets]
        return [
            replica_set.report(baseline)
            for replica_set, baseline in zip(self.replica_sets, since)
        ]
