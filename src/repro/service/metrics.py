"""Service telemetry: per-request latency, throughput, shard/cache health.

Per-request latency is the first-class metric here (the pod-consensus line
of work in PAPERS.md is the model): the engine stamps each request at
admission and at batch completion, and this module reduces the stamped
stream to nearest-rank percentiles — the same floor-based selection that
:mod:`repro.core.probes` uses for probe percentiles, so the repo has exactly
one percentile definition.

A :class:`ServiceReport` is the structured result of one engine run, in the
spirit of :class:`repro.analysis.harness.EvaluationReport`: flat enough to
print with ``format_table`` (:meth:`ServiceReport.as_row`) and complete
enough to serialize next to the benchmark JSON (:meth:`ServiceReport.as_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.probes import ProbeStatistics, nearest_rank_percentile
from .shards import ShardReport

#: Percentiles reported for request latency.
LATENCY_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


@dataclass
class LatencyStats:
    """Per-request latency samples (seconds) with nearest-rank percentiles.

    Percentile queries share one lazily maintained sorted view of the
    samples: the first percentile after a batch of :meth:`add` calls sorts
    once, every further quantile (and the whole :meth:`as_dict` summary)
    reuses it.  The old behavior — ``sorted(self.samples_s)`` on *every*
    ``percentile_s`` call — made a k-quantile summary over n samples cost
    k·O(n log n) for no reason; outputs are pinned identical by
    ``tests/test_service_churn.py``.
    """

    samples_s: List[float] = field(default_factory=list)
    _ordered: Optional[List[float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, seconds: float) -> None:
        self.samples_s.append(float(seconds))
        self._ordered = None

    def _sorted_samples(self) -> List[float]:
        ordered = self._ordered
        if ordered is None or len(ordered) != len(self.samples_s):
            # The length re-check also covers callers that append to
            # ``samples_s`` directly instead of going through add().
            ordered = sorted(self.samples_s)
            self._ordered = ordered
        return ordered

    @property
    def count(self) -> int:
        return len(self.samples_s)

    @property
    def mean_s(self) -> float:
        return sum(self.samples_s) / len(self.samples_s) if self.samples_s else 0.0

    @property
    def max_s(self) -> float:
        return max(self.samples_s) if self.samples_s else 0.0

    def percentile_s(self, q: float) -> float:
        return nearest_rank_percentile(self._sorted_samples(), q)

    def merge(self, other: "LatencyStats") -> None:
        """Fold another summary in without re-sorting the union.

        Both sides' sorted views are combined with a linear two-pointer
        merge, so folding per-shard summaries into a pool-level one costs
        O(n + m) instead of the O((n+m) log (n+m)) a concatenate-and-sort
        would pay.  Equivalent to adding every sample of ``other``
        (pinned by a hypothesis property test against that oracle).
        """
        if not other.samples_s:
            return
        left = self._sorted_samples()
        right = other._sorted_samples()
        merged: List[float] = []
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        self.samples_s.extend(other.samples_s)
        self._ordered = merged

    def as_dict(self) -> Dict[str, float]:
        """Summary in milliseconds (the natural scale for serving)."""
        ordered = self._sorted_samples()
        summary = {
            "count": self.count,
            "mean_ms": round(self.mean_s * 1e3, 4),
            "max_ms": round(self.max_s * 1e3, 4),
        }
        for q in LATENCY_PERCENTILES:
            summary[f"p{q:g}_ms"] = round(nearest_rank_percentile(ordered, q) * 1e3, 4)
        return summary


@dataclass
class ServiceReport:
    """Everything measured about one engine run on one workload."""

    algorithm: str
    workload: str
    num_shards: int
    routing: str
    batch_size: int
    coalesced: bool
    offered: int            # requests the workload produced (reads + writes)
    admitted: int           # reads accepted into the queue (writes are
                            # counted in `mutations`; offered == admitted
                            # + rejected + mutations)
    rejected: int           # reads turned away by admission control
    served: int             # completed reads (== admitted for a drained run)
    in_spanner: int         # YES answers among served requests
    duration_s: float
    batches: int
    max_queue_depth_seen: int
    latency: LatencyStats
    probe_stats: ProbeStatistics
    shard_reports: List[ShardReport] = field(default_factory=list)
    executor: str = "serial"        # shard-worker backend of the run
    max_inflight: int = 1           # batch pipelining depth of the run
    mutations: int = 0              # graph writes applied during the run
    replication: int = 1            # replicas per shard
    #: Fault-plane counters (:meth:`repro.faults.FaultStats.as_dict`) —
    #: populated only for runs with a fault plan configured.
    faults: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.served / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.served / self.batches if self.batches else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def availability(self) -> float:
        """Fraction of offered reads answered by a live oracle.

        Sheds (any reason) and explicit degraded answers both count
        against availability; writes are excluded from the denominator
        (they are never shed — a blocked write waits for recovery).
        """
        reads = self.offered - self.mutations
        if reads <= 0:
            return 1.0
        degraded = self.faults.get("degraded_answers", 0)
        return (self.served - degraded) / reads

    def shard_imbalance(self) -> float:
        """Max/mean request load across shards (1.0 = perfectly balanced)."""
        loads = [report.requests for report in self.shard_reports]
        if not loads or sum(loads) == 0:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 0.0

    def as_row(self) -> Dict[str, object]:
        """One flat table row (for ``format_table``)."""
        latency = self.latency.as_dict()
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "shards": self.num_shards,
            "batch": self.batch_size if self.coalesced else 1,
            "served": self.served,
            "rejected": self.rejected,
            "rps": round(self.throughput_rps, 1),
            "p50 ms": latency["p50_ms"],
            "p95 ms": latency["p95_ms"],
            "p99 ms": latency["p99_ms"],
            "probes/req": round(self.probe_stats.mean, 1),
            "hit rate": round(self._overall_hit_rate(), 3),
        }

    def _overall_hit_rate(self) -> float:
        hits = sum(report.cache_hits for report in self.shard_reports)
        lookups = hits + sum(report.cache_misses for report in self.shard_reports)
        return hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Full structured report (for JSON export)."""
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "num_shards": self.num_shards,
            "routing": self.routing,
            "batch_size": self.batch_size,
            "coalesced": self.coalesced,
            "executor": self.executor,
            "max_inflight": self.max_inflight,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "mutations": self.mutations,
            "rejection_rate": round(self.rejection_rate, 4),
            "served": self.served,
            "in_spanner": self.in_spanner,
            "duration_s": round(self.duration_s, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "latency": self.latency.as_dict(),
            "probes": self.probe_stats.as_dict(),
            "shard_imbalance": round(self.shard_imbalance(), 3),
            "shards": [report.as_dict() for report in self.shard_reports],
            **({"replication": self.replication} if self.replication > 1 else {}),
            **(
                {
                    "faults": dict(self.faults),
                    "availability": round(self.availability, 4),
                }
                if self.faults
                else {}
            ),
            **({"extras": dict(self.extras)} if self.extras else {}),
        }
