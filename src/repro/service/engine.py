"""Request scheduler: bounded queue, admission control, batch coalescing.

The engine turns a :class:`~repro.service.workload.Workload` (an open-loop
arrival stream) into served answers through a
:class:`~repro.service.shards.ShardedOraclePool`, in repeated cycles:

1. **Ingest** — pull up to ``arrival_burst`` requests from the stream.
   Each arrival passes admission control: requests for pairs that are not
   edges of ``G`` and requests arriving while the queue is at
   ``max_queue_depth`` are rejected (counted, never served).  Admitted
   requests are stamped with their arrival time.
2. **Dispatch** — pop up to ``batch_size`` requests (FIFO).  With
   ``coalesce=True`` the batch is routed as a group: the router partitions
   it by owning shard and each shard streams its sub-batch through the
   :meth:`~repro.core.lca.SpannerLCA.query_batch` fast path.  With
   ``coalesce=False`` every request is dispatched individually through the
   pre-existing per-query API — the unbatched baseline.
3. **Complete** — stamp completion, record per-request latency
   (completion − arrival, so queueing delay is included), feed answers back
   to the workload (the adaptive kind steers on them), and accumulate
   telemetry.

Setting ``arrival_burst > batch_size`` models an overloaded ingress: the
queue fills, admission control starts shedding, and the latency percentiles
show the queueing delay — the knobs a load-shedding study needs.

Everything is deterministic given (graph, seed, workload): answers are pure
functions of ``(graph, seed, query)``, so scheduling, sharding and batching
can only change *wall-clock* numbers, never answers or per-request probe
totals.  ``tests/test_service_equivalence.py`` pins exactly that.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Tuple

from ..core.lca import SpannerLCA
from ..core.probes import ProbeStatistics
from ..graphs.graph import Graph
from .metrics import LatencyStats, ServiceReport
from .shards import ROUTING_POLICIES, ShardedOraclePool
from .workload import Workload

Edge = Tuple[int, int]


@dataclass
class ServiceConfig:
    """Tuning knobs of the query service (answers never depend on them)."""

    num_shards: int = 1
    routing: str = "hash"
    batch_size: int = 32
    max_queue_depth: int = 1024
    #: Arrivals ingested per scheduling cycle; defaults to ``batch_size``
    #: (steady state).  Larger values model ingress overload and exercise
    #: admission control.
    arrival_burst: Optional[int] = None
    #: ``True`` — group each dispatched batch by shard and stream it
    #: (the fast path); ``False`` — serve request by request (baseline).
    coalesce: bool = True
    #: Keep a per-request :class:`RequestRecord` log on the engine
    #: (equivalence tests replay it; disable for pure throughput runs).
    record: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; choices: {ROUTING_POLICIES}"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.arrival_burst is not None and self.arrival_burst < 1:
            raise ValueError("arrival_burst must be >= 1")

    @property
    def effective_burst(self) -> int:
        return self.batch_size if self.arrival_burst is None else self.arrival_burst


class RequestRecord(NamedTuple):
    """One served request, as logged by the engine (replayable)."""

    seq: int
    u: int
    v: int
    in_spanner: bool
    probe_total: int
    latency_s: float


class _Pending(NamedTuple):
    seq: int
    u: int
    v: int
    arrival_s: float


class ServiceEngine:
    """Drives one workload run against a sharded oracle pool.

    Parameters
    ----------
    graph:
        The input graph (shared by every shard, read-only).
    lca_factory:
        ``graph -> SpannerLCA`` factory with the seed baked in; one instance
        is created per shard.
    config:
        Scheduler and pool knobs (:class:`ServiceConfig`).
    """

    def __init__(
        self,
        graph: Graph,
        lca_factory: Callable[[Graph], SpannerLCA],
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else ServiceConfig()
        self.pool = ShardedOraclePool(
            graph,
            lca_factory,
            num_shards=self.config.num_shards,
            routing=self.config.routing,
        )
        #: Per-request log of the most recent :meth:`run` (when
        #: ``config.record``); replayed by the equivalence tests.
        self.records: List[RequestRecord] = []

    def run(self, workload: Workload, clock=time.perf_counter) -> ServiceReport:
        """Serve the whole workload; returns the telemetry report.

        ``clock`` is injectable for tests; it must be monotone.
        """
        config = self.config
        pool = self.pool
        has_edge = self.graph.has_edge
        burst = config.effective_burst
        batch_size = config.batch_size
        depth_limit = config.max_queue_depth
        coalesce = config.coalesce

        queue: deque = deque()
        records: List[RequestRecord] = []
        self.records = records
        latency = LatencyStats()
        probe_stats = ProbeStatistics()
        offered = admitted = rejected = invalid = served = in_spanner = 0
        batches = 0
        max_depth_seen = 0
        seq = 0
        exhausted = False
        # Shard telemetry is lifetime-scoped (an engine can run several
        # workloads); baseline it so the report only covers this run.
        shard_baseline = pool.telemetry()

        started = clock()
        while not exhausted or queue:
            # ---- ingest: up to `burst` arrivals through admission control
            arrivals = 0
            while arrivals < burst and not exhausted:
                edge = workload.next_request()
                if edge is None:
                    exhausted = True
                    break
                arrivals += 1
                offered += 1
                u, v = edge
                if not has_edge(u, v):
                    invalid += 1
                    rejected += 1
                    continue
                if len(queue) >= depth_limit:
                    rejected += 1
                    continue
                seq += 1
                queue.append(_Pending(seq, u, v, clock()))
                admitted += 1
            if len(queue) > max_depth_seen:
                max_depth_seen = len(queue)
            if not queue:
                continue

            # ---- dispatch: pop one FIFO batch and serve it
            take = min(batch_size, len(queue))
            batch = [queue.popleft() for _ in range(take)]
            batches += 1
            if coalesce:
                answers = pool.serve_grouped(
                    [(req.u, req.v) for req in batch], validate=False
                )
                done = clock()
                completions = [
                    (req, answer, probes, done)
                    for req, (answer, probes) in zip(batch, answers)
                ]
            else:
                completions = []
                for req in batch:
                    answer, probes = pool.serve_one(req.u, req.v)
                    completions.append((req, answer, probes, clock()))

            # ---- complete: telemetry + feedback, in request order
            for req, answer, probes, done in completions:
                served += 1
                if answer:
                    in_spanner += 1
                elapsed = done - req.arrival_s
                latency.add(elapsed)
                probe_stats.add(probes)
                workload.observe((req.u, req.v), answer)
                if config.record:
                    records.append(
                        RequestRecord(req.seq, req.u, req.v, answer, probes, elapsed)
                    )
        duration = clock() - started

        report = ServiceReport(
            algorithm=pool.algorithm,
            workload=workload.kind,
            num_shards=config.num_shards,
            routing=config.routing,
            batch_size=batch_size,
            coalesced=coalesce,
            offered=offered,
            admitted=admitted,
            rejected=rejected,
            served=served,
            in_spanner=in_spanner,
            duration_s=duration,
            batches=batches,
            max_queue_depth_seen=max_depth_seen,
            latency=latency,
            probe_stats=probe_stats,
            shard_reports=pool.reports(since=shard_baseline),
        )
        if invalid:
            report.extras["invalid_requests"] = invalid
        return report


def serve_workload(
    graph: Graph,
    lca_factory: Callable[[Graph], SpannerLCA],
    workload: Workload,
    config: Optional[ServiceConfig] = None,
) -> ServiceReport:
    """One-shot convenience wrapper: build an engine, run one workload."""
    return ServiceEngine(graph, lca_factory, config).run(workload)
